//! Integration suite for degrade-don't-drop overload serving: the chaos
//! path (worker death in the middle of a degraded window) and the
//! accuracy contract of the degrade ladder.
//!
//! 1. **Chaos** — a Process-backend pool is saturated with CPWL program
//!    requests whose deadlines are already in the past, so every window
//!    is a *degraded* window (expiry rescue at the coarsest rung). One
//!    worker is SIGKILLed while the backlog is still queued: its windows
//!    must re-execute on survivors **at the same degraded granularity**,
//!    bit-identical to the solo oracle compiled directly at that rung,
//!    with exactly one failover recorded and nothing expired.
//! 2. **Accuracy regression** — degraded CNN / BERT / causal-LM outputs
//!    served through the ladder stay within documented per-granularity
//!    error bounds of the Exact oracle, and top-1 agreement stays above
//!    a pinned floor across the whole ladder. The bounds follow the
//!    CPWL chord-error model (`≈ M₂·g²/8` per scalar evaluation, see
//!    `onesa_cpwl::analysis`), amplified through the network and pinned
//!    empirically with headroom.
//!
//! Determinism: the same paused-preload-resume discipline as
//! `integration_serving.rs`; all weights and inputs are seeded.

use std::path::PathBuf;

use onesa_core::plan::{Compile, TableCache};
use onesa_core::serve::{
    AdmissionPolicy, DegradeInfo, DegradePolicy, RoutePolicy, ServeConfig, ServeEngine,
    ShardBackend, Ticket,
};
use onesa_core::{Parallelism, ProcessConfig, Program, Request, Transport};
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::{SmallCnn, TinyBert, TinyCausalLm};
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

fn assert_bits_eq(label: &str, got: &Tensor, want: &Tensor) {
    assert_eq!(got.dims(), want.dims(), "{label}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: element {i} differs ({g} vs {w})"
        );
    }
}

fn process_backend(transport: Transport) -> ShardBackend {
    let mut cfg = ProcessConfig::new(transport);
    cfg.worker = Some(PathBuf::from(env!("CARGO_BIN_EXE_onesa-shard-worker")));
    ShardBackend::Process(cfg)
}

#[test]
fn killed_worker_mid_degraded_window_fails_over_at_the_same_rung() {
    let cnn = SmallCnn::new(7, 1, 3);
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let program = cnn.compile((&mode, (8, 8))).unwrap();
    let coarse = program.with_granularity(1.0).unwrap();

    let pool = ServeEngine::start(
        ServeConfig::uniform(3, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Deadline {
                window: 2,
                drop_expired: true,
            })
            .with_routing(RoutePolicy::RoundRobin)
            .with_degrade(DegradePolicy::new(vec![0.5, 1.0]))
            .start_paused()
            .with_backend(process_backend(Transport::Unix)),
    )
    .unwrap();
    let pids = pool.worker_pids().to_vec();
    assert_eq!(pids.len(), 3);

    // Every request is already past its deadline when the gate opens, so
    // every window the dead shard owns is a *degraded* window.
    let mut rng = Pcg32::seed_from_u64(61);
    let xs: Vec<Tensor> = (0..6).map(|_| rng.randn(&[1, 8, 8], 1.0)).collect();
    let tickets: Vec<Ticket> = xs
        .iter()
        .map(|x| {
            pool.submit_with_deadline(Request::program(program.clone(), vec![x.clone()]), 0)
                .unwrap()
        })
        .collect();
    let killed = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {}", pids[0]);
    // Let the admission clock pass deadline 0 before opening the gate.
    std::thread::sleep(std::time::Duration::from_millis(2));
    pool.resume();

    let mut cache = TableCache::new();
    for (i, (ticket, x)) in tickets.into_iter().zip(&xs).enumerate() {
        let served = ticket
            .wait()
            .unwrap_or_else(|e| panic!("degraded request {i} lost to the dead worker: {e:?}"));
        assert!(served.shard != 0, "request {i} served by the dead shard");
        assert_eq!(
            served.degrade,
            Some(DegradeInfo {
                requested: 0.25,
                served: 1.0,
                rungs: 2
            }),
            "request {i} must be rescued at the coarsest rung"
        );
        // Failover re-executes the *recompiled* program: the survivor's
        // answer is bit-identical to a solo run at the degraded rung.
        let solo = coarse
            .run(std::slice::from_ref(x), Parallelism::Sequential, &mut cache)
            .unwrap();
        assert_bits_eq(
            &format!("degraded failover request {i}"),
            &served.output,
            &solo.output,
        );
    }
    let summary = pool.finish().unwrap();
    assert_eq!(summary.failovers, 1, "exactly shard 0 lost its worker");
    assert_eq!(summary.degraded, 6);
    assert_eq!(summary.expired, 0, "degrade-don't-drop even through chaos");
    assert_eq!(summary.report.requests, 6);
    let requeued: usize = summary.shards.iter().map(|s| s.requeued).sum();
    assert!(
        requeued > 0,
        "shard 0's degraded windows must re-run elsewhere"
    );
}

// -- accuracy regression across the ladder ----------------------------

/// Serves every (program, input) pair through a single-shard engine that
/// force-degrades to `rung` (or not at all for the requested
/// granularity) and returns the outputs in submission order.
fn serve_at_rung(programs: &[(Program, Vec<Tensor>)], rung: Option<f32>) -> Vec<Vec<f32>> {
    let mut cfg =
        ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential).start_paused();
    if let Some(g) = rung {
        cfg = cfg.with_degrade(DegradePolicy::new(vec![g]).with_depth_threshold(0));
    }
    let engine = ServeEngine::start(cfg).unwrap();
    let tickets: Vec<Ticket> = programs
        .iter()
        .map(|(p, inputs)| {
            engine
                .submit(Request::program(p.clone(), inputs.clone()))
                .unwrap()
        })
        .collect();
    engine.resume();
    let outputs = tickets
        .into_iter()
        .map(|t| {
            let served = t.wait().unwrap();
            match rung {
                Some(g) => {
                    let d = served.degrade.expect("forced degrade");
                    assert_eq!(d.served, g);
                }
                None => assert_eq!(served.degrade, None),
            }
            served.output.as_slice().to_vec()
        })
        .collect();
    let _ = engine.finish().unwrap();
    outputs
}

fn argmax(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap()
}

/// Max |dev| and top-1 agreement of served outputs vs the exact oracle.
fn compare(served: &[Vec<f32>], exact: &[Vec<f32>]) -> (f32, f64) {
    let mut max_dev = 0.0f32;
    let mut agree = 0usize;
    for (s, e) in served.iter().zip(exact) {
        assert_eq!(s.len(), e.len());
        for (a, b) in s.iter().zip(e) {
            max_dev = max_dev.max((a - b).abs());
        }
        agree += usize::from(argmax(s) == argmax(e));
    }
    (max_dev, agree as f64 / served.len() as f64)
}

#[test]
fn degraded_outputs_stay_within_documented_error_bounds() {
    // The ladder under test: requested 0.25 (paper default), rungs at
    // 0.5 and 1.0. Per-granularity logit-deviation bounds follow the
    // chord-error trend (`≈ M₂·g²/8` per table lookup, compounded
    // through the network) and are pinned empirically with ~3x
    // headroom; the top-1 floor is the worst agreement observed across
    // the ladder minus margin. Documented in ARCHITECTURE.md
    // ("Overload: the degrade ladder").
    let cnn = SmallCnn::new(11, 1, 6);
    let bert = TinyBert::new(5, 32, 12, 4, 2);
    let lm = TinyCausalLm::new(3, 32, 12, 1, true);
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let exact = InferenceMode::Exact;
    let mut rng = Pcg32::seed_from_u64(71);

    // (compiled program at 0.25, inputs) pairs plus exact-oracle logits.
    let mut programs: Vec<(Program, Vec<Tensor>)> = Vec::new();
    let mut oracle: Vec<Vec<f32>> = Vec::new();
    let mut families: Vec<(&str, std::ops::Range<usize>)> = Vec::new();

    let start = programs.len();
    let cnn_program = cnn.compile((&mode, (8, 8))).unwrap();
    for _ in 0..12 {
        let x = rng.randn(&[1, 8, 8], 1.0);
        oracle.push(cnn.logits_direct(&x, &exact));
        programs.push((cnn_program.clone(), vec![x]));
    }
    families.push(("cnn", start..programs.len()));

    let start = programs.len();
    let bert_program = bert.compile((&mode, 8)).unwrap();
    for _ in 0..10 {
        let seq: Vec<usize> = (0..8).map(|_| rng.below(32) as usize).collect();
        oracle.push(bert.predict_direct(&seq, &exact));
        programs.push((bert_program.clone(), vec![TinyBert::ids_tensor(&seq)]));
    }
    families.push(("bert", start..programs.len()));

    let start = programs.len();
    let lm_program = (*lm.compiled_prefill(&mode, 6)).clone();
    for _ in 0..10 {
        let seq: Vec<usize> = (0..6).map(|_| rng.below(32) as usize).collect();
        oracle.push(lm.next_logits_direct(&seq, &exact));
        programs.push((lm_program.clone(), vec![TinyCausalLm::ids_tensor(&seq)]));
    }
    families.push(("lm", start..programs.len()));

    // (rung, per-family max-|logit dev| bounds vs Exact), pinned at
    // ~2.5-3x the measured deviations (cnn 0.025 at every rung — its
    // ReLU is itself piecewise-linear, so the tables are near-exact at
    // any granularity; bert 1.11/1.54/1.33; lm 0.22/0.41/0.74). The
    // worst observed top-1 agreement across the ladder is 0.9.
    let ladder: [(Option<f32>, [f32; 3]); 3] = [
        (None, [0.1, 2.5, 0.6]),
        (Some(0.5), [0.1, 3.5, 1.1]),
        (Some(1.0), [0.1, 3.5, 2.0]),
    ];
    const TOP1_FLOOR: f64 = 0.85;
    for (rung, bounds) in ladder {
        let served = serve_at_rung(&programs, rung);
        for ((name, range), bound) in families.iter().zip(bounds) {
            let (dev, agreement) = compare(&served[range.clone()], &oracle[range.clone()]);
            assert!(
                dev <= bound,
                "{name} at rung {rung:?}: max logit deviation {dev} exceeds \
                 documented bound {bound}"
            );
            assert!(
                agreement >= TOP1_FLOOR,
                "{name} at rung {rung:?}: top-1 agreement {agreement} below \
                 floor {TOP1_FLOOR}"
            );
        }
    }
}
