//! Cross-crate integration: the event-driven systolic array, the
//! analytic cycle model and the reference kernels must agree.

use onesa_cpwl::{NonlinearFn, PwlTable};
use onesa_sim::array::SystolicArray;
use onesa_sim::ipf::L3Addressing;
use onesa_sim::{analytic, ArrayConfig};
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, stats};

#[test]
fn event_gemm_equals_reference_across_configs() {
    let mut rng = Pcg32::seed_from_u64(1);
    for (d, t) in [(2usize, 1usize), (4, 4), (8, 16), (5, 3)] {
        let mut arr = SystolicArray::new(ArrayConfig::new(d, t));
        let a = rng.randn(&[13, 9], 1.0);
        let b = rng.randn(&[9, 11], 1.0);
        let run = arr.gemm_full(&a, &b).unwrap();
        let reference = gemm::matmul(&a, &b).unwrap();
        assert!(
            stats::max_abs_diff(run.output.as_slice(), reference.as_slice()) < 1e-3,
            "config ({d},{t})"
        );
    }
}

#[test]
fn full_nonlinear_pipeline_through_array_hardware_path() {
    // IPF through the L3 addressing module, rearrange into (x,1)/(k,b)
    // streams, MHP on the diagonal PEs — end-to-end against the scalar
    // table evaluation.
    let cfg = ArrayConfig::new(4, 8);
    let table = PwlTable::builder(NonlinearFn::Gelu)
        .granularity(0.25)
        .build()
        .unwrap();
    let x = Pcg32::seed_from_u64(2).randn(&[11, 7], 2.0);

    let mut addressing = L3Addressing::new(&cfg, &table);
    let (ipf, ipf_cycles) = addressing.process(&x);
    assert!(ipf_cycles.ipf > 0);

    let mut arr = SystolicArray::new(cfg);
    let run = arr.mhp_full(&x, &ipf.k, &ipf.b).unwrap();

    for (i, &xv) in x.as_slice().iter().enumerate() {
        let expect = table.eval(xv);
        let got = run.output.as_slice()[i];
        assert!((got - expect).abs() < 1e-5, "elem {i}: {got} vs {expect}");
    }
}

#[test]
fn analytic_matches_event_sim_on_tile_grid() {
    for (d, t) in [(3usize, 2usize), (4, 4), (6, 8)] {
        let cfg = ArrayConfig::new(d, t);
        let mut arr = SystolicArray::new(cfg.clone());
        let mut rng = Pcg32::seed_from_u64(3);
        for k in [1usize, 5, 17] {
            let a = rng.randn(&[d, k], 1.0);
            let b = rng.randn(&[k, d], 1.0);
            let run = arr.gemm_tile(&a, &b).unwrap();
            let model = analytic::gemm_breakdown(&cfg, d, k, d);
            assert_eq!(run.breakdown.skew, model.skew, "({d},{t},{k})");
            assert_eq!(run.breakdown.compute, model.compute, "({d},{t},{k})");
            assert_eq!(run.breakdown.drain, model.drain, "({d},{t},{k})");
        }
    }
}

#[test]
fn quantized_table_path_close_to_float_path() {
    // The INT16 shift-addressed path the hardware executes stays within
    // quantization resolution of the float CPWL path.
    let table = PwlTable::builder(NonlinearFn::Sigmoid)
        .granularity(0.25)
        .build()
        .unwrap();
    let q = table.qformat();
    let mut worst = 0.0f32;
    let mut x = -10.0f32;
    while x < 10.0 {
        let xq = q.from_f32(x);
        let yq = q.to_f32(table.eval_q(xq));
        let yf = table.eval(q.to_f32(xq));
        worst = worst.max((yq - yf).abs());
        x += 0.0173;
    }
    assert!(worst < 0.02, "worst deviation {worst}");
}

#[test]
fn mode_switch_gemm_then_mhp_then_gemm() {
    // The array reconfigures between GEMM and MHP without residue — the
    // paper's "one-size-fits-all" property.
    let cfg = ArrayConfig::new(4, 4);
    let mut arr = SystolicArray::new(cfg);
    let mut rng = Pcg32::seed_from_u64(4);
    let a = rng.randn(&[4, 6], 1.0);
    let b = rng.randn(&[6, 4], 1.0);
    let g1 = arr.gemm_tile(&a, &b).unwrap();
    let x = rng.randn(&[4, 8], 1.0);
    let k = rng.randn(&[4, 8], 1.0);
    let bias = rng.randn(&[4, 8], 1.0);
    let m = arr.mhp_row_tile(&x, &k, &bias).unwrap();
    let g2 = arr.gemm_tile(&a, &b).unwrap();
    assert_eq!(
        g1.output, g2.output,
        "GEMM results must be identical before/after MHP"
    );
    let mhp_ref = gemm::mhp(&x, &k, &bias).unwrap();
    assert!(stats::max_abs_diff(m.output.as_slice(), mhp_ref.as_slice()) < 1e-5);
}
