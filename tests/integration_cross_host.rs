//! Integration suite for the cross-host serving backend
//! (`onesa_core::net` + `ShardBackend::Process`).
//!
//! Every shard here is a real spawned `onesa-shard-worker` process
//! talking the length-prefixed wire protocol over a Unix or TCP socket.
//! The suite locks in the cross-host contracts:
//!
//! 1. **Bit-identicality across the wire** — for every admission policy
//!    × routing policy, a multi-process pool returns outputs
//!    bit-identical to the in-process pool (and hence to the solo
//!    reference kernels). f32 payloads travel as raw bits, so NaN
//!    payloads and signed zeros survive too.
//! 2. **Weight-cache protocol** — a program's constants cross the wire
//!    once per (shard, fingerprint); repeat submissions ship
//!    fingerprint-only deltas, observable in
//!    [`ServeSummary::wire_cache`].
//! 3. **Fault tolerance** — killing a worker process mid-run loses no
//!    ticket: its windows re-execute on surviving shards (execution is
//!    pure, so the retry is safe), outputs stay bit-identical, and the
//!    summary records the failover.
//! 4. **Backpressure over sockets** — the bounded submission queue
//!    behaves exactly as in-process: `try_submit` hands the request
//!    back at capacity and nothing is lost.
//!
//! Determinism: batch-composition-sensitive tests start paused,
//! pre-load the queue, then resume (same discipline as
//! `integration_serving.rs`). The worker binary path comes from Cargo
//! (`CARGO_BIN_EXE_onesa-shard-worker`), so `cargo test` builds it
//! automatically.

use std::path::PathBuf;

use onesa_core::plan::{Compile, TableCache};
use onesa_core::serve::{
    AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, ShardBackend, Ticket, TrySubmitError,
};
use onesa_core::{Parallelism, ProcessConfig, Request, Transport};
use onesa_cpwl::ops::TableSet;
use onesa_cpwl::NonlinearFn;
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::SmallCnn;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, Tensor};

fn assert_bits_eq(label: &str, got: &Tensor, want: &Tensor) {
    assert_eq!(got.dims(), want.dims(), "{label}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: element {i} differs ({g} vs {w})"
        );
    }
}

/// A process backend pointed at the worker binary Cargo built for this
/// test run (no PATH / sibling-directory guessing).
fn process_backend(transport: Transport) -> ShardBackend {
    let mut cfg = ProcessConfig::new(transport);
    cfg.worker = Some(PathBuf::from(env!("CARGO_BIN_EXE_onesa-shard-worker")));
    ShardBackend::Process(cfg)
}

/// A mixed queue exercising all three request kinds — GEMMs over shared
/// weights, nonlinears (with a NaN and a -0.0 in one payload to prove
/// bit-transparency of the wire), and compiled CNN programs submitted
/// repeatedly so the weight cache has something to elide.
fn mixed_requests(seed: u64) -> (Vec<Request>, Vec<Tensor>) {
    let mut rng = Pcg32::seed_from_u64(seed);
    let tables = TableSet::for_granularity(0.25).unwrap();
    let weights: Vec<Tensor> = (0..2).map(|_| rng.randn(&[16, 6], 1.0)).collect();
    let mut requests = Vec::new();
    let mut expected = Vec::new();
    for i in 0..6 {
        let a = rng.randn(&[1 + i % 4, 16], 1.0);
        let w = &weights[i % 2];
        expected.push(gemm::matmul(&a, w).unwrap());
        requests.push(Request::gemm(a, w.clone()));
    }
    for i in 0..4 {
        let mut x = rng.randn(&[2, 5], 1.5);
        if i == 0 {
            // Bit-transparency probes: Gelu tables clamp out-of-range
            // inputs, but the wire must deliver these bits unmangled.
            let v = x.as_mut_slice();
            v[0] = -0.0;
            v[1] = f32::MIN_POSITIVE / 2.0; // subnormal
        }
        let func = if i % 2 == 0 {
            NonlinearFn::Gelu
        } else {
            NonlinearFn::Tanh
        };
        expected.push(tables.table(func).unwrap().eval_tensor(&x).unwrap());
        requests.push(Request::nonlinear(func, x));
    }
    let cnn = SmallCnn::new(7, 1, 3);
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let program = cnn.compile((&mode, (8, 8))).unwrap();
    let mut table_cache = TableCache::new();
    for _ in 0..4 {
        let x = rng.randn(&[1, 8, 8], 1.0);
        let solo = program
            .run(
                std::slice::from_ref(&x),
                Parallelism::Sequential,
                &mut table_cache,
            )
            .unwrap();
        expected.push(solo.output);
        requests.push(Request::program(program.clone(), vec![x]));
    }
    (requests, expected)
}

/// Runs one paused-preload-resume session against a pool and returns
/// outputs by ticket order plus the summary.
fn run_pool(
    config: ServeConfig,
    requests: Vec<Request>,
) -> (Vec<Tensor>, onesa_core::ServeSummary) {
    let pool = ServeEngine::start(config).unwrap();
    let tickets: Vec<Ticket> = requests
        .into_iter()
        .map(|r| pool.submit(r).unwrap())
        .collect();
    pool.resume();
    let outputs = tickets
        .into_iter()
        .map(|t| t.wait().unwrap().output)
        .collect();
    (outputs, pool.finish().unwrap())
}

#[test]
fn process_pool_bit_identical_for_every_admission_and_routing() {
    let routings = [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastLoaded,
        RoutePolicy::WeightAffinity,
    ];
    let admissions = [
        AdmissionPolicy::Fifo { window: 4 },
        AdmissionPolicy::Deadline {
            window: 4,
            drop_expired: false,
        },
        AdmissionPolicy::SizeCapped { max_macs: 20_000 },
    ];
    for routing in routings {
        for admission in admissions {
            let (requests, expected) = mixed_requests(23);
            let base = ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(admission)
                .with_routing(routing)
                .start_paused();
            let (in_proc, _) = run_pool(base.clone(), requests.clone());
            let (remote, summary) = run_pool(
                base.with_backend(process_backend(Transport::Unix)),
                requests,
            );
            for (i, want) in expected.iter().enumerate() {
                let label = format!("{routing:?}/{admission:?} request {i}");
                assert_bits_eq(&format!("in-process {label}"), &in_proc[i], want);
                assert_bits_eq(&format!("cross-host {label}"), &remote[i], want);
            }
            assert_eq!(summary.failovers, 0, "{routing:?}/{admission:?}");
            // Four submissions of one program across two shards: each
            // shard pays the full send once, every repeat is a
            // fingerprint-only delta.
            let cache = summary.wire_cache;
            assert!(
                cache.full_sends <= 2,
                "{routing:?}/{admission:?}: {} full sends",
                cache.full_sends
            );
            assert_eq!(cache.full_sends + cache.ref_sends, 4);
            if cache.ref_sends > 0 {
                assert!(cache.const_bytes_saved > 0);
            }
        }
    }
}

#[test]
fn tcp_transport_matches_unix_transport() {
    let (requests, expected) = mixed_requests(31);
    let base = ServeConfig::uniform(2, ArrayConfig::new(4, 16), Parallelism::Sequential)
        .with_admission(AdmissionPolicy::Fifo { window: 3 })
        .start_paused();
    let (tcp, summary) = run_pool(base.with_backend(process_backend(Transport::Tcp)), requests);
    for (i, want) in expected.iter().enumerate() {
        assert_bits_eq(&format!("tcp request {i}"), &tcp[i], want);
    }
    assert_eq!(summary.report.requests, expected.len());
    assert_eq!(summary.failovers, 0);
}

#[test]
fn killed_worker_loses_no_tickets_and_records_the_failover() {
    let (requests, expected) = mixed_requests(47);
    let pool = ServeEngine::start(
        ServeConfig::uniform(3, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 3 })
            .with_routing(RoutePolicy::RoundRobin)
            .start_paused()
            .with_backend(process_backend(Transport::Unix)),
    )
    .unwrap();
    let pids = pool.worker_pids().to_vec();
    assert_eq!(pids.len(), 3);
    let tickets: Vec<Ticket> = requests
        .into_iter()
        .map(|r| pool.submit(r).unwrap())
        .collect();
    // SIGKILL shard 0's worker while the whole backlog is still queued:
    // round-robin guarantees shard 0 owns windows it can no longer run,
    // so the failover path must re-execute them on shards 1/2.
    let killed = std::process::Command::new("kill")
        .args(["-9", &pids[0].to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {}", pids[0]);
    pool.resume();
    for (i, (ticket, want)) in tickets.into_iter().zip(&expected).enumerate() {
        let served = ticket.wait().unwrap();
        assert!(served.shard != 0, "request {i} served by the dead shard");
        assert_bits_eq(&format!("failover request {i}"), &served.output, want);
    }
    let summary = pool.finish().unwrap();
    assert_eq!(summary.report.requests, expected.len());
    assert_eq!(summary.failovers, 1, "exactly shard 0 lost its worker");
    let requeued: usize = summary.shards.iter().map(|s| s.requeued).sum();
    assert!(requeued > 0, "shard 0's windows must re-run elsewhere");
}

#[test]
fn backpressure_applies_across_the_process_boundary() {
    let mut rng = Pcg32::seed_from_u64(5);
    let pool = ServeEngine::start(
        ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_queue_capacity(4)
            .start_paused()
            .with_backend(process_backend(Transport::Unix)),
    )
    .unwrap();
    let w = rng.randn(&[8, 4], 1.0);
    let mut tickets = Vec::new();
    let mut expected = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..32 {
        let a = rng.randn(&[2, 8], 1.0);
        let want = gemm::matmul(&a, &w).unwrap();
        match pool.try_submit(Request::gemm(a, w.clone())) {
            Ok(t) => {
                tickets.push(t);
                expected.push(want);
            }
            Err(TrySubmitError::Full(_)) => rejected += 1,
            Err(TrySubmitError::Closed(_)) => panic!("queue closed while engine lives"),
        }
    }
    assert!(
        rejected > 0,
        "a 4-slot paused queue must reject submissions"
    );
    assert!(!tickets.is_empty());
    pool.resume();
    for (i, (ticket, want)) in tickets.into_iter().zip(&expected).enumerate() {
        let served = ticket.wait().unwrap();
        assert_bits_eq(&format!("backpressure request {i}"), &served.output, want);
    }
    let _ = pool.finish().unwrap();
}
