//! Integration suite for the asynchronous sharded serving layer
//! (`onesa_core::serve`).
//!
//! Locks in the three contracts the serving layer is allowed to promise:
//!
//! 1. **Bit-identicality** — for every shard count, admission policy and
//!    routing policy, each request's output is bit-identical to running
//!    it alone on one sequential array (the reference kernels).
//! 2. **Per-ticket ordering** — ticket ids follow submission order and
//!    every outcome answers exactly the ticket that asked for it; FIFO
//!    admission also dispatches in submission order, while the deadline
//!    policy reorders windows earliest-deadline-first (observable via
//!    `dispatch_seq`).
//! 3. **Backpressure** — the bounded submission queue really bounds:
//!    `try_submit` hands the request back at capacity, nothing is lost,
//!    and the queue-depth gauges never exceed their bounds.
//!
//! Determinism: tests that depend on batch composition start the engine
//! paused (`ServeConfig::start_paused`), pre-load the queue, and let
//! `finish()` open the gate — the whole backlog then dispatches as
//! deterministic windows regardless of host timing.

use onesa_core::serve::{
    AdmissionPolicy, InterleavePolicy, PoolPolicy, RoutePolicy, ServeConfig, ServeEngine,
    ShardBackend, ShardSpec, Ticket, TrySubmitError,
};
use onesa_core::{Parallelism, Request};
use onesa_cpwl::ops::TableSet;
use onesa_cpwl::NonlinearFn;
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::{SmallCnn, TinyBert};
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, Tensor};

fn assert_bits_eq(label: &str, got: &Tensor, want: &Tensor) {
    assert_eq!(got.dims(), want.dims(), "{label}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: element {i} differs ({g} vs {w})"
        );
    }
}

/// A mixed queue: GEMMs over three shared weight matrices plus two
/// nonlinear functions, with per-request solo-run reference outputs.
fn mixed_requests(seed: u64) -> (Vec<Request>, Vec<Tensor>) {
    let mut rng = Pcg32::seed_from_u64(seed);
    let tables = TableSet::for_granularity(0.25).unwrap();
    let weights: Vec<Tensor> = (0..3).map(|_| rng.randn(&[24, 10], 1.0)).collect();
    let mut requests = Vec::new();
    let mut expected = Vec::new();
    for i in 0..12 {
        let a = rng.randn(&[2 + i % 5, 24], 1.0);
        let w = &weights[i % 3];
        expected.push(gemm::matmul(&a, w).unwrap());
        requests.push(Request::gemm(a, w.clone()));
    }
    for i in 0..6 {
        let x = rng.randn(&[1 + i % 3, 7], 1.5);
        let func = if i % 2 == 0 {
            NonlinearFn::Gelu
        } else {
            NonlinearFn::Tanh
        };
        expected.push(tables.table(func).unwrap().eval_tensor(&x).unwrap());
        requests.push(Request::nonlinear(func, x));
    }
    (requests, expected)
}

#[test]
fn sharded_async_results_bit_identical_to_single_shard_sequential() {
    // The oracle IS single-shard sequential execution: the per-request
    // reference outputs from `mixed_requests` are exactly what a
    // one-shard, `Parallelism::Sequential` pool serves request-at-a-time.
    let routings = [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastLoaded,
        RoutePolicy::WeightAffinity,
    ];
    let admissions = [
        AdmissionPolicy::Fifo { window: 4 },
        AdmissionPolicy::Deadline {
            window: 4,
            drop_expired: false,
        },
        AdmissionPolicy::SizeCapped { max_macs: 2_000 },
    ];
    for routing in routings {
        for admission in admissions {
            let (requests, expected) = mixed_requests(7);
            let pool = ServeEngine::start(
                ServeConfig::uniform(3, ArrayConfig::new(8, 16), Parallelism::Threads(2))
                    .with_routing(routing)
                    .with_admission(admission),
            )
            .unwrap();
            let tickets: Vec<Ticket> = requests
                .into_iter()
                .enumerate()
                .map(|(i, r)| match admission {
                    // Exercise the deadline path too: reversed priorities.
                    AdmissionPolicy::Deadline { .. } => {
                        pool.submit_with_deadline(r, 1_000 - i as u64).unwrap()
                    }
                    _ => pool.submit(r).unwrap(),
                })
                .collect();
            for (i, (ticket, want)) in tickets.into_iter().zip(&expected).enumerate() {
                assert_eq!(ticket.id(), i as u64);
                let served = ticket.wait().unwrap();
                assert_eq!(served.ticket, i as u64, "{routing:?}/{admission:?}");
                assert!(served.shard < 3);
                assert_bits_eq(
                    &format!("{routing:?}/{admission:?} request {i}"),
                    &served.output,
                    want,
                );
            }
            let summary = pool.finish().unwrap();
            assert_eq!(summary.report.requests, 18);
            assert_eq!(summary.report.latencies.len(), 18);
            assert!(summary.windows >= 1);
        }
    }
}

#[test]
fn heterogeneous_shards_still_bit_identical() {
    // Different array sizes and host policies per shard change cycle
    // accounting and wall speed, never values.
    let (requests, expected) = mixed_requests(11);
    let pool = ServeEngine::start(ServeConfig {
        shards: vec![
            ShardSpec {
                config: ArrayConfig::new(4, 16),
                parallelism: Parallelism::Sequential,
                granularity: None,
            },
            ShardSpec {
                config: ArrayConfig::new(8, 16),
                parallelism: Parallelism::Threads(2),
                granularity: None,
            },
            ShardSpec {
                config: ArrayConfig::new(16, 8),
                parallelism: Parallelism::Auto,
                granularity: None,
            },
        ],
        granularity: 0.25,
        queue_capacity: 64,
        admission: AdmissionPolicy::Fifo { window: 6 },
        routing: RoutePolicy::RoundRobin,
        interleave: InterleavePolicy::default(),
        paused: false,
        backend: ShardBackend::InProcess,
        session_capacity: 64,
        degrade: None,
        pool: PoolPolicy::AlwaysOn,
    })
    .unwrap();
    let tickets: Vec<Ticket> = requests
        .into_iter()
        .map(|r| pool.submit(r).unwrap())
        .collect();
    for (i, (ticket, want)) in tickets.into_iter().zip(&expected).enumerate() {
        let served = ticket.wait().unwrap();
        assert_bits_eq(&format!("hetero request {i}"), &served.output, want);
    }
    let _ = pool.finish().unwrap();
}

#[test]
fn ticket_ids_and_fifo_dispatch_follow_submission_order() {
    let (requests, _) = mixed_requests(13);
    let n = requests.len();
    let pool = ServeEngine::start(
        ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 64 })
            .start_paused(),
    )
    .unwrap();
    let tickets: Vec<Ticket> = requests
        .into_iter()
        .map(|r| pool.submit(r).unwrap())
        .collect();
    pool.resume();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.ticket, i as u64, "ticket ids are the submission order");
        // FIFO admission never reorders: global dispatch order equals
        // submission order even across shards.
        assert_eq!(o.dispatch_seq, i as u64);
        assert!(o.queue_seconds >= 0.0);
    }
    let summary = pool.finish().unwrap();
    assert_eq!(summary.report.requests, n);
}

#[test]
fn deadline_admission_dispatches_earliest_deadline_first() {
    let mut rng = Pcg32::seed_from_u64(17);
    let w = rng.randn(&[8, 4], 1.0);
    let pool = ServeEngine::start(
        ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Deadline {
                window: 8,
                drop_expired: false,
            })
            .start_paused(),
    )
    .unwrap();
    // Pre-load one window with shuffled deadlines (plus one no-deadline
    // request, which must sort last), then open the gate.
    let deadlines = [Some(50u64), Some(10), Some(30), None, Some(20)];
    let tickets: Vec<Ticket> = deadlines
        .iter()
        .map(|d| {
            let r = Request::gemm(rng.randn(&[2, 8], 1.0), w.clone());
            match d {
                Some(us) => pool.submit_with_deadline(r, *us).unwrap(),
                None => pool.submit(r).unwrap(),
            }
        })
        .collect();
    pool.resume();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    // EDF over [50, 10, 30, none, 20]: tickets dispatch as 1, 4, 2, 0, 3.
    let dispatch: Vec<u64> = outcomes.iter().map(|o| o.dispatch_seq).collect();
    assert_eq!(dispatch, vec![3, 0, 2, 4, 1]);
    let summary = pool.finish().unwrap();
    assert_eq!(summary.windows, 1, "the pre-loaded queue is one window");
}

#[test]
fn bounded_queue_backpressure_hands_requests_back() {
    let mut rng = Pcg32::seed_from_u64(19);
    let w = rng.randn(&[8, 4], 1.0);
    let pool = ServeEngine::start(
        ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_queue_capacity(4)
            .start_paused(),
    )
    .unwrap();
    let mut tickets = Vec::new();
    for _ in 0..4 {
        let r = Request::gemm(rng.randn(&[2, 8], 1.0), w.clone());
        tickets.push(pool.try_submit(r).unwrap());
    }
    assert_eq!(pool.pending(), 4);
    // The queue is at capacity and the gate is closed: the fifth request
    // must come straight back, not block and not vanish.
    let fifth = Request::gemm(rng.randn(&[2, 8], 1.0), w.clone());
    let returned = match pool.try_submit(fifth) {
        Err(TrySubmitError::Full(r)) => r,
        other => panic!("expected Full, got {:?}", other.map(|t| t.id())),
    };
    assert!(returned.modeled_macs() > 0, "request handed back intact");
    // Open the gate: the backlog drains and every accepted ticket lands.
    pool.resume();
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    let summary = pool.finish().unwrap();
    assert_eq!(summary.report.requests, 4);
    assert_eq!(summary.peak_queue_depth, 4, "gauge saw the full queue");
}

#[test]
fn weight_affinity_preserves_coalescing_across_shards() {
    let run = |routing: RoutePolicy| {
        let mut rng = Pcg32::seed_from_u64(23);
        let w1 = rng.randn(&[16, 8], 1.0);
        let w2 = rng.randn(&[16, 6], 1.0);
        let pool = ServeEngine::start(
            ServeConfig::uniform(4, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Fifo { window: 64 })
                .with_routing(routing)
                .start_paused(),
        )
        .unwrap();
        let mut tickets = Vec::new();
        for i in 0..16 {
            // First half against w1, second against w2, so round-robin
            // hands every shard a mix of both weights.
            let w = if i < 8 { &w1 } else { &w2 };
            tickets.push(
                pool.submit(Request::gemm(rng.randn(&[3, 16], 1.0), w.clone()))
                    .unwrap(),
            );
        }
        pool.resume();
        for t in tickets {
            t.wait().unwrap();
        }
        pool.finish().unwrap()
    };
    // One pre-loaded window: with weight affinity, each weight's GEMMs
    // all land on one shard and coalesce into ONE kernel call per
    // weight. Round-robin scatters them: every shard that sees a weight
    // pays its own weight load.
    let affinity = run(RoutePolicy::WeightAffinity);
    assert_eq!(affinity.report.gemm_groups, 2);
    let scattered = run(RoutePolicy::RoundRobin);
    assert_eq!(scattered.report.gemm_groups, 8); // 4 shards x 2 weights
    assert!(affinity.modeled_speedup() >= 1.0 && scattered.modeled_speedup() >= 1.0);
}

#[test]
fn least_loaded_balances_and_sharding_cuts_makespan() {
    let mut rng = Pcg32::seed_from_u64(29);
    let pool = ServeEngine::start(
        ServeConfig::uniform(4, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 64 })
            .with_routing(RoutePolicy::LeastLoaded)
            .start_paused(),
    )
    .unwrap();
    // 16 equal-work GEMMs with distinct weights (no coalescing, so the
    // only speedup source is sharding itself).
    let mut tickets = Vec::new();
    for _ in 0..16 {
        tickets.push(
            pool.submit(Request::gemm(
                rng.randn(&[8, 16], 1.0),
                rng.randn(&[16, 8], 1.0),
            ))
            .unwrap(),
        );
    }
    pool.resume();
    for t in tickets {
        t.wait().unwrap();
    }
    let summary = pool.finish().unwrap();
    // Equal work + least-loaded = an even 4/4/4/4 split.
    for s in &summary.shards {
        assert_eq!(s.requests, 4, "shard {} got an uneven share", s.shard);
        assert!(s.occupancy >= 0.0 && s.occupancy <= 1.0);
        assert!(s.peak_queue_depth <= 3); // channel bound + one in flight
    }
    // Four arrays over uncoalescable work: the modeled makespan must be
    // close to a quarter of the solo schedule.
    assert!(
        summary.modeled_speedup() > 2.5,
        "expected ~4x from 4 shards, got {:.2}x",
        summary.modeled_speedup()
    );
}

#[test]
fn concurrent_clients_all_get_served() {
    let pool = ServeEngine::start(
        ServeConfig::uniform(3, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_queue_capacity(8),
    )
    .unwrap();
    let producers: Vec<_> = (0..4)
        .map(|p| {
            let client = pool.client();
            std::thread::spawn(move || {
                let mut rng = Pcg32::seed_from_u64(100 + p);
                let w = rng.randn(&[12, 5], 1.0);
                let mut pairs = Vec::new();
                for _ in 0..8 {
                    let a = rng.randn(&[3, 12], 1.0);
                    let want = gemm::matmul(&a, &w).unwrap();
                    let ticket = client.submit(Request::gemm(a, w.clone())).unwrap();
                    pairs.push((ticket, want));
                }
                for (i, (ticket, want)) in pairs.into_iter().enumerate() {
                    let served = ticket.wait().unwrap();
                    assert_bits_eq(&format!("producer {p} request {i}"), &served.output, &want);
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }
    let summary = pool.finish().unwrap();
    assert_eq!(summary.report.requests, 32);
    assert!(summary.report.latencies.iter().all(|l| l.is_finite()));
    // Queue bound plus at most one momentarily blocked submitter per
    // producer thread (see `ServeSummary::peak_queue_depth`).
    assert!(summary.peak_queue_depth <= 8 + 4);
}

#[test]
fn model_batch_inference_routes_through_the_pool() {
    // The nn models split at the classifier boundary so the final
    // shared-weight GEMMs of a whole batch go through the admission
    // queue, coalesce on one shard, and still answer bit-identically to
    // per-sample inference.
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let pool = ServeEngine::start(
        ServeConfig::uniform(3, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_routing(RoutePolicy::WeightAffinity),
    )
    .unwrap();

    let cnn = SmallCnn::new(31, 2, 4);
    let mut rng = Pcg32::seed_from_u64(37);
    let images: Vec<Tensor> = (0..6).map(|_| rng.randn(&[2, 8, 8], 1.0)).collect();
    let feats: Vec<Tensor> = images
        .iter()
        .map(|x| cnn.pooled_features(x, &mode))
        .collect();
    let fc = cnn.classifier();
    let served = pool
        .classify_batch(&feats, &fc.w.value, fc.b.value.as_slice())
        .unwrap();
    for (i, (got, x)) in served.iter().zip(&images).enumerate() {
        assert_eq!(got, &cnn.logits(x, &mode), "cnn sample {i}");
    }

    let bert = TinyBert::new(41, 30, 8, 3, 1);
    let seqs: Vec<Vec<usize>> = (0..5)
        .map(|i| (0..(3 + i % 5)).map(|t| (7 * i + t) % 30).collect())
        .collect();
    let feats: Vec<Tensor> = seqs
        .iter()
        .map(|s| bert.pooled_features(s, &mode))
        .collect();
    let head = bert.classifier();
    let served = pool
        .classify_batch(&feats, &head.w.value, head.b.value.as_slice())
        .unwrap();
    for (i, (got, s)) in served.iter().zip(&seqs).enumerate() {
        assert_eq!(got, &bert.predict(s, &mode), "bert sequence {i}");
    }

    let summary = pool.finish().unwrap();
    assert_eq!(summary.report.requests, 11);
}

#[test]
fn summary_reports_are_internally_consistent() {
    let (requests, _) = mixed_requests(43);
    let n = requests.len();
    let pool = ServeEngine::start(
        ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential).start_paused(),
    )
    .unwrap();
    let tickets: Vec<Ticket> = requests
        .into_iter()
        .map(|r| pool.submit(r).unwrap())
        .collect();
    let summary = pool.finish().unwrap(); // finish() opens the gate itself
    let r = &summary.report;
    assert_eq!(r.requests, n);
    assert_eq!(r.latencies.len(), n);
    assert!(r.wall_seconds > 0.0);
    assert!(r.batched_seconds > 0.0 && r.unbatched_seconds >= r.batched_seconds);
    assert!(r.total_macs > 0 && r.total_nonlinear_evals > 0);
    assert_eq!(
        summary.shards.iter().map(|s| s.requests).sum::<usize>(),
        n,
        "every request landed on exactly one shard"
    );
    assert_eq!(
        summary.shards.iter().map(|s| s.macs).sum::<u64>(),
        r.total_macs
    );
    // The makespan is the busiest shard, and per-shard array time is
    // bounded by the pool total.
    let busiest = summary
        .shards
        .iter()
        .map(|s| s.array_seconds)
        .fold(0.0, f64::max);
    assert!((busiest - r.batched_seconds).abs() < 1e-15);
    assert!(!format!("{summary}").contains("NaN"));
    // Tickets waited after finish still resolve (results are buffered).
    for t in tickets {
        assert!(t.wait().is_ok());
    }
}
