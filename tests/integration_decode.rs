//! Decode-correctness oracle suite for autoregressive serving:
//! N-token generation through **continuous batching** — many live
//! sessions' prefill and decode steps coalescing inside `ServeEngine`
//! admission windows — must be **bit-identical** to solo
//! recompute-from-scratch decoding with no KV cache
//! ([`TinyCausalLm::generate_direct`], the retained `*_direct`
//! reference path).
//!
//! Coverage:
//!
//! * every [`InterleavePolicy`] × admission policy × routing policy
//!   combination, at 1, 2 and 4 shards, on the in-process backend;
//! * the same policy grid on the `Process` backend (real spawned
//!   `onesa-shard-worker` processes over Unix sockets), with the shard
//!   counts cycled across the grid so each count runs multi-process;
//! * every [`InferenceMode`] (exact, CPWL quantized, CPWL unquantized)
//!   on both backends;
//! * a chaos test: SIGKILL a worker process *mid-decode* — the host
//!   holds every session's KV tensors, so generation resumes on a
//!   surviving worker and the full token streams stay bit-identical.
//!
//! Tokens are compared with `assert_eq!` on `Vec<usize>`: argmax over
//! logits is exact, so a single differing mantissa bit anywhere in the
//! cached path shows up as a diverged token stream within a few steps.

use std::path::PathBuf;

use onesa_core::serve::{
    AdmissionPolicy, InterleavePolicy, RoutePolicy, ServeConfig, ServeEngine, SessionId,
    ShardBackend, Ticket,
};
use onesa_core::{Parallelism, ProcessConfig, Program, ServeSummary, Transport};
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::TinyCausalLm;
use onesa_sim::ArrayConfig;
use onesa_tensor::stats;

fn argmax(logits: &[f32]) -> usize {
    stats::argmax(logits).expect("non-empty vocabulary")
}

/// A process backend pointed at the worker binary Cargo built for this
/// test run.
fn process_backend() -> ShardBackend {
    let mut cfg = ProcessConfig::new(Transport::Unix);
    cfg.worker = Some(PathBuf::from(env!("CARGO_BIN_EXE_onesa-shard-worker")));
    ShardBackend::Process(cfg)
}

/// Generates `n` tokens for every prompt through one serving pool,
/// continuous-batching style: all sessions prefill in one wave, then
/// every decode round submits one step per live session before waiting
/// any of them — so each admission window sees steps from many
/// sessions and can coalesce their shared-weight GEMMs.
fn generate_via_pool(
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    prompts: &[Vec<usize>],
    n: usize,
    cfg: ServeConfig,
) -> (Vec<Vec<usize>>, ServeSummary) {
    let engine = ServeEngine::start(cfg).unwrap();
    let sessions: Vec<SessionId> = prompts.iter().map(|_| engine.open_session()).collect();
    let tickets: Vec<Ticket> = prompts
        .iter()
        .zip(&sessions)
        .map(|(p, &sid)| {
            let program = Program::clone(&lm.compiled_prefill(mode, p.len()));
            engine
                .submit_prefill(sid, program, vec![TinyCausalLm::ids_tensor(p)], p.len())
                .unwrap()
        })
        .collect();
    let mut next: Vec<usize> = tickets
        .into_iter()
        .map(|t| argmax(&t.wait().unwrap().output.into_vec()))
        .collect();
    let mut out: Vec<Vec<usize>> = next.iter().map(|&t| vec![t]).collect();
    for _ in 1..n {
        let tickets: Vec<Ticket> = sessions
            .iter()
            .zip(&next)
            .map(|(&sid, &tok)| {
                let ctx = engine.session_context_rows(sid).unwrap();
                let program = Program::clone(&lm.compiled_decode(mode, ctx));
                engine
                    .submit_decode(sid, program, vec![TinyCausalLm::ids_tensor(&[tok])])
                    .unwrap()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let tok = argmax(&t.wait().unwrap().output.into_vec());
            next[i] = tok;
            out[i].push(tok);
        }
    }
    for (p, &sid) in prompts.iter().zip(&sessions) {
        assert_eq!(
            engine.session_context_rows(sid),
            Some(p.len() + n - 1),
            "cache length == prompt + generated-token context"
        );
        assert_eq!(engine.session_tokens(sid), Some(n as u64 - 1));
        assert!(engine.close_session(sid));
    }
    (out, engine.finish().unwrap())
}

fn policy_grid() -> Vec<(InterleavePolicy, AdmissionPolicy, RoutePolicy)> {
    let interleaves = [
        InterleavePolicy::Mixed,
        InterleavePolicy::PrefillFirst,
        InterleavePolicy::DecodeFirst,
    ];
    let admissions = [
        AdmissionPolicy::Fifo { window: 3 },
        AdmissionPolicy::Deadline {
            window: 3,
            drop_expired: false,
        },
        AdmissionPolicy::SizeCapped { max_macs: 200_000 },
    ];
    let routings = [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastLoaded,
        RoutePolicy::WeightAffinity,
    ];
    let mut grid = Vec::new();
    for i in interleaves {
        for a in admissions {
            for r in routings {
                grid.push((i, a, r));
            }
        }
    }
    grid
}

fn check_summary(summary: &ServeSummary, prompts: &[Vec<usize>], n: usize, label: &str) {
    let s = prompts.len() as u64;
    assert_eq!(summary.sessions.opened, s, "{label}: sessions opened");
    assert_eq!(summary.sessions.closed, s, "{label}: sessions closed");
    assert_eq!(summary.sessions.live, 0, "{label}: no orphaned sessions");
    assert_eq!(
        summary.prefill.tokens,
        prompts.iter().map(|p| p.len() as u64).sum::<u64>(),
        "{label}: prefill covers every prompt token"
    );
    assert_eq!(
        summary.decode.tokens,
        s * (n as u64 - 1),
        "{label}: one decode step per generated token after the first"
    );
    assert_eq!(summary.prefill.requests, prompts.len(), "{label}");
    assert_eq!(summary.decode.requests, prompts.len() * (n - 1), "{label}");
}

#[test]
fn in_process_batched_generation_matches_direct_for_every_policy_combo() {
    let lm = TinyCausalLm::new(11, 24, 16, 2, true);
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let prompts: Vec<Vec<usize>> = vec![vec![3, 1, 4], vec![2, 7], vec![5, 9, 2, 6]];
    let n = 4;
    let want: Vec<Vec<usize>> = prompts
        .iter()
        .map(|p| lm.generate_direct(p, n, &mode))
        .collect();
    for (interleave, admission, routing) in policy_grid() {
        for shards in [1usize, 2, 4] {
            let label = format!("{interleave:?}/{admission:?}/{routing:?}/{shards} shards");
            let cfg =
                ServeConfig::uniform(shards, ArrayConfig::new(8, 16), Parallelism::Sequential)
                    .with_admission(admission)
                    .with_routing(routing)
                    .with_interleave(interleave);
            let (got, summary) = generate_via_pool(&lm, &mode, &prompts, n, cfg);
            assert_eq!(
                got, want,
                "{label}: batched generation diverged from direct"
            );
            check_summary(&summary, &prompts, n, &label);
        }
    }
}

#[test]
fn process_backend_batched_generation_matches_direct_across_policies() {
    // Untied head here (the in-process grid runs tied), so both LM-head
    // forms cross the wire. Shard counts cycle 1/2/4 across the grid —
    // every policy combo runs multi-process, every count is covered.
    let lm = TinyCausalLm::new(12, 20, 16, 2, false);
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let prompts: Vec<Vec<usize>> = vec![vec![4, 2, 8], vec![1, 6]];
    let n = 3;
    let want: Vec<Vec<usize>> = prompts
        .iter()
        .map(|p| lm.generate_direct(p, n, &mode))
        .collect();
    for (i, (interleave, admission, routing)) in policy_grid().into_iter().enumerate() {
        let shards = [1usize, 2, 4][i % 3];
        let label = format!("{interleave:?}/{admission:?}/{routing:?}/{shards} shards");
        let cfg = ServeConfig::uniform(shards, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(admission)
            .with_routing(routing)
            .with_interleave(interleave)
            .with_backend(process_backend());
        let (got, summary) = generate_via_pool(&lm, &mode, &prompts, n, cfg);
        assert_eq!(got, want, "{label}: cross-host generation diverged");
        check_summary(&summary, &prompts, n, &label);
        assert_eq!(summary.failovers, 0, "{label}");
    }
}

#[test]
fn every_inference_mode_matches_direct_on_both_backends() {
    let lm = TinyCausalLm::new(13, 18, 16, 3, true);
    let modes = [
        InferenceMode::Exact,
        InferenceMode::cpwl(0.25).unwrap(),
        InferenceMode::cpwl_unquantized(0.5).unwrap(),
    ];
    let prompts: Vec<Vec<usize>> = vec![vec![3, 1, 4, 1], vec![5, 9]];
    let n = 3;
    for mode in &modes {
        let want: Vec<Vec<usize>> = prompts
            .iter()
            .map(|p| lm.generate_direct(p, n, mode))
            .collect();
        let base = ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_routing(RoutePolicy::WeightAffinity)
            .with_interleave(InterleavePolicy::DecodeFirst);
        let (in_proc, _) = generate_via_pool(&lm, mode, &prompts, n, base.clone());
        assert_eq!(in_proc, want, "{}: in-process diverged", mode.label());
        let (remote, _) =
            generate_via_pool(&lm, mode, &prompts, n, base.with_backend(process_backend()));
        assert_eq!(remote, want, "{}: cross-host diverged", mode.label());
    }
}

#[test]
fn worker_killed_mid_decode_resumes_bit_identically_on_a_survivor() {
    let lm = TinyCausalLm::new(17, 20, 16, 2, false);
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let prompts: Vec<Vec<usize>> = vec![vec![2, 4, 6], vec![7, 3], vec![1, 1, 5]];
    let n = 5;
    let want: Vec<Vec<usize>> = prompts
        .iter()
        .map(|p| lm.generate_direct(p, n, &mode))
        .collect();

    let engine = ServeEngine::start(
        ServeConfig::uniform(3, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 3 })
            .with_routing(RoutePolicy::RoundRobin)
            .with_backend(process_backend()),
    )
    .unwrap();
    let pids = engine.worker_pids().to_vec();
    assert_eq!(pids.len(), 3);

    let sessions: Vec<SessionId> = prompts.iter().map(|_| engine.open_session()).collect();
    let tickets: Vec<Ticket> = prompts
        .iter()
        .zip(&sessions)
        .map(|(p, &sid)| {
            let program = Program::clone(&lm.compiled_prefill(&mode, p.len()));
            engine
                .submit_prefill(sid, program, vec![TinyCausalLm::ids_tensor(p)], p.len())
                .unwrap()
        })
        .collect();
    let mut next: Vec<usize> = tickets
        .into_iter()
        .map(|t| argmax(&t.wait().unwrap().output.into_vec()))
        .collect();
    let mut out: Vec<Vec<usize>> = next.iter().map(|&t| vec![t]).collect();

    for round in 1..n {
        if round == 2 {
            // Mid-decode chaos: round-robin pinned at least one session
            // to shard 0, whose worker now dies. The KV tensors live on
            // the host, so the pinned sessions' remaining steps ring
            // over to a surviving worker and the streams must not skip
            // a beat.
            let killed = std::process::Command::new("kill")
                .args(["-9", &pids[0].to_string()])
                .status()
                .expect("spawn kill");
            assert!(killed.success(), "kill -9 {}", pids[0]);
        }
        let tickets: Vec<Ticket> = sessions
            .iter()
            .zip(&next)
            .map(|(&sid, &tok)| {
                let ctx = engine.session_context_rows(sid).unwrap();
                let program = Program::clone(&lm.compiled_decode(&mode, ctx));
                engine
                    .submit_decode(sid, program, vec![TinyCausalLm::ids_tensor(&[tok])])
                    .unwrap()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let tok = argmax(&t.wait().unwrap().output.into_vec());
            next[i] = tok;
            out[i].push(tok);
        }
    }

    assert_eq!(
        out, want,
        "post-failover token streams diverged from direct"
    );
    for &sid in &sessions {
        assert_eq!(engine.session_tokens(sid), Some(n as u64 - 1));
        assert!(engine.close_session(sid));
    }
    let summary = engine.finish().unwrap();
    assert_eq!(summary.failovers, 1, "exactly shard 0 lost its worker");
    check_summary(&summary, &prompts, n, "chaos");
}
