//! Degenerate-configuration edge cases across the stack: 1×1 arrays,
//! single-segment tables, unit-size workload phases and FIFO
//! backpressure — the corners a downstream user hits first.

use onesa_core::OneSa;
use onesa_cpwl::{NonlinearFn, PwlTable};
use onesa_nn::profile::OpClass;
use onesa_nn::workloads::{ModelFamily, Phase, Workload};
use onesa_sim::array::SystolicArray;
use onesa_sim::fifo::Fifo;
use onesa_sim::{analytic, ArrayConfig};
use onesa_tensor::{gemm, Tensor};

#[test]
fn one_by_one_array_still_computes() {
    // A 1×1 grid degenerates to a single MAC-vector PE; both dataflows
    // must still be functionally correct.
    let cfg = ArrayConfig::new(1, 4);
    let mut arr = SystolicArray::new(cfg.clone());
    let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
    let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3, 1]).unwrap();
    let run = arr.gemm_tile(&a, &b).unwrap();
    assert_eq!(run.output.as_slice(), &[32.0]);

    let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap();
    let k = Tensor::from_vec(vec![3.0, 0.5], &[1, 2]).unwrap();
    let bias = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
    let run = arr.mhp_row_tile(&x, &k, &bias).unwrap();
    assert_eq!(run.output, gemm::mhp(&x, &k, &bias).unwrap());

    // Analytic model agrees on the single-tile phases.
    let model = analytic::gemm_breakdown(&cfg, 1, 3, 1);
    assert_eq!(model.skew, 0);
    assert_eq!(model.compute, 1);
}

#[test]
fn single_segment_table_is_one_chord() {
    let t = PwlTable::builder(NonlinearFn::Tanh)
        .granularity(8.0)
        .range(-4.0, 4.0)
        .build()
        .unwrap();
    assert_eq!(t.n_segments(), 1);
    // The single chord connects tanh(-4) to tanh(4): nearly y = x/4.
    let (k, b) = t.params(0);
    assert!((k - (4.0f32.tanh() - (-4.0f32).tanh()) / 8.0).abs() < 1e-6);
    assert!(b.abs() < 1e-6);
    // Every input lands in segment 0, capped or not.
    for x in [-100.0f32, -1.0, 0.0, 1.0, 100.0] {
        assert_eq!(t.segment_index(x), 0);
    }
}

#[test]
fn unit_gemm_and_unit_nonlinear_phases() {
    let engine = OneSa::new(ArrayConfig::new(8, 16));
    let w = Workload {
        name: "unit".to_string(),
        family: ModelFamily::Cnn,
        phases: vec![
            Phase::Gemm { m: 1, k: 1, n: 1 },
            Phase::Pointwise {
                class: OpClass::Activation,
                m: 1,
                n: 1,
                gelu_like: false,
            },
            Phase::Softmax { rows: 1, cols: 1 },
            Phase::Norm { rows: 1, cols: 1 },
        ],
    };
    let r = engine.run_workload(&w);
    assert!(r.stats.cycles() > 0);
    assert_eq!(w.total_macs(), 1);
    assert_eq!(w.nonlinear_elems(), 3);
}

#[test]
fn empty_workload_report_is_zero() {
    let engine = OneSa::default();
    let w = Workload {
        name: "empty".to_string(),
        family: ModelFamily::Gnn,
        phases: vec![],
    };
    let r = engine.run_workload(&w);
    assert_eq!(r.stats.cycles(), 0);
    assert_eq!(r.gops(), 0.0);
    assert_eq!(r.utilization(), 0.0);
}

#[test]
fn fifo_backpressure_round_trip() {
    // A producer streaming faster than the consumer must see rejections,
    // and every rejected value must be retriable without loss.
    let mut f: Fifo<u32> = Fifo::new("stress", 4);
    let mut consumed = Vec::new();
    let mut pending: Option<u32> = None;
    let mut next = 0u32;
    for step in 0..100 {
        // Produce every cycle, consume every other cycle.
        let value = pending.take().unwrap_or_else(|| {
            let v = next;
            next += 1;
            v
        });
        if let Err(onesa_sim::fifo::FifoFull(v)) = f.push(value) {
            pending = Some(v);
        }
        if step % 2 == 1 {
            if let Some(v) = f.pop() {
                consumed.push(v);
            }
        }
    }
    while let Some(v) = f.pop() {
        consumed.push(v);
    }
    // In-order, gap-free delivery despite backpressure.
    for (i, &v) in consumed.iter().enumerate() {
        assert_eq!(v as usize, i);
    }
    assert!(f.rejected_pushes() > 0, "test never exercised backpressure");
    assert_eq!(f.high_water(), 4);
}

#[test]
fn macs_wider_than_k_waste_no_correctness() {
    // K smaller than the MAC vector: one partial chunk per tile.
    let cfg = ArrayConfig::new(4, 16);
    let mut arr = SystolicArray::new(cfg.clone());
    let a = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[4, 2]).unwrap();
    let b = Tensor::from_vec((0..8).map(|i| (i as f32) * 0.5).collect(), &[2, 4]).unwrap();
    let run = arr.gemm_tile(&a, &b).unwrap();
    let reference = gemm::matmul(&a, &b).unwrap();
    assert_eq!(run.output, reference);
    assert_eq!(analytic::gemm_breakdown(&cfg, 4, 2, 4).compute, 1);
}

#[test]
fn capped_inputs_dominate_gracefully() {
    // A tensor entirely outside the table range: every lookup caps, and
    // the result is the boundary chords' extrapolation, not garbage.
    let t = PwlTable::builder(NonlinearFn::Sigmoid)
        .granularity(0.5)
        .build()
        .unwrap();
    let x = Tensor::filled(&[4, 4], 1000.0);
    let y = t.eval_tensor(&x).unwrap();
    for &v in y.as_slice() {
        assert!(v.is_finite());
        assert!((v - 1.0).abs() < 0.6, "sigmoid cap wildly off: {v}");
    }
    let ipf = t.ipf(&x);
    assert!(ipf
        .segments
        .iter()
        .all(|&s| s as usize == t.n_segments() - 1));
}
