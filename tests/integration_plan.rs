//! Integration suite for the operator-graph Program IR
//! (`onesa_core::plan` + `onesa_nn::compile`).
//!
//! Locks in the two contracts of the whole-network refactor:
//!
//! 1. **Bit-identicality** — every model family's compiled program
//!    produces outputs bit-identical to the direct layer-by-layer
//!    reference path (`logits_direct` / `predict_direct`), for every
//!    `InferenceMode` × `Parallelism`, whether run solo, through
//!    `BatchEngine::submit_program`, or through a `ServeEngine` pool
//!    under every `AdmissionPolicy` × `RoutePolicy`.
//! 2. **Cross-program per-stage coalescing** — concurrent instances of
//!    the same network collapse their per-stage kernels (shared-weight
//!    GEMM stacking and shared-table IPF concatenation) at *multiple*
//!    stages, not just the classifier: kernel-group counts drop versus
//!    uncoalesced solo runs.

use onesa_core::plan::{Compile, OptLevel, TableCache};
use onesa_core::serve::{AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, Ticket};
use onesa_core::{BatchEngine, OneSa, Parallelism, Request};
use onesa_data::Difficulty;
use onesa_nn::models::{Gcn, SmallCnn, TinyBert};
use onesa_nn::InferenceMode;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

fn assert_bits_eq(label: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: element {i} differs ({g} vs {w})"
        );
    }
}

fn modes() -> Vec<InferenceMode> {
    vec![
        InferenceMode::Exact,
        InferenceMode::cpwl(0.25).unwrap(),
        InferenceMode::cpwl_unquantized(0.5).unwrap(),
    ]
}

fn parallelisms() -> [Parallelism; 3] {
    [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Auto,
    ]
}

/// The three untrained (but deterministic-weight) model instances plus a
/// graph for the GCN.
fn models() -> (SmallCnn, TinyBert, Gcn, onesa_data::GraphDataset) {
    let cnn = SmallCnn::new(11, 1, 3);
    let bert = TinyBert::new(5, 32, 12, 2, 2);
    let graph = onesa_data::GraphDataset::generate("t", 4, Difficulty::easy(3), 20, 6, 0.3);
    let gcn = Gcn::new(6, 6, 8, 3);
    (cnn, bert, gcn, graph)
}

#[test]
fn compiled_programs_bit_identical_to_direct_paths() {
    let (cnn, bert, gcn, graph) = models();
    let x = Pcg32::seed_from_u64(1).randn(&[1, 8, 8], 1.0);
    let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6];
    for mode in modes() {
        for par in parallelisms() {
            let label = format!("{} / {}", mode.label(), par.label());
            let mut cache = TableCache::new();

            let p = cnn.compile((&mode, (8, 8))).unwrap();
            let run = p.run(std::slice::from_ref(&x), par, &mut cache).unwrap();
            assert_bits_eq(
                &format!("cnn {label}"),
                run.output.as_slice(),
                &cnn.logits_direct(&x, &mode),
            );
            assert_eq!(run.op_stats.len(), p.stages());

            let p = bert.compile((&mode, seq.len())).unwrap();
            let run = p
                .run(&[TinyBert::ids_tensor(&seq)], par, &mut cache)
                .unwrap();
            assert_bits_eq(
                &format!("bert {label}"),
                run.output.as_slice(),
                &bert.predict_direct(&seq, &mode),
            );

            let p = gcn.compile((&mode, &graph)).unwrap();
            let run = p
                .run(std::slice::from_ref(&graph.x), par, &mut cache)
                .unwrap();
            assert_bits_eq(
                &format!("gcn {label}"),
                run.output.as_slice(),
                gcn.logits_direct(&graph, &mode).as_slice(),
            );
        }
    }
}

#[test]
fn batch_engine_program_path_bit_identical_for_every_parallelism() {
    let (cnn, bert, gcn, graph) = models();
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let x = Pcg32::seed_from_u64(2).randn(&[1, 8, 8], 1.0);
    let seq: Vec<usize> = vec![7, 2, 9, 4, 4, 1];
    for par in parallelisms() {
        let mut serving =
            BatchEngine::new(OneSa::with_parallelism(ArrayConfig::new(8, 16), par), 0.25).unwrap();
        serving
            .submit_program(cnn.compile((&mode, (8, 8))).unwrap(), vec![x.clone()])
            .unwrap();
        serving
            .submit_program(
                bert.compile((&mode, seq.len())).unwrap(),
                vec![TinyBert::ids_tensor(&seq)],
            )
            .unwrap();
        serving
            .submit_program(gcn.compile((&mode, &graph)).unwrap(), vec![graph.x.clone()])
            .unwrap();
        let run = serving.run().unwrap();
        let label = par.label();
        assert_bits_eq(
            &format!("cnn via engine / {label}"),
            run.outcomes[0].output.as_slice(),
            &cnn.logits(&x, &mode),
        );
        assert_bits_eq(
            &format!("bert via engine / {label}"),
            run.outcomes[1].output.as_slice(),
            &bert.predict(&seq, &mode),
        );
        assert_bits_eq(
            &format!("gcn via engine / {label}"),
            run.outcomes[2].output.as_slice(),
            gcn.logits(&graph, &mode).as_slice(),
        );
        // Heterogeneous programs share no weights: per-stage groups
        // equal per-stage ops, and per-op stats surface per request.
        assert!(!run.program_stages.is_empty());
        assert!(run.outcomes.iter().all(|o| !o.op_stats.is_empty()));
    }
}

#[test]
fn concurrent_programs_coalesce_at_multiple_stages_not_just_the_classifier() {
    let (cnn, _, _, _) = models();
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let mut rng = Pcg32::seed_from_u64(3);
    let xs: Vec<Tensor> = (0..2).map(|_| rng.randn(&[1, 8, 8], 1.0)).collect();
    let program = cnn.compile((&mode, (8, 8))).unwrap();

    // Solo runs: every stage is its own kernel group.
    let solo_groups_per_run: usize = {
        let mut serving = BatchEngine::new(OneSa::new(ArrayConfig::new(8, 16)), 0.25).unwrap();
        serving
            .submit_program(program.clone(), vec![xs[0].clone()])
            .unwrap();
        let run = serving.run().unwrap();
        run.program_stages.iter().map(|s| s.groups).sum()
    };

    // Concurrent run: same model + same mode = shared weights and shared
    // tables at every coalescable stage.
    let mut serving = BatchEngine::new(OneSa::new(ArrayConfig::new(8, 16)), 0.25).unwrap();
    for x in &xs {
        serving
            .submit_program(program.clone(), vec![x.clone()])
            .unwrap();
    }
    let run = serving.run().unwrap();
    for (o, x) in run.outcomes.iter().zip(&xs) {
        assert_bits_eq("coalesced cnn", o.output.as_slice(), &cnn.logits(x, &mode));
    }

    let coalesced_stages: Vec<usize> = run
        .program_stages
        .iter()
        .filter(|s| s.ops == 2 && s.groups == 1)
        .map(|s| s.stage)
        .collect();
    let last_stage = run.program_stages.len() - 1;
    assert!(
        coalesced_stages.len() >= 2,
        "expected >=2 coalesced stages, got {coalesced_stages:?}"
    );
    assert!(
        coalesced_stages.iter().any(|&s| s < last_stage),
        "coalescing must not be classifier-only: {coalesced_stages:?}"
    );
    // Total kernel groups drop versus two uncoalesced solo runs.
    let concurrent_groups: usize = run.program_stages.iter().map(|s| s.groups).sum();
    assert!(
        concurrent_groups < 2 * solo_groups_per_run,
        "{concurrent_groups} !< {}",
        2 * solo_groups_per_run
    );
    assert!(run.report.batching_speedup() > 1.0);
}

#[test]
fn serve_engine_programs_bit_identical_for_every_policy_combination() {
    let (cnn, bert, gcn, graph) = models();
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let mut rng = Pcg32::seed_from_u64(4);
    let images: Vec<Tensor> = (0..2).map(|_| rng.randn(&[1, 8, 8], 1.0)).collect();
    let seqs: Vec<Vec<usize>> = vec![vec![1, 2, 3, 4], vec![9, 8, 7, 6, 5]];

    // Direct-path oracles, computed once.
    let want_cnn: Vec<Vec<f32>> = images.iter().map(|x| cnn.logits_direct(x, &mode)).collect();
    let want_bert: Vec<Vec<f32>> = seqs.iter().map(|s| bert.predict_direct(s, &mode)).collect();
    let want_gcn = gcn.logits_direct(&graph, &mode);

    let admissions = [
        AdmissionPolicy::Fifo { window: 4 },
        AdmissionPolicy::Deadline {
            window: 4,
            drop_expired: false,
        },
        AdmissionPolicy::SizeCapped { max_macs: 50_000 },
    ];
    let routings = [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastLoaded,
        RoutePolicy::WeightAffinity,
    ];
    for admission in admissions {
        for routing in routings {
            for par in [Parallelism::Sequential, Parallelism::Threads(2)] {
                let pool = ServeEngine::start(
                    ServeConfig::uniform(2, ArrayConfig::new(8, 16), par)
                        .with_admission(admission)
                        .with_routing(routing),
                )
                .unwrap();
                let label = format!("{admission:?}/{routing:?}/{}", par.label());
                let mut tickets: Vec<Ticket> = Vec::new();
                for x in &images {
                    tickets.push(
                        pool.submit_program(cnn.compile((&mode, (8, 8))).unwrap(), vec![x.clone()])
                            .unwrap(),
                    );
                }
                for s in &seqs {
                    tickets.push(
                        pool.submit_program(
                            bert.compile((&mode, s.len())).unwrap(),
                            vec![TinyBert::ids_tensor(s)],
                        )
                        .unwrap(),
                    );
                }
                tickets.push(
                    pool.submit_program(
                        gcn.compile((&mode, &graph)).unwrap(),
                        vec![graph.x.clone()],
                    )
                    .unwrap(),
                );
                let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
                for (i, want) in want_cnn.iter().enumerate() {
                    assert_bits_eq(&format!("cnn {label}"), outcomes[i].output.as_slice(), want);
                }
                for (i, want) in want_bert.iter().enumerate() {
                    assert_bits_eq(
                        &format!("bert {label}"),
                        outcomes[2 + i].output.as_slice(),
                        want,
                    );
                }
                assert_bits_eq(
                    &format!("gcn {label}"),
                    outcomes[4].output.as_slice(),
                    want_gcn.as_slice(),
                );
                let summary = pool.finish().unwrap();
                assert_eq!(summary.report.requests, 5, "{label}");
                assert_eq!(summary.expired, 0, "{label}");
            }
        }
    }
}

#[test]
fn affinity_routed_program_windows_coalesce_on_their_shard() {
    // Four instances of the same CNN land on one shard under
    // weight-affinity routing (equal program fingerprints) and coalesce
    // there: the pool-wide gemm-group count collapses.
    let (cnn, _, _, _) = models();
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let mut rng = Pcg32::seed_from_u64(5);
    let xs: Vec<Tensor> = (0..4).map(|_| rng.randn(&[1, 8, 8], 1.0)).collect();
    let program = cnn.compile((&mode, (8, 8))).unwrap();
    let gemm_stages = 4; // 3 convs + classifier

    let pool = ServeEngine::start(
        ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 8 })
            .with_routing(RoutePolicy::WeightAffinity)
            .start_paused(),
    )
    .unwrap();
    let tickets: Vec<Ticket> = xs
        .iter()
        .map(|x| {
            pool.submit_program(program.clone(), vec![x.clone()])
                .unwrap()
        })
        .collect();
    pool.resume();
    let shards: Vec<usize> = tickets
        .into_iter()
        .map(|t| t.wait().unwrap().shard)
        .collect();
    assert!(
        shards.windows(2).all(|w| w[0] == w[1]),
        "affinity scattered same-program requests: {shards:?}"
    );
    let summary = pool.finish().unwrap();
    // One window, all four programs on one shard: each GEMM stage is a
    // single coalesced kernel call instead of four.
    assert_eq!(summary.report.gemm_groups, gemm_stages);
    assert!(summary.modeled_speedup() > 1.0);
}

fn assert_close_rel(label: &str, got: &[f32], want: &[f32], tol: f32) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let bound = tol * w.abs().max(1.0);
        assert!(
            (g - w).abs() <= bound,
            "{label}: element {i} off by {} ({g} vs {w})",
            (g - w).abs()
        );
    }
}

/// The tentpole contract: default-level (`Standard`) optimized programs
/// are bit-identical to the unoptimized emission for every model family
/// × mode × engine path, and `Fusion` matches within 1e-6 relative.
#[test]
fn optimized_programs_match_unoptimized_across_models_modes_and_engines() {
    let (cnn, bert, gcn, graph) = models();
    let x = Pcg32::seed_from_u64(7).randn(&[1, 8, 8], 1.0);
    let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9];
    for mode in modes() {
        let mut cache = TableCache::new();
        let programs: Vec<(onesa_core::Program, Vec<Tensor>, &str)> = vec![
            (
                cnn.compile((&mode, (8, 8))).unwrap(),
                vec![x.clone()],
                "cnn",
            ),
            (
                bert.compile((&mode, seq.len())).unwrap(),
                vec![TinyBert::ids_tensor(&seq)],
                "bert",
            ),
            (
                gcn.compile((&mode, &graph)).unwrap(),
                vec![graph.x.clone()],
                "gcn",
            ),
        ];
        for (raw, inputs, name) in &programs {
            let label = format!("{name} / {}", mode.label());
            let std = raw.optimize(OptLevel::Standard).unwrap();
            let fused = raw.optimize(OptLevel::Fusion).unwrap();
            assert!(std.stages() <= raw.stages(), "{label}");
            let want = raw
                .run(inputs, Parallelism::Sequential, &mut cache)
                .unwrap()
                .output;

            // Solo executor: Standard bit-identical, Fusion ≤ 1e-6 rel.
            let got = std
                .run(inputs, Parallelism::Sequential, &mut cache)
                .unwrap()
                .output;
            assert_bits_eq(
                &format!("{label} solo/std"),
                got.as_slice(),
                want.as_slice(),
            );
            let got = fused
                .run(inputs, Parallelism::Sequential, &mut cache)
                .unwrap()
                .output;
            assert_close_rel(
                &format!("{label} solo/fusion"),
                got.as_slice(),
                want.as_slice(),
                1e-6,
            );

            // BatchEngine: raw and optimized ride in one queue.
            let mut serving = BatchEngine::new(OneSa::new(ArrayConfig::new(8, 16)), 0.25).unwrap();
            serving.submit_program(raw.clone(), inputs.clone()).unwrap();
            serving.submit_program(std.clone(), inputs.clone()).unwrap();
            let run = serving.run().unwrap();
            assert_bits_eq(
                &format!("{label} engine/raw"),
                run.outcomes[0].output.as_slice(),
                want.as_slice(),
            );
            assert_bits_eq(
                &format!("{label} engine/std"),
                run.outcomes[1].output.as_slice(),
                want.as_slice(),
            );

            // ServeEngine: optimized program through the async pool.
            let pool = ServeEngine::start(ServeConfig::uniform(
                2,
                ArrayConfig::new(8, 16),
                Parallelism::Sequential,
            ))
            .unwrap();
            let ticket = pool.submit_program(std.clone(), inputs.clone()).unwrap();
            let served = ticket.wait().unwrap();
            assert_bits_eq(
                &format!("{label} serve/std"),
                served.output.as_slice(),
                want.as_slice(),
            );
            let summary = pool.finish().unwrap();
            // The program's optimizer totals surfaced in the summary.
            let report = std.opt_report().unwrap();
            assert_eq!(
                summary.report.opt.removed(),
                report.totals.removed(),
                "{label}"
            );
        }
    }
}

/// The acceptance numbers of the optimizer on the quantized CNN. To be
/// explicit about which level delivers what: the bit-identical
/// `Standard` level (what production serving runs) elides the duplicate
/// residual boundary — a 4% cut (25 → 24 ops) — and the ≥10% headline
/// requires the opt-in `Fusion` level, where the two folded-batch-norm
/// and ReLU pairs additionally collapse (25 → 22 ops, 12%) at the cost
/// of ≤1e-6 reassociation error. Both numbers are pinned here and
/// recorded per level in `BENCH_program_optimizer.json`.
#[test]
fn optimizer_cuts_the_quantized_cnn_op_count_by_ten_percent() {
    let (cnn, _, _, _) = models();
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let raw = cnn.compile((&mode, (8, 8))).unwrap();
    let std = raw.optimize(OptLevel::Standard).unwrap();
    let fused = raw.optimize(OptLevel::Fusion).unwrap();
    // Standard: the duplicated residual-skip boundary elides (4%).
    assert_eq!(std.opt_report().unwrap().totals.elided, 1);
    assert_eq!((raw.stages(), std.stages()), (25, 24));
    // Fusion: both Affine+ReLU pairs collapse into single MHP passes.
    assert_eq!(fused.opt_report().unwrap().totals.fused, 2);
    let cut = fused.opt_report().unwrap().ops_removed_fraction();
    assert!(
        cut >= 0.10,
        "optimizer cut {:.1}% of the CNN's ops ({} -> {})",
        cut * 100.0,
        raw.stages(),
        fused.stages()
    );
    assert!(fused.modeled_macs() < raw.modeled_macs());

    // The serving wrappers run the Standard level: their op counts (and
    // outputs) match the pre-conservative-emission PR-4 graph shape.
    let wrapped = cnn
        .compile_optimized((&mode, (8, 8)), OptLevel::Standard)
        .unwrap();
    assert_eq!(wrapped.stages(), raw.stages() - 1);
}

#[test]
fn program_request_rejected_at_admission_does_not_poison_the_window() {
    let (cnn, _, _, _) = models();
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let mut rng = Pcg32::seed_from_u64(6);
    let pool = ServeEngine::start(ServeConfig::uniform(
        1,
        ArrayConfig::new(8, 16),
        Parallelism::Sequential,
    ))
    .unwrap();
    let program = cnn.compile((&mode, (8, 8))).unwrap();
    // Wrong input shape: rejected by the admitter's validator.
    let bad = pool
        .submit(Request::program(
            program.clone(),
            vec![rng.randn(&[1, 7, 7], 1.0)],
        ))
        .unwrap();
    let x = rng.randn(&[1, 8, 8], 1.0);
    let good = pool.submit_program(program, vec![x.clone()]).unwrap();
    assert!(matches!(
        bad.wait(),
        Err(onesa_core::serve::ServeError::Exec(_))
    ));
    let served = good.wait().unwrap();
    assert_bits_eq(
        "good program",
        served.output.as_slice(),
        &cnn.logits(&x, &mode),
    );
    let summary = pool.finish().unwrap();
    assert_eq!(summary.report.requests, 1);
}
