//! End-to-end integration: the engine's functional results equal the
//! CPWL reference ops, and whole-workload reports behave like the
//! paper's evaluation.

use onesa_core::{split_accelerator_cycles, OneSa};
use onesa_cpwl::ops::{self, TableSet};
use onesa_nn::workloads;
use onesa_sim::{ArrayConfig, ParamStaging};
use onesa_tensor::rng::Pcg32;
use onesa_tensor::stats;

#[test]
fn engine_softmax_equals_lowered_reference_and_is_close_to_exact() {
    let engine = OneSa::default();
    let tables = TableSet::for_granularity(0.25).unwrap();
    let x = Pcg32::seed_from_u64(1).randn(&[16, 24], 2.0);
    let (y, s) = engine.softmax_rows(&tables, &x).unwrap();
    let lowered = tables.softmax_rows(&x).unwrap();
    assert_eq!(y, lowered);
    let exact = ops::softmax_rows_exact(&x).unwrap();
    assert!(stats::rms_diff(y.as_slice(), exact.as_slice()) < 0.01);
    assert!(s.cycles() > 0 && s.nonlinear_evals > 0);
}

#[test]
fn engine_layernorm_equals_lowered_reference() {
    let engine = OneSa::default();
    let tables = TableSet::for_granularity(0.25).unwrap();
    let x = Pcg32::seed_from_u64(2).randn(&[8, 32], 1.5);
    let gamma = vec![1.0f32; 32];
    let beta = vec![0.0f32; 32];
    let (y, _) = engine
        .layernorm_rows(&tables, &x, &gamma, &beta, 1e-5)
        .unwrap();
    let reference = tables.layernorm_rows(&x, &gamma, &beta, 1e-5).unwrap();
    assert_eq!(y, reference);
}

#[test]
fn table4_shape_holds() {
    // The paper's comparison shape: ONE-SA efficiency beats CPU by a
    // large factor, beats the SoC, is below the GPU in absolute
    // throughput, and is comparable (0.8×–1.4×) to the fixed-function
    // accelerators on their home turf.
    let engine = OneSa::new(ArrayConfig::new(8, 16));
    let resnet = engine.run_workload(&workloads::resnet50(224));
    let bert = engine.run_workload(&workloads::bert_base(64));

    let cpu = onesa_baselines::cpu_i7_11700();
    let gpu = onesa_baselines::gpu_3090ti();
    let soc = onesa_baselines::soc_agx_orin();
    use onesa_nn::workloads::ModelFamily::{Cnn, Transformer};

    let cpu_eff = cpu.gops_per_watt(Cnn).unwrap();
    assert!(
        resnet.gops_per_watt() / cpu_eff > 5.0,
        "CPU ratio too small"
    );
    assert!(resnet.gops_per_watt() > soc.gops_per_watt(Cnn).unwrap());
    assert!(resnet.gops() < gpu.gops_for(Cnn).unwrap());

    // Fixed accelerators: same level (0.8–1.4×), not an order of
    // magnitude apart.
    for fixed in [onesa_baselines::angel_eye(), onesa_baselines::vgg16_accel()] {
        let ratio = resnet.gops_per_watt() / fixed.gops_per_watt(Cnn).unwrap();
        assert!((0.7..1.5).contains(&ratio), "{}: ratio {ratio}", fixed.name);
    }
    for fixed in [onesa_baselines::npe(), onesa_baselines::ftrans()] {
        let ratio = bert.gops_per_watt() / fixed.gops_per_watt(Transformer).unwrap();
        assert!((0.7..1.5).contains(&ratio), "{}: ratio {ratio}", fixed.name);
    }
}

#[test]
fn flexibility_one_engine_runs_all_three_families() {
    let engine = OneSa::new(ArrayConfig::new(8, 16));
    let mut efficiencies = Vec::new();
    for w in workloads::table4_workloads() {
        let r = engine.run_workload(&w);
        assert!(r.latency_ms() > 0.0, "{}", w.name);
        efficiencies.push(r.gops_per_watt());
    }
    // All within one small band — no family is pathological.
    let min = efficiencies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = efficiencies.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 2.0, "efficiency spread {min}..{max}");
}

#[test]
fn dram_staging_ablation_slows_nonlinear_heavy_workloads() {
    // §IV-A's literal DRAM round trip versus the fused default.
    let fused = OneSa::new(ArrayConfig::new(8, 16));
    let mut cfg = ArrayConfig::new(8, 16);
    cfg.staging = ParamStaging::Dram;
    let dram = OneSa::new(cfg);
    let w = workloads::bert_base(64); // softmax/LN heavy
    let f = fused.run_workload(&w).latency_ms();
    let d = dram.run_workload(&w).latency_ms();
    assert!(d > f * 1.05, "dram {d} ms vs fused {f} ms");
}

#[test]
fn split_design_comparison_is_generated_for_all_workloads() {
    let cfg = ArrayConfig::new(8, 16);
    for w in workloads::table4_workloads() {
        let split = split_accelerator_cycles(&cfg, &w, 16);
        assert!(split.total > 0);
        assert!(split.idle_fraction() > 0.0 && split.idle_fraction() <= 0.5);
    }
}
