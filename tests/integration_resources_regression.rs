//! Regression tests pinning the resource and power models to the
//! paper's published numbers (Tables I, II and the 7.61 W design point).

use onesa_resources::array::{ArrayResources, TABLE2_ANCHORS};
use onesa_resources::modules::{l3_cost, pe_cost, ModuleCost};
use onesa_resources::power::PowerModel;
use onesa_resources::Design;

#[test]
fn table1_exact() {
    assert_eq!(l3_cost(Design::ClassicSa), ModuleCost::new(0, 174, 566, 0));
    assert_eq!(l3_cost(Design::OneSa), ModuleCost::new(2, 1021, 1209, 0));
    assert_eq!(
        pe_cost(Design::ClassicSa, 16),
        ModuleCost::new(1, 824, 1862, 16)
    );
    assert_eq!(
        pe_cost(Design::OneSa, 16),
        ModuleCost::new(1, 826, 2380, 16)
    );
}

#[test]
fn table2_exact() {
    let model = ArrayResources::calibrated();
    for (dim, sa, onesa) in TABLE2_ANCHORS {
        assert_eq!(model.total(Design::ClassicSa, dim, 16), sa, "SA {dim}");
        assert_eq!(model.total(Design::OneSa, dim, 16), onesa, "ONE-SA {dim}");
    }
}

#[test]
fn abstract_claims_hold() {
    // "…does not introduce extra notable (less than 1.5 %) BRAMs, LUTs or
    // DSPs but a mere 13.3 % – 24.1 % more FFs."
    let model = ArrayResources::calibrated();
    let mut ff_ratios = Vec::new();
    for dim in [4usize, 8, 16] {
        let (bram, lut, ff, dsp) = model.onesa_overhead_ratios(dim, 16);
        assert!(bram - 1.0 < 0.015, "{dim}: BRAM {bram}");
        assert!(lut - 1.0 < 0.015, "{dim}: LUT {lut}");
        assert!((dsp - 1.0).abs() < 1e-12, "{dim}: DSP {dsp}");
        ff_ratios.push(ff - 1.0);
    }
    let min = ff_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ff_ratios.iter().cloned().fold(0.0, f64::max);
    assert!((0.125..0.145).contains(&min), "min FF overhead {min}");
    assert!((0.23..0.25).contains(&max), "max FF overhead {max}");
}

#[test]
fn power_calibration_regression() {
    let model = ArrayResources::calibrated();
    let power = PowerModel::virtex7();
    let cost = model.total(Design::OneSa, 8, 16);
    let p = power.power_watts(&cost);
    assert!((p - 7.61).abs() < 0.05, "paper design point drifted: {p} W");
}

#[test]
fn l3_paper_ratios() {
    // "the proposed L3 buffer necessitates 4.87× more LUTs and 1.14×
    // more FFs" — and its absolute size stays comparable to one PE.
    let sa = l3_cost(Design::ClassicSa);
    let one = l3_cost(Design::OneSa);
    assert!(((one.lut - sa.lut) as f64 / sa.lut as f64 - 4.87).abs() < 0.01);
    assert!(((one.ff - sa.ff) as f64 / sa.ff as f64 - 1.14).abs() < 0.01);
    let pe = pe_cost(Design::OneSa, 16);
    assert!(one.lut < 2 * pe.lut && one.ff < pe.ff);
}
