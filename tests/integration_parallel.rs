//! Parallel-backend integration: every execution policy — thread counts
//! 1/2/4, `Auto`, batched serving, batched model inference — must be
//! **bit-identical** to its sequential counterpart. Host parallelism is a
//! speed knob, never a numerics knob.

use onesa_core::{BatchEngine, OneSa, Parallelism, Request};
use onesa_cpwl::NonlinearFn;
use onesa_nn::infer::infer_batch;
use onesa_nn::models::{SmallCnn, TinyBert};
use onesa_nn::InferenceMode;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, parallel, Tensor};

const THREAD_COUNTS: [Parallelism; 4] = [
    Parallelism::Threads(1),
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Auto,
];

fn assert_bit_identical(label: &str, got: &Tensor, want: &Tensor) {
    assert_eq!(got.dims(), want.dims(), "{label}: shape");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{label}: element {i}: {g} vs {w}");
    }
}

#[test]
fn parallel_matmul_bit_identical_across_thread_counts() {
    let mut rng = Pcg32::seed_from_u64(1);
    // Shapes straddling the microkernel's row-block and panel widths,
    // including remainders in every dimension.
    for (m, k, n) in [
        (1, 1, 1),
        (7, 5, 3),
        (48, 32, 48),
        (65, 33, 97),
        (96, 64, 50),
    ] {
        let a = rng.randn(&[m, k], 1.0);
        let b = rng.randn(&[k, n], 1.0);
        let reference = gemm::matmul(&a, &b).unwrap();
        for par in THREAD_COUNTS {
            let out = parallel::matmul(&a, &b, par).unwrap();
            assert_bit_identical(
                &format!("matmul {m}x{k}x{n} {}", par.label()),
                &out,
                &reference,
            );
        }
    }
}

#[test]
fn parallel_matmul_preserves_zero_skip_semantics() {
    // The reference kernel skips A-elements that are exactly zero; the
    // blocked backend must reproduce that skip (sparse activations after
    // ReLU make zeros in A the common case, and ±0.0 is sign-sensitive).
    let mut rng = Pcg32::seed_from_u64(2);
    let mut a = rng.randn(&[19, 23], 1.0);
    for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        } else if i % 7 == 0 {
            *v = -0.0;
        }
    }
    let b = rng.randn(&[23, 51], 1.0);
    let reference = gemm::matmul(&a, &b).unwrap();
    for par in THREAD_COUNTS {
        let out = parallel::matmul(&a, &b, par).unwrap();
        assert_bit_identical(&format!("zeroed matmul {}", par.label()), &out, &reference);
    }
}

#[test]
fn parallel_mhp_bit_identical_across_thread_counts() {
    let mut rng = Pcg32::seed_from_u64(3);
    for dims in [vec![3, 5], vec![80, 90]] {
        let x = rng.randn(&dims, 1.0);
        let k = rng.randn(&dims, 1.0);
        let b = rng.randn(&dims, 1.0);
        let reference = gemm::mhp(&x, &k, &b).unwrap();
        for par in THREAD_COUNTS {
            let out = parallel::mhp(&x, &k, &b, par).unwrap();
            assert_bit_identical(&format!("mhp {dims:?} {}", par.label()), &out, &reference);
        }
    }
}

#[test]
fn engine_gemm_bit_identical_across_thread_counts() {
    let mut rng = Pcg32::seed_from_u64(4);
    let a = rng.randn(&[30, 17], 1.0);
    let b = rng.randn(&[17, 26], 1.0);
    let (reference, ref_stats) = OneSa::new(ArrayConfig::new(8, 16)).gemm(&a, &b).unwrap();
    for par in THREAD_COUNTS {
        let engine = OneSa::with_parallelism(ArrayConfig::new(8, 16), par);
        let (out, stats) = engine.gemm(&a, &b).unwrap();
        assert_bit_identical(&format!("engine gemm {}", par.label()), &out, &reference);
        // Simulated array cycles describe the workload, not the host.
        assert_eq!(stats, ref_stats);
    }
}

#[test]
fn batch_engine_bit_identical_to_solo_requests() {
    let mut rng = Pcg32::seed_from_u64(5);
    let w = rng.randn(&[24, 18], 1.0);
    let solo = OneSa::new(ArrayConfig::new(8, 16));
    let gemm_inputs: Vec<Tensor> = (0..4).map(|i| rng.randn(&[3 + 4 * i, 24], 1.0)).collect();
    let nl_inputs: Vec<Tensor> = (0..3).map(|i| rng.randn(&[5, 6 + i], 1.5)).collect();
    for par in THREAD_COUNTS {
        let engine = OneSa::with_parallelism(ArrayConfig::new(8, 16), par);
        let mut serving = BatchEngine::new(engine, 0.25).unwrap();
        for a in &gemm_inputs {
            serving.submit(Request::gemm(a.clone(), w.clone()));
        }
        for x in &nl_inputs {
            serving.submit(Request::nonlinear(NonlinearFn::Gelu, x.clone()));
        }
        let run = serving.run().unwrap();
        for (i, a) in gemm_inputs.iter().enumerate() {
            let (want, _) = solo.gemm(a, &w).unwrap();
            assert_bit_identical(
                &format!("batched gemm #{i} {}", par.label()),
                &run.outcomes[i].output,
                &want,
            );
        }
        let tables = onesa_cpwl::ops::TableSet::for_granularity(0.25).unwrap();
        for (i, x) in nl_inputs.iter().enumerate() {
            let want = tables.gelu(x).unwrap();
            let got = &run.outcomes[gemm_inputs.len() + i].output;
            assert_bit_identical(&format!("batched gelu #{i} {}", par.label()), got, &want);
        }
        assert!(run.report.batching_speedup() >= 1.0);
    }
}

#[test]
fn infer_batch_bit_identical_to_sequential_inference() {
    let mode = InferenceMode::cpwl(0.25).unwrap();
    let cnn = SmallCnn::new(11, 1, 4);
    let mut rng = Pcg32::seed_from_u64(6);
    let images: Vec<Tensor> = (0..6).map(|_| rng.randn(&[1, 12, 12], 1.0)).collect();
    let sequential: Vec<Vec<f32>> = images.iter().map(|x| cnn.logits(x, &mode)).collect();
    for par in THREAD_COUNTS {
        let batched = cnn.logits_batch(&images, &mode, par);
        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            for (x, y) in b.iter().zip(s) {
                assert_eq!(x.to_bits(), y.to_bits(), "cnn sample {i} ({})", par.label());
            }
        }
    }

    let bert = TinyBert::new(13, 48, 10, 2, 1);
    let seqs: Vec<Vec<usize>> = (0..5)
        .map(|i| (0..8).map(|t| (i * 7 + t * 3) % 48).collect())
        .collect();
    let sequential: Vec<Vec<f32>> = seqs.iter().map(|s| bert.predict(s, &mode)).collect();
    for par in THREAD_COUNTS {
        let batched = bert.predict_batch(&seqs, &mode, par);
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            for (x, y) in b.iter().zip(s) {
                assert_eq!(x.to_bits(), y.to_bits(), "bert seq {i} ({})", par.label());
            }
        }
    }
}

#[test]
fn infer_batch_generic_preserves_order_and_length() {
    for len in [0usize, 1, 3, 17] {
        let inputs: Vec<usize> = (0..len).collect();
        for par in THREAD_COUNTS {
            let out = infer_batch(par, &inputs, |&i| i * 10);
            assert_eq!(out, inputs.iter().map(|&i| i * 10).collect::<Vec<_>>());
        }
    }
}
