//! Reduced-scale Table III: train one model per family and verify the
//! qualitative accuracy claims of the paper.
//!
//! The full sweep lives in `cargo run -p onesa-bench --bin table3`; this
//! test keeps CI fast with small datasets.

use onesa_data::{Difficulty, GraphDataset, ImageDataset, TextDataset};
use onesa_nn::models::{Gcn, SmallCnn, TinyBert};
use onesa_nn::train::TrainConfig;
use onesa_nn::InferenceMode;

#[test]
fn cnn_degrades_gracefully_and_monotonically_in_trend() {
    let data = ImageDataset::generate("cifar10-like", 31, Difficulty::hard(6), (1, 12, 12), 16);
    let mut model = SmallCnn::new(42, 1, 6);
    model.fit(
        &data,
        &TrainConfig {
            epochs: 12,
            lr: 4e-3,
            batch_size: 16,
            seed: 42,
        },
    );
    let exact = model.evaluate(&data, &InferenceMode::Exact);
    assert!(exact > 0.55, "baseline too weak: {exact}");

    let fine = model.evaluate(&data, &InferenceMode::cpwl(0.1).unwrap());
    let coarse = model.evaluate(&data, &InferenceMode::cpwl(1.0).unwrap());
    // Fine granularity within a small band of exact; coarse may drop
    // (and must not *gain* more than noise).
    assert!((exact - fine).abs() < 0.08, "fine {fine} vs exact {exact}");
    assert!(coarse <= fine + 0.05, "coarse {coarse} vs fine {fine}");
}

#[test]
fn bert_cpwl_tracks_exact_on_easy_task() {
    let data = TextDataset::classification("sst2-like", 33, Difficulty::easy(2), 64, 12, 16);
    let mut model = TinyBert::new(42, 64, 12, 2, 1);
    model.fit(
        &data,
        &TrainConfig {
            epochs: 5,
            lr: 2e-3,
            batch_size: 1,
            seed: 42,
        },
    );
    let exact = model.evaluate(&data, &InferenceMode::Exact);
    assert!(exact > 0.6, "baseline too weak: {exact}");
    let fine = model.evaluate(&data, &InferenceMode::cpwl(0.25).unwrap());
    assert!((exact - fine).abs() < 0.15, "cpwl {fine} vs exact {exact}");
}

#[test]
fn gcn_is_granularity_insensitive() {
    // Paper Table III: GCN rows barely move across granularities.
    let g = GraphDataset::generate("pubmed-like", 35, Difficulty::medium(3), 90, 16, 0.2);
    let mut model = Gcn::new(42, 16, 16, 3);
    model.fit(
        &g,
        &TrainConfig {
            epochs: 10,
            lr: 1e-2,
            batch_size: 0,
            seed: 42,
        },
    );
    let exact = model.evaluate(&g, &InferenceMode::Exact);
    assert!(exact > 0.7, "baseline too weak: {exact}");
    for gran in [0.1f32, 0.5, 1.0] {
        let acc = model.evaluate(&g, &InferenceMode::cpwl(gran).unwrap());
        assert!(
            (exact - acc).abs() < 0.07,
            "granularity {gran}: {acc} vs {exact}"
        );
    }
}

#[test]
fn quantization_alone_is_nearly_lossless() {
    // INT16 quantization (the "Original" column's precision) does not
    // meaningfully change predictions on its own.
    let data = ImageDataset::generate("qmnist-like", 37, Difficulty::easy(4), (1, 12, 12), 12);
    let mut model = SmallCnn::new(7, 1, 4);
    model.fit(
        &data,
        &TrainConfig {
            epochs: 10,
            lr: 4e-3,
            batch_size: 16,
            seed: 7,
        },
    );
    let exact = model.evaluate(&data, &InferenceMode::Exact);
    let quant_fine = model.evaluate(&data, &InferenceMode::cpwl(0.03125).unwrap());
    assert!((exact - quant_fine).abs() < 0.05, "{exact} vs {quant_fine}");
}
