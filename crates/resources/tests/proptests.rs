//! Property-based tests for the resource and power models.

use onesa_resources::array::ArrayResources;
use onesa_resources::modules::pe_cost;
use onesa_resources::power::PowerModel;
use onesa_resources::{Design, ModuleCost};
use proptest::prelude::*;

proptest! {
    // Pinned case count: CI runs are deterministic and reproducible.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ONE-SA delta over SA is always +518 FF + 2 LUT per PE and a
    /// fixed L3 delta: no configuration changes BRAM (beyond +2) or DSP.
    #[test]
    fn onesa_delta_structure(dim in 1usize..24, logt in 1u32..6) {
        let macs = 1usize << logt;
        let model = ArrayResources::calibrated();
        let sa = model.total(Design::ClassicSa, dim, macs);
        let one = model.total(Design::OneSa, dim, macs);
        let pes = (dim * dim) as u64;
        prop_assert_eq!(one.ff - sa.ff, 518 * pes + 643);
        prop_assert_eq!(one.lut - sa.lut, 2 * pes + 847);
        prop_assert_eq!(one.bram - sa.bram, 2);
        prop_assert_eq!(one.dsp, sa.dsp);
    }

    /// PE cost is affine in the MAC count with positive increments.
    #[test]
    fn pe_cost_affine_in_macs(t in 1u64..64) {
        let a = pe_cost(Design::OneSa, t);
        let b = pe_cost(Design::OneSa, t + 1);
        prop_assert_eq!(b.dsp - a.dsp, 1);
        prop_assert!(b.ff > a.ff);
        prop_assert!(b.lut > a.lut);
        prop_assert_eq!(b.bram, a.bram);
    }

    /// Power is monotone in every resource dimension and bounded below by
    /// static power.
    #[test]
    fn power_monotone(bram in 0u64..2000, lut in 0u64..1_000_000,
                      ff in 0u64..1_000_000, dsp in 0u64..8000) {
        let p = PowerModel::virtex7();
        let base = ModuleCost::new(bram, lut, ff, dsp);
        let w = p.power_watts(&base);
        prop_assert!(w >= p.static_w);
        let bigger = ModuleCost::new(bram + 1, lut + 100, ff + 100, dsp + 1);
        prop_assert!(p.power_watts(&bigger) > w);
    }

    /// Utilization scaling interpolates between the idle floor and full
    /// power.
    #[test]
    fn utilization_interpolates(u in 0.0f64..1.0) {
        let p = PowerModel::virtex7();
        let cost = ModuleCost::new(100, 50_000, 80_000, 512);
        let at_u = p.power_at_utilization(&cost, u);
        let idle = p.power_at_utilization(&cost, 0.0);
        let full = p.power_at_utilization(&cost, 1.0);
        prop_assert!(at_u >= idle - 1e-12 && at_u <= full + 1e-12);
    }

    /// FF growth per MAC doubling stays inside the paper's Fig 9 band.
    #[test]
    fn ff_doubling_band(logt in 1u32..6) {
        let t = 1u64 << logt;
        let a = pe_cost(Design::OneSa, t).ff as f64;
        let b = pe_cost(Design::OneSa, 2 * t).ff as f64;
        let growth = b / a - 1.0;
        prop_assert!((0.026..=0.538).contains(&growth), "T {} growth {}", t, growth);
    }
}
