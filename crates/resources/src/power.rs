//! XPE-style power model.
//!
//! The paper reports power from the Xilinx Power Estimator. XPE sums a
//! device static term with per-resource dynamic terms (count × toggle ×
//! per-unit coefficient at the design clock). This model does the same at
//! 200 MHz, with coefficients calibrated so the paper's design point —
//! the 64-PE, 16-MAC ONE-SA of Table IV — dissipates the published
//! 7.61 W.

use crate::modules::ModuleCost;

/// Per-resource dynamic power coefficients (watts per unit at 200 MHz and
/// the calibrated toggle activity) plus device static power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Device static power (W) — Virtex-7 class.
    pub static_w: f64,
    /// Watts per active DSP slice.
    pub dsp_w: f64,
    /// Watts per BRAM tile.
    pub bram_w: f64,
    /// Watts per LUT.
    pub lut_w: f64,
    /// Watts per flip-flop.
    pub ff_w: f64,
}

impl PowerModel {
    /// The calibrated Virtex-7 model (see module docs).
    pub fn virtex7() -> Self {
        PowerModel {
            static_w: 0.25,
            dsp_w: 2.96e-3,
            bram_w: 1.6146e-3,
            lut_w: 1.3455e-5,
            ff_w: 2.691e-6,
        }
    }

    /// Total power of a design occupying `cost` resources, at full
    /// activity.
    pub fn power_watts(&self, cost: &ModuleCost) -> f64 {
        self.static_w
            + self.dsp_w * cost.dsp as f64
            + self.bram_w * cost.bram as f64
            + self.lut_w * cost.lut as f64
            + self.ff_w * cost.ff as f64
    }

    /// Power with a utilization-dependent dynamic fraction: idle logic
    /// still burns static power and a residual clock-tree share.
    pub fn power_at_utilization(&self, cost: &ModuleCost, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let dynamic = self.power_watts(cost) - self.static_w;
        // XPE attributes ~20 % of dynamic power to clocking, which does
        // not gate with utilization.
        self.static_w + dynamic * (0.2 + 0.8 * u)
    }

    /// Energy in joules for a run of `seconds` at `utilization`.
    pub fn energy_joules(&self, cost: &ModuleCost, seconds: f64, utilization: f64) -> f64 {
        self.power_at_utilization(cost, utilization) * seconds
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::virtex7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayResources;
    use crate::Design;

    #[test]
    fn calibrated_to_paper_design_point() {
        // Table IV: ONE-SA (64 PEs, 16 MACs) at 7.61 W.
        let model = PowerModel::virtex7();
        let resources = ArrayResources::calibrated();
        let cost = resources.total(Design::OneSa, 8, 16);
        let p = model.power_watts(&cost);
        assert!((p - 7.61).abs() < 0.05, "calibration drifted: {p} W");
    }

    #[test]
    fn power_monotone_in_resources() {
        let model = PowerModel::virtex7();
        let small = ModuleCost::new(10, 1000, 2000, 16);
        let big = ModuleCost::new(20, 2000, 4000, 32);
        assert!(model.power_watts(&big) > model.power_watts(&small));
    }

    #[test]
    fn utilization_scales_dynamic_only() {
        let model = PowerModel::virtex7();
        let cost = ModuleCost::new(100, 10_000, 20_000, 256);
        let full = model.power_at_utilization(&cost, 1.0);
        let idle = model.power_at_utilization(&cost, 0.0);
        assert!((full - model.power_watts(&cost)).abs() < 1e-12);
        assert!(idle > model.static_w, "clock tree still burns");
        assert!(idle < full);
    }

    #[test]
    fn energy_is_power_times_time() {
        let model = PowerModel::virtex7();
        let cost = ModuleCost::new(1, 1, 1, 1);
        let p = model.power_at_utilization(&cost, 0.5);
        assert!((model.energy_joules(&cost, 2.0, 0.5) - 2.0 * p).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamped() {
        let model = PowerModel::virtex7();
        let cost = ModuleCost::new(1, 100, 100, 4);
        assert_eq!(
            model.power_at_utilization(&cost, 2.0),
            model.power_at_utilization(&cost, 1.0)
        );
        assert_eq!(
            model.power_at_utilization(&cost, -1.0),
            model.power_at_utilization(&cost, 0.0)
        );
    }
}
