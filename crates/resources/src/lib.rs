//! FPGA resource and power models for the ONE-SA reproduction.
//!
//! The paper evaluates ONE-SA on a Xilinx Virtex-7 XC7VX485T and reports
//! per-module resource costs (Table I), whole-array costs for three sizes
//! (Table II), resource scaling across PE/MAC counts (Fig 9) and power
//! from the Xilinx Power Estimator (Fig 10, Table IV). This crate
//! reproduces all of those numbers with a *structural* model:
//!
//! * per-module cost sheets anchored exactly on Table I
//!   ([`modules`]);
//! * an array roll-up `D²·PE + 3·L3 + overhead(D)` whose
//!   interconnect/L2/controller overhead is fitted through the three
//!   published design points, reproducing Table II to the unit
//!   ([`mod@array`]);
//! * MAC-count scaling laws for Fig 9 ([`modules`]);
//! * an XPE-style power model calibrated to the published 7.61 W at the
//!   64-PE × 16-MAC design point ([`power`]).
//!
//! # Example
//!
//! ```
//! use onesa_resources::{array::ArrayResources, Design};
//!
//! let model = ArrayResources::calibrated();
//! let cost = model.total(Design::OneSa, 8, 16);
//! assert_eq!(cost.ff, 213_042); // Table II, 8×8 ONE-SA
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod fit;
pub mod modules;
pub mod power;

pub use modules::{Design, ModuleCost};
