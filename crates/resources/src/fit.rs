//! Small exact-interpolation helper used to pin the array-level overhead
//! model to the three published design points.

/// A quadratic `y = a + b·x + c·x²` through three points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quadratic {
    /// Constant term.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Quadratic coefficient.
    pub c: f64,
}

impl Quadratic {
    /// Exact interpolation through three points with distinct abscissae.
    ///
    /// # Panics
    ///
    /// Panics if two abscissae coincide.
    pub fn through(p1: (f64, f64), p2: (f64, f64), p3: (f64, f64)) -> Self {
        let (x1, y1) = p1;
        let (x2, y2) = p2;
        let (x3, y3) = p3;
        assert!(
            x1 != x2 && x2 != x3 && x1 != x3,
            "abscissae must be distinct"
        );
        // Divided differences (Newton form), expanded to monomials.
        let d1 = (y2 - y1) / (x2 - x1);
        let d2 = ((y3 - y2) / (x3 - x2) - d1) / (x3 - x1);
        // y = y1 + d1 (x - x1) + d2 (x - x1)(x - x2)
        let a = y1 - d1 * x1 + d2 * x1 * x2;
        let b = d1 - d2 * (x1 + x2);
        let c = d2;
        Quadratic { a, b, c }
    }

    /// Evaluates the polynomial.
    pub fn eval(&self, x: f64) -> f64 {
        self.a + self.b * x + self.c * x * x
    }

    /// Evaluates, clamped below at zero and rounded to the nearest
    /// integer — resource counts cannot be negative.
    pub fn eval_count(&self, x: f64) -> u64 {
        self.eval(x).max(0.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_anchor_points() {
        let q = Quadratic::through((4.0, 454.0), (8.0, 758.0), (16.0, 1110.0));
        assert!((q.eval(4.0) - 454.0).abs() < 1e-6);
        assert!((q.eval(8.0) - 758.0).abs() < 1e-6);
        assert!((q.eval(16.0) - 1110.0).abs() < 1e-6);
    }

    #[test]
    fn recovers_known_polynomial() {
        // y = 2 + 3x + 0.5x²
        let f = |x: f64| 2.0 + 3.0 * x + 0.5 * x * x;
        let q = Quadratic::through((1.0, f(1.0)), (2.0, f(2.0)), (5.0, f(5.0)));
        assert!((q.a - 2.0).abs() < 1e-9);
        assert!((q.b - 3.0).abs() < 1e-9);
        assert!((q.c - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eval_count_clamps_and_rounds() {
        let q = Quadratic {
            a: -10.0,
            b: 0.0,
            c: 0.0,
        };
        assert_eq!(q.eval_count(1.0), 0);
        let q = Quadratic {
            a: 2.4,
            b: 0.0,
            c: 0.0,
        };
        assert_eq!(q.eval_count(1.0), 2);
    }

    #[test]
    #[should_panic]
    fn duplicate_abscissae_panic() {
        let _ = Quadratic::through((1.0, 1.0), (1.0, 2.0), (3.0, 3.0));
    }
}
