//! Per-module FPGA cost sheets (paper Table I) and their scaling in the
//! MAC count (paper Fig 9).

use std::ops::{Add, Mul};

/// Which architecture variant a cost refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// The conventional systolic array baseline.
    ClassicSa,
    /// The proposed nonlinear-capable array.
    OneSa,
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Design::ClassicSa => f.write_str("SA"),
            Design::OneSa => f.write_str("ONE-SA"),
        }
    }
}

/// FPGA resource quadruple: BRAM tiles, LUTs, flip-flops, DSP slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleCost {
    /// Block RAMs.
    pub bram: u64,
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
}

impl ModuleCost {
    /// Convenience constructor.
    pub const fn new(bram: u64, lut: u64, ff: u64, dsp: u64) -> Self {
        ModuleCost { bram, lut, ff, dsp }
    }
}

impl Add for ModuleCost {
    type Output = ModuleCost;
    fn add(self, o: ModuleCost) -> ModuleCost {
        ModuleCost {
            bram: self.bram + o.bram,
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            dsp: self.dsp + o.dsp,
        }
    }
}

impl Mul<u64> for ModuleCost {
    type Output = ModuleCost;
    fn mul(self, n: u64) -> ModuleCost {
        ModuleCost {
            bram: self.bram * n,
            lut: self.lut * n,
            ff: self.ff * n,
            dsp: self.dsp * n,
        }
    }
}

// ------- Table I anchors (measured at 16 MACs per PE) -------

/// L3 buffer of the conventional array (Table I row "L3 / SA").
pub const L3_SA: ModuleCost = ModuleCost::new(0, 174, 566, 0);

/// L3 buffer with the ONE-SA data-addressing modules (Table I row
/// "L3 / ONE-SA"): +2 BRAM (k/b buffers), 4.87× LUTs (replicated lookup
/// lanes), 1.14× FFs (FIFOs and pipeline registers).
pub const L3_ONESA: ModuleCost = ModuleCost::new(2, 1021, 1209, 0);

/// PE of the conventional array at 16 MACs (Table I row "PE / SA").
pub const PE_SA_16: ModuleCost = ModuleCost::new(1, 824, 1862, 16);

/// ONE-SA PE at 16 MACs (Table I row "PE / ONE-SA"): identical BRAM/DSP,
/// +2 LUTs, +518 FFs for control logics C1/C2 and the new data path.
pub const PE_ONESA_16: ModuleCost = ModuleCost::new(1, 826, 2380, 16);

// ------- MAC scaling (Fig 9) -------
// The PE splits into a MAC-independent base (registers, control,
// accumulator head) and a per-MAC increment (DSP slice + pipeline
// registers + a little steering logic). Anchored so T = 16 reproduces
// Table I exactly, and so that doubling 16 → 32 MACs raises PE FFs by
// ≈ 34 % — inside the 2.6 %–53.8 % band the paper reports.

const PE_FF_BASE: u64 = 1222;
const PE_FF_PER_MAC: u64 = 40;
const PE_LUT_BASE: u64 = 728;
const PE_LUT_PER_MAC: u64 = 6;
/// Extra FFs of the ONE-SA PE (control logics + MHP path), MAC-independent.
const ONESA_PE_FF_DELTA: u64 = 518;
/// Extra LUTs of the ONE-SA PE.
const ONESA_PE_LUT_DELTA: u64 = 2;

/// Cost of one PE with `macs` MAC units.
///
/// Anchored on Table I at `macs = 16`; BRAM is flat in the MAC count and
/// DSPs scale 1:1, matching Fig 9(c)/(d).
pub fn pe_cost(design: Design, macs: u64) -> ModuleCost {
    let mut c = ModuleCost {
        bram: 1,
        lut: PE_LUT_BASE + PE_LUT_PER_MAC * macs,
        ff: PE_FF_BASE + PE_FF_PER_MAC * macs,
        dsp: macs,
    };
    if design == Design::OneSa {
        c.lut += ONESA_PE_LUT_DELTA;
        c.ff += ONESA_PE_FF_DELTA;
    }
    c
}

/// Cost of one L3 buffer (MAC-independent).
pub fn l3_cost(design: Design) -> ModuleCost {
    match design {
        Design::ClassicSa => L3_SA,
        Design::OneSa => L3_ONESA,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_cost_reproduces_table1_at_16_macs() {
        assert_eq!(pe_cost(Design::ClassicSa, 16), PE_SA_16);
        assert_eq!(pe_cost(Design::OneSa, 16), PE_ONESA_16);
    }

    #[test]
    fn l3_cost_reproduces_table1() {
        assert_eq!(l3_cost(Design::ClassicSa), L3_SA);
        assert_eq!(l3_cost(Design::OneSa), L3_ONESA);
        // The published ratios: 4.87× LUT, ~1.14× FF... (the paper rounds).
        let lut_ratio = L3_ONESA.lut as f64 / L3_SA.lut as f64;
        assert!(
            (lut_ratio - 5.87).abs() < 0.01,
            "1 + 4.87 more, ratio {lut_ratio}"
        );
        let ff_ratio = L3_ONESA.ff as f64 / L3_SA.ff as f64;
        assert!(
            (ff_ratio - 2.14).abs() < 0.01,
            "1 + 1.14 more, ratio {ff_ratio}"
        );
    }

    #[test]
    fn ff_doubling_band_matches_fig9() {
        // Paper: FFs grow 2.6 %–53.8 % when the MAC count doubles.
        for t in [2u64, 4, 8, 16] {
            let before = pe_cost(Design::OneSa, t).ff as f64;
            let after = pe_cost(Design::OneSa, 2 * t).ff as f64;
            let growth = after / before - 1.0;
            assert!(
                (0.026..=0.538).contains(&growth),
                "T {t} → {}: growth {growth}",
                2 * t
            );
        }
    }

    #[test]
    fn dsp_scale_one_to_one_and_bram_flat() {
        for t in [2u64, 8, 32] {
            let c = pe_cost(Design::ClassicSa, t);
            assert_eq!(c.dsp, t);
            assert_eq!(c.bram, 1);
        }
    }

    #[test]
    fn cost_arithmetic() {
        let a = ModuleCost::new(1, 2, 3, 4);
        let b = ModuleCost::new(10, 20, 30, 40);
        assert_eq!(a + b, ModuleCost::new(11, 22, 33, 44));
        assert_eq!(a * 3, ModuleCost::new(3, 6, 9, 12));
    }

    #[test]
    fn display_names() {
        assert_eq!(Design::ClassicSa.to_string(), "SA");
        assert_eq!(Design::OneSa.to_string(), "ONE-SA");
    }
}
