//! Whole-array resource roll-up (paper Table II and Fig 9).
//!
//! A `D × D` array is `D²` PEs, three L3 buffers, `3D` L2 buffers and the
//! interconnect/controller fabric. The PE and L3 sheets come from
//! [`crate::modules`]; the rest — the *overhead* — is not itemized in the
//! paper, so it is pinned by exact quadratic interpolation through the
//! three published SA design points (4×4, 8×8, 16×16 at 16 MACs). The
//! quadratic form is structurally motivated: L2 capacity (and hence its
//! LUT/FF footprint) grows with `D` per buffer × `3D` buffers → `D²`,
//! while the controller grows linearly.
//!
//! The ONE-SA variant then *derives* from the SA baseline by the exact
//! per-module deltas of Table I — which is verifiably how the paper's
//! own Table II was produced (the deltas match to the unit).

use crate::fit::Quadratic;
use crate::modules::{l3_cost, pe_cost, Design, ModuleCost};

/// Published Table II totals used as calibration anchors and regression
/// oracles: `(dim, SA cost, ONE-SA cost)` at 16 MACs per PE.
pub const TABLE2_ANCHORS: [(usize, ModuleCost, ModuleCost); 3] = [
    (
        4,
        ModuleCost::new(470, 67_976, 66_924, 256),
        ModuleCost::new(472, 68_855, 75_855, 256),
    ),
    (
        8,
        ModuleCost::new(822, 179_247, 179_247, 1024),
        ModuleCost::new(824, 180_222, 213_042, 1024),
    ),
    (
        16,
        ModuleCost::new(1366, 730_225, 552_539, 4096),
        ModuleCost::new(1368, 731_584, 685_790, 4096),
    ),
];

/// The array-level resource model.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayResources {
    bram_overhead: Quadratic,
    lut_overhead: Quadratic,
    ff_overhead: Quadratic,
}

impl ArrayResources {
    /// Builds the model calibrated on the published Table II anchors.
    pub fn calibrated() -> Self {
        let overhead = |pick: fn(&ModuleCost) -> u64| -> Quadratic {
            let pts: Vec<(f64, f64)> = TABLE2_ANCHORS
                .iter()
                .map(|(dim, sa, _)| {
                    let pes = pe_cost(Design::ClassicSa, 16) * ((dim * dim) as u64);
                    let l3 = l3_cost(Design::ClassicSa) * 3;
                    let itemized = pick(&(pes + l3));
                    (*dim as f64, (pick(sa) - itemized) as f64)
                })
                .collect();
            Quadratic::through(pts[0], pts[1], pts[2])
        };
        ArrayResources {
            bram_overhead: overhead(|c| c.bram),
            lut_overhead: overhead(|c| c.lut),
            ff_overhead: overhead(|c| c.ff),
        }
    }

    /// Interconnect/L2/controller overhead (beyond PEs and L3s) for a
    /// `dim × dim` array.
    pub fn overhead(&self, dim: usize) -> ModuleCost {
        let x = dim as f64;
        ModuleCost {
            bram: self.bram_overhead.eval_count(x),
            lut: self.lut_overhead.eval_count(x),
            ff: self.ff_overhead.eval_count(x),
            dsp: 0,
        }
    }

    /// Total resources of a `dim × dim` array with `macs` MACs per PE.
    pub fn total(&self, design: Design, dim: usize, macs: usize) -> ModuleCost {
        let pes = pe_cost(design, macs as u64) * ((dim * dim) as u64);
        let l3 = match design {
            Design::ClassicSa => l3_cost(Design::ClassicSa) * 3,
            // Only the output-side L3 carries the addressing modules; the
            // input/weight L3s are unchanged (Table II shows exactly one
            // L3 delta: +2 BRAM, +847 LUT, +643 FF over the whole array).
            Design::OneSa => l3_cost(Design::OneSa) + l3_cost(Design::ClassicSa) * 2,
        };
        pes + l3 + self.overhead(dim)
    }

    /// Relative ONE-SA overhead versus the SA baseline, per resource,
    /// as a `(bram, lut, ff, dsp)` tuple of ratios.
    pub fn onesa_overhead_ratios(&self, dim: usize, macs: usize) -> (f64, f64, f64, f64) {
        let sa = self.total(Design::ClassicSa, dim, macs);
        let one = self.total(Design::OneSa, dim, macs);
        let ratio = |a: u64, b: u64| if b == 0 { 1.0 } else { a as f64 / b as f64 };
        (
            ratio(one.bram, sa.bram),
            ratio(one.lut, sa.lut),
            ratio(one.ff, sa.ff),
            ratio(one.dsp, sa.dsp),
        )
    }
}

impl Default for ArrayResources {
    fn default() -> Self {
        ArrayResources::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table2_to_the_unit() {
        let model = ArrayResources::calibrated();
        for (dim, sa, onesa) in TABLE2_ANCHORS {
            assert_eq!(
                model.total(Design::ClassicSa, dim, 16),
                sa,
                "SA {dim}×{dim}"
            );
            assert_eq!(
                model.total(Design::OneSa, dim, 16),
                onesa,
                "ONE-SA {dim}×{dim}"
            );
        }
    }

    #[test]
    fn ff_overhead_band_matches_paper() {
        // Paper abstract: 13.3 %–24.1 % more FFs, <1.5 % everything else.
        let model = ArrayResources::calibrated();
        for dim in [4usize, 8, 16] {
            let (bram, lut, ff, dsp) = model.onesa_overhead_ratios(dim, 16);
            assert!((1.0..1.015).contains(&bram), "{dim}: bram {bram}");
            assert!((1.0..1.015).contains(&lut), "{dim}: lut {lut}");
            assert!((1.12..1.25).contains(&ff), "{dim}: ff {ff}");
            assert!((dsp - 1.0).abs() < 1e-12, "{dim}: dsp {dsp}");
        }
    }

    #[test]
    fn totals_monotone_in_dim_and_macs() {
        let model = ArrayResources::calibrated();
        let dims = [2usize, 4, 8, 16];
        for w in dims.windows(2) {
            let small = model.total(Design::OneSa, w[0], 16);
            let big = model.total(Design::OneSa, w[1], 16);
            assert!(big.lut > small.lut && big.ff > small.ff && big.dsp > small.dsp);
        }
        for t in [2usize, 4, 8, 16] {
            let a = model.total(Design::OneSa, 8, t);
            let b = model.total(Design::OneSa, 8, 2 * t);
            assert!(b.ff > a.ff && b.dsp > a.dsp && b.lut > a.lut);
            assert_eq!(b.bram, a.bram, "BRAM flat in MACs (Fig 9d)");
        }
    }

    #[test]
    fn dsp_equals_pe_times_mac() {
        let model = ArrayResources::calibrated();
        for (dim, macs) in [(4usize, 2usize), (8, 16), (16, 32)] {
            let c = model.total(Design::OneSa, dim, macs);
            assert_eq!(c.dsp, (dim * dim * macs) as u64);
        }
    }

    #[test]
    fn overhead_positive_in_fig9_range() {
        let model = ArrayResources::calibrated();
        for dim in [2usize, 4, 8, 16] {
            let o = model.overhead(dim);
            assert!(o.lut > 0 && o.ff > 0 && o.bram > 0, "{dim}: {o:?}");
        }
    }
}
