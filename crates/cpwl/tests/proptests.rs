//! Property-based tests for the CPWL invariants the paper relies on.

use onesa_cpwl::{NonlinearFn, PwlTable};
use onesa_tensor::Tensor;
use proptest::prelude::*;

fn pow2_granularity() -> impl Strategy<Value = f32> {
    prop_oneof![Just(0.125f32), Just(0.25), Just(0.5), Just(1.0)]
}

fn lipschitz_fn() -> impl Strategy<Value = (NonlinearFn, f32)> {
    // (function, Lipschitz constant of f' over the default range) pairs.
    prop_oneof![
        Just((NonlinearFn::Gelu, 1.2f32)),
        Just((NonlinearFn::Tanh, 0.8)),
        Just((NonlinearFn::Sigmoid, 0.11)),
        Just((NonlinearFn::Erf, 1.0)), // max |erf''| = 2√(2/πe) ≈ 0.968
    ]
}

proptest! {
    // Pinned case count: CI runs are deterministic and reproducible.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chord interpolation error of a C² function is at most M₂ g² / 8.
    #[test]
    fn chord_error_bound((func, m2) in lipschitz_fn(), g in pow2_granularity(),
                         frac in 0.0f32..1.0) {
        let table = PwlTable::builder(func).granularity(g).build().unwrap();
        let (lo, hi) = table.range();
        let x = lo + (hi - lo) * frac;
        let err = (table.eval(x) - func.eval(x)).abs();
        prop_assert!(err <= m2 * g * g / 8.0 + 1e-4,
            "{func} g={g} x={x} err={err}");
    }

    /// Capping is idempotent: evaluating far outside the range equals
    /// evaluating with the boundary chord.
    #[test]
    fn capping_uses_boundary_chord(g in pow2_granularity(), x in 10.0f32..1000.0) {
        let table = PwlTable::builder(NonlinearFn::Gelu).granularity(g).build().unwrap();
        let n = table.n_segments();
        let (k, b) = table.params(n - 1);
        prop_assert_eq!(table.eval(x), k * x + b);
        let (k0, b0) = table.params(0);
        prop_assert_eq!(table.eval(-x), k0 * (-x) + b0);
    }

    /// The fixed-point shift index equals the float floor index on the
    /// quantized value, for every power-of-two granularity.
    #[test]
    fn shift_equals_float_index(g in pow2_granularity(), x in -10.0f32..10.0) {
        let table = PwlTable::builder(NonlinearFn::Gelu).granularity(g).build().unwrap();
        let q = table.qformat();
        let xq = q.from_f32(x);
        prop_assert_eq!(table.segment_index_q(xq), table.segment_index(q.to_f32(xq)));
    }

    /// IPF + MHP over a tensor is elementwise identical to scalar eval.
    #[test]
    fn tensor_eval_matches_scalar(
        g in pow2_granularity(),
        xs in proptest::collection::vec(-20.0f32..20.0, 1..64)
    ) {
        let table = PwlTable::builder(NonlinearFn::Silu)
            .granularity(g).build().unwrap();
        let len = xs.len();
        let t = Tensor::from_vec(xs.clone(), &[len]).unwrap();
        let y = table.eval_tensor(&t).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(y.as_slice()[i], table.eval(x));
        }
    }

    /// Monotonicity of segment indices: larger inputs never get smaller
    /// (capped) segment indices.
    #[test]
    fn segment_index_is_monotone(g in pow2_granularity(),
                                 a in -50.0f32..50.0, b in -50.0f32..50.0) {
        let table = PwlTable::builder(NonlinearFn::Exp).granularity(g).build().unwrap();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(table.segment_index(lo) <= table.segment_index(hi));
    }

    /// Segment count × granularity spans the range.
    #[test]
    fn segments_tile_the_range(g in pow2_granularity()) {
        let table = PwlTable::builder(NonlinearFn::Sigmoid).granularity(g).build().unwrap();
        let (lo, hi) = table.range();
        let spanned = table.n_segments() as f32 * table.granularity();
        prop_assert!((spanned - (hi - lo)).abs() < g, "span {spanned} vs {}", hi - lo);
    }
}
