//! Approximation-quality analytics for CPWL tables.
//!
//! The paper's Table III sweeps granularity from 0.1 to 1.0 and observes
//! accuracy decline; these helpers quantify the underlying scalar
//! approximation error so the end-to-end results can be sanity-checked
//! against first principles (chord error of a C² function is `≈ M₂·g²/8`).

use crate::{NonlinearFn, PwlTable, Result};

/// Scalar approximation error statistics over a sampling of the range.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ApproxError {
    /// Largest absolute deviation observed.
    pub max_abs: f32,
    /// Mean absolute deviation.
    pub mean_abs: f32,
    /// Root-mean-square deviation.
    pub rms: f32,
}

/// Measures the approximation error of `table` against its exact function
/// with `samples` uniformly spaced probes across the table range.
///
/// Sampling stays strictly inside the range: capping behaviour outside the
/// range is intentional extrapolation, measured separately by
/// [`capped_error`].
pub fn measure(table: &PwlTable, samples: usize) -> ApproxError {
    let (lo, hi) = table.range();
    let n = samples.max(2);
    let mut max_abs = 0.0f32;
    let mut sum_abs = 0.0f64;
    let mut sum_sq = 0.0f64;
    for i in 0..n {
        // Probe strictly inside [lo, hi] so the final point is not capped.
        let x = lo + (hi - lo) * (i as f32 + 0.5) / n as f32;
        let e = (table.eval(x) - table.func().eval(x)).abs();
        max_abs = max_abs.max(e);
        sum_abs += e as f64;
        sum_sq += (e as f64) * (e as f64);
    }
    ApproxError {
        max_abs,
        mean_abs: (sum_abs / n as f64) as f32,
        rms: (sum_sq / n as f64).sqrt() as f32,
    }
}

/// Measures the error of the capped extrapolation over `[hi, hi+span]`
/// and `[lo-span, lo]`, the regions where the boundary chords take over.
pub fn capped_error(table: &PwlTable, span: f32, samples: usize) -> ApproxError {
    let (lo, hi) = table.range();
    let n = samples.max(2);
    let mut max_abs = 0.0f32;
    let mut sum_abs = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut probe = |x: f32| {
        let exact = table.func().eval(x);
        if !exact.is_finite() {
            return;
        }
        let e = (table.eval(x) - exact).abs();
        max_abs = max_abs.max(e);
        sum_abs += e as f64;
        sum_sq += (e as f64) * (e as f64);
    };
    for i in 0..n {
        let f = (i as f32 + 0.5) / n as f32;
        probe(hi + span * f);
        probe(lo - span * f);
    }
    ApproxError {
        max_abs,
        mean_abs: (sum_abs / (2 * n) as f64) as f32,
        rms: (sum_sq / (2 * n) as f64).sqrt() as f32,
    }
}

/// Sweeps a list of granularities and reports the in-range error of each
/// — the scalar-level counterpart of the paper's Table III columns.
///
/// # Errors
///
/// Propagates table-construction failures.
pub fn sweep(
    func: NonlinearFn,
    granularities: &[f32],
    samples: usize,
) -> Result<Vec<(f32, ApproxError)>> {
    granularities
        .iter()
        .map(|&g| {
            let table = PwlTable::builder(func).granularity(g).build()?;
            Ok((g, measure(&table, samples)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_with_granularity() {
        let sweep = sweep(NonlinearFn::Gelu, &[0.1, 0.25, 0.5, 1.0], 2000).unwrap();
        for w in sweep.windows(2) {
            assert!(
                w[0].1.max_abs <= w[1].1.max_abs + 1e-6,
                "{:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn chord_error_bound_holds_for_gelu() {
        // |f''| of GELU is bounded by ~1.13; chord error ≤ M2 g^2 / 8.
        let g = 0.25f32;
        let table = PwlTable::builder(NonlinearFn::Gelu)
            .granularity(g)
            .build()
            .unwrap();
        let err = measure(&table, 4000);
        let bound = 1.2 * g * g / 8.0;
        assert!(err.max_abs <= bound, "{} > {bound}", err.max_abs);
    }

    #[test]
    fn capped_error_small_for_saturating_functions() {
        let table = PwlTable::builder(NonlinearFn::Tanh)
            .granularity(0.25)
            .build()
            .unwrap();
        let e = capped_error(&table, 8.0, 256);
        // tanh saturates; the boundary chord is nearly flat at ±1.
        assert!(e.max_abs < 0.05, "{e:?}");
    }

    #[test]
    fn relu_error_zero() {
        let table = PwlTable::builder(NonlinearFn::Relu)
            .granularity(0.5)
            .build()
            .unwrap();
        let e = measure(&table, 1000);
        assert!(e.max_abs < 1e-6);
        let ce = capped_error(&table, 4.0, 100);
        assert!(ce.max_abs < 1e-6);
    }

    #[test]
    fn stats_are_ordered() {
        let table = PwlTable::builder(NonlinearFn::Exp)
            .granularity(0.5)
            .build()
            .unwrap();
        let e = measure(&table, 1000);
        assert!(e.mean_abs <= e.rms + 1e-9);
        assert!(e.rms <= e.max_abs + 1e-9);
    }
}
