//! Granularity selection.
//!
//! The paper notes that "one can choose a larger granularity for easier
//! tasks but a smaller one for more difficult tasks" and suggests
//! automated search (NAS) as future work. This module implements the
//! simple, deterministic version: pick the **largest** granularity whose
//! scalar approximation error stays within a budget — larger granularity
//! means fewer segments, a smaller L3 preload and fewer capped lookups.

use crate::analysis;
use crate::{NonlinearFn, PwlTable, Result};

/// Power-of-two granularities the L3 shift path supports, coarse→fine.
pub const POW2_CANDIDATES: [f32; 7] = [2.0, 1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125];

/// Picks the largest candidate granularity whose in-range max-abs error is
/// at most `max_err` for `func`.
///
/// Returns `None` when even the finest candidate misses the budget.
///
/// # Errors
///
/// Propagates table-construction failures.
///
/// # Example
///
/// ```
/// use onesa_cpwl::{granularity, NonlinearFn};
///
/// let g = granularity::largest_within(NonlinearFn::Gelu, 0.01, &granularity::POW2_CANDIDATES)?;
/// assert_eq!(g, Some(0.25)); // GELU chord error at 0.25 is ≈ 0.008
/// # Ok::<(), onesa_cpwl::CpwlError>(())
/// ```
pub fn largest_within(func: NonlinearFn, max_err: f32, candidates: &[f32]) -> Result<Option<f32>> {
    let mut sorted: Vec<f32> = candidates.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("granularities are finite"));
    for g in sorted {
        let table = PwlTable::builder(func).granularity(g).build()?;
        if analysis::measure(&table, 2048).max_abs <= max_err {
            return Ok(Some(g));
        }
    }
    Ok(None)
}

/// Per-function granularity assignment for a whole network: every
/// function gets the largest granularity meeting the shared budget.
///
/// # Errors
///
/// Propagates table-construction failures.
pub fn assign(
    funcs: &[NonlinearFn],
    max_err: f32,
    candidates: &[f32],
) -> Result<Vec<(NonlinearFn, Option<f32>)>> {
    funcs
        .iter()
        .map(|&f| Ok((f, largest_within(f, max_err, candidates)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_budget_gives_finer_granularity() {
        let loose = largest_within(NonlinearFn::Gelu, 0.1, &POW2_CANDIDATES)
            .unwrap()
            .unwrap();
        let tight = largest_within(NonlinearFn::Gelu, 0.001, &POW2_CANDIDATES)
            .unwrap()
            .unwrap();
        assert!(tight < loose, "{tight} !< {loose}");
    }

    #[test]
    fn impossible_budget_returns_none() {
        let g = largest_within(NonlinearFn::Exp, 1e-9, &POW2_CANDIDATES).unwrap();
        assert_eq!(g, None);
    }

    #[test]
    fn relu_accepts_coarsest() {
        // ReLU is exactly representable, so the coarsest candidate wins.
        let g = largest_within(NonlinearFn::Relu, 1e-6, &POW2_CANDIDATES).unwrap();
        assert_eq!(g, Some(2.0));
    }

    #[test]
    fn assign_covers_all_functions() {
        let out = assign(
            &[NonlinearFn::Gelu, NonlinearFn::Tanh, NonlinearFn::Sigmoid],
            0.05,
            &POW2_CANDIDATES,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        for (f, g) in out {
            assert!(g.is_some(), "{f} found no granularity");
        }
    }
}
