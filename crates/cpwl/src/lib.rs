//! Capped piecewise linearization (CPWL) of nonlinear functions.
//!
//! This crate implements the approximation scheme at the core of the
//! ONE-SA paper (§III): a continuous nonlinear function `y = f(x)` is cut
//! into uniform segments; within segment `s` the function is replaced by
//! the chord `y = k_s·x + b_s`; inputs outside the tabulated range are
//! *capped* to the boundary segments. Evaluating a whole matrix `X` then
//! becomes the paper's three steps:
//!
//! 1. compute the segment matrix `S` (data-addressing: a right shift when
//!    the segment length is a power of two),
//! 2. gather the slope/intercept matrices `K`, `B` (Intermediate
//!    Parameter Fetching),
//! 3. evaluate `Y = X ⊙ K + B` (Matrix Hadamard Product).
//!
//! # Example
//!
//! ```
//! use onesa_cpwl::{NonlinearFn, PwlTable};
//!
//! let table = PwlTable::builder(NonlinearFn::Gelu).granularity(0.25).build()?;
//! let y = table.eval(1.3);
//! assert!((y - 1.1743).abs() < 0.05); // GELU(1.3) ≈ 1.1743
//! # Ok::<(), onesa_cpwl::CpwlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod functions;
mod table;

pub mod analysis;
pub mod granularity;
pub mod ops;

pub use error::CpwlError;
pub use functions::NonlinearFn;
pub use table::{IpfOutput, PwlTable, PwlTableBuilder, SegmentIndexer};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, CpwlError>;
