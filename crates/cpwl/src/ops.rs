//! Matrix-level CPWL operators and the lowering of composite nonlinear
//! ops (softmax, layer norm, batch norm) into the paper's architecture
//! events.
//!
//! The decomposition mirrors §III of the paper: every *pointwise*
//! nonlinearity becomes IPF + MHP; every *reduction* is a GEMM against a
//! constant vector (ones for sums, `1/N` for means), which the array
//! executes natively. This module provides the functional (value-level)
//! form used by the accuracy experiments; `onesa-core` replays exactly
//! the same step sequence on the cycle-level simulator.

use crate::{NonlinearFn, PwlTable, Result};
use onesa_tensor::{gemm, Tensor};

/// A cached set of CPWL tables at one shared granularity — the paper's
/// per-network "approximation granularity setting".
///
/// # Example
///
/// ```
/// use onesa_cpwl::ops::TableSet;
///
/// let tables = TableSet::for_granularity(0.25)?;
/// let x = onesa_tensor::Tensor::from_vec(vec![0.5, -0.5], &[1, 2])?;
/// let y = tables.gelu(&x)?;
/// assert!((y.as_slice()[0] - 0.345_7).abs() < 0.02);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TableSet {
    granularity: f32,
    gelu: PwlTable,
    exp: PwlTable,
    reciprocal: PwlTable,
    rsqrt: PwlTable,
    tanh: PwlTable,
    sigmoid: PwlTable,
    relu: PwlTable,
}

impl TableSet {
    /// Builds the standard table set at the given granularity.
    ///
    /// Ranges follow the lowering contracts: `exp` sees max-subtracted
    /// logits (`≤ 0`), `reciprocal` sees softmax denominators (`≥ 1`),
    /// `rsqrt` sees variances plus epsilon.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures (e.g. absurd granularity).
    pub fn for_granularity(granularity: f32) -> Result<Self> {
        let build = |func: NonlinearFn| {
            let mut b = PwlTable::builder(func).granularity(granularity);
            if let Some((lo, hi)) = Self::standard_range(func) {
                b = b.range(lo, hi).max_segments(32_768);
            }
            b.build()
        };
        Ok(TableSet {
            granularity,
            gelu: build(NonlinearFn::Gelu)?,
            exp: build(NonlinearFn::Exp)?,
            reciprocal: build(NonlinearFn::Reciprocal)?,
            rsqrt: build(NonlinearFn::Rsqrt)?,
            tanh: build(NonlinearFn::Tanh)?,
            sigmoid: build(NonlinearFn::Sigmoid)?,
            relu: build(NonlinearFn::Relu)?,
        })
    }

    /// Range overrides the standard set applies on top of
    /// [`NonlinearFn::default_range`] (`None` = the default range).
    fn standard_range(func: NonlinearFn) -> Option<(f32, f32)> {
        match func {
            NonlinearFn::Exp => Some((-16.0, 0.0)),
            NonlinearFn::Reciprocal => Some((1.0, 257.0)),
            NonlinearFn::Rsqrt => Some((0.0625, 64.0625)),
            _ => None,
        }
    }

    /// Number of segments the standard set's table for `func` holds at
    /// `granularity` — the L3 k/b preload footprint — computed without
    /// building the table (same formula as the table builder). `None`
    /// when the set does not tabulate `func`.
    pub fn preload_segments(func: NonlinearFn, granularity: f32) -> Option<usize> {
        if !(Self::supports(func) && granularity.is_finite() && granularity > 0.0) {
            return None;
        }
        let (lo, hi) = Self::standard_range(func).unwrap_or_else(|| func.default_range());
        Some((((hi - lo) / granularity).round() as usize).max(1))
    }

    /// The shared granularity.
    pub fn granularity(&self) -> f32 {
        self.granularity
    }

    /// Whether the standard set tabulates `func` — compile-time
    /// metadata for program validators: a `Program` op referencing an
    /// uncovered function must be rejected *before* it reaches an
    /// engine's queue, where [`TableSet::table`] would return `None`.
    pub fn supports(func: NonlinearFn) -> bool {
        matches!(
            func,
            NonlinearFn::Gelu
                | NonlinearFn::Exp
                | NonlinearFn::Reciprocal
                | NonlinearFn::Rsqrt
                | NonlinearFn::Tanh
                | NonlinearFn::Sigmoid
                | NonlinearFn::Relu
        )
    }

    /// Borrow an individual table by function.
    ///
    /// Returns `None` for functions outside the cached set (see
    /// [`TableSet::supports`]).
    pub fn table(&self, func: NonlinearFn) -> Option<&PwlTable> {
        match func {
            NonlinearFn::Gelu => Some(&self.gelu),
            NonlinearFn::Exp => Some(&self.exp),
            NonlinearFn::Reciprocal => Some(&self.reciprocal),
            NonlinearFn::Rsqrt => Some(&self.rsqrt),
            NonlinearFn::Tanh => Some(&self.tanh),
            NonlinearFn::Sigmoid => Some(&self.sigmoid),
            NonlinearFn::Relu => Some(&self.relu),
            _ => None,
        }
    }

    /// GELU over a tensor (IPF + MHP).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn gelu(&self, x: &Tensor) -> Result<Tensor> {
        self.gelu.eval_tensor(x)
    }

    /// ReLU over a tensor (IPF + MHP; exact at any granularity).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn relu(&self, x: &Tensor) -> Result<Tensor> {
        self.relu.eval_tensor(x)
    }

    /// Tanh over a tensor (IPF + MHP).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn tanh(&self, x: &Tensor) -> Result<Tensor> {
        self.tanh.eval_tensor(x)
    }

    /// Sigmoid over a tensor (IPF + MHP).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn sigmoid(&self, x: &Tensor) -> Result<Tensor> {
        self.sigmoid.eval_tensor(x)
    }

    /// Row-wise softmax lowered to array events:
    ///
    /// 1. row max (reduction; exact),
    /// 2. shift by `-max` (MHP add),
    /// 3. `exp` via IPF + MHP,
    /// 4. row sum via GEMM with a ones vector (exact),
    /// 5. `1/sum` via IPF + MHP,
    /// 6. row scale (MHP).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `x` is not a matrix.
    pub fn softmax_rows(&self, x: &Tensor) -> Result<Tensor> {
        let maxes = gemm::row_maxes(x)?;
        let (_, n) = x.shape().as_matrix()?;
        let mut shifted = x.clone();
        for (i, &mx) in maxes.iter().enumerate() {
            let row = &mut shifted.as_mut_slice()[i * n..(i + 1) * n];
            for v in row {
                *v -= mx;
            }
        }
        let expd = self.exp.eval_tensor(&shifted)?;
        let sums = gemm::row_sums(&expd)?;
        let inv: Vec<f32> = sums.iter().map(|&s| self.reciprocal.eval(s)).collect();
        Ok(gemm::row_scale(&expd, &inv)?)
    }

    /// Row-wise layer normalization lowered to array events:
    ///
    /// 1. row mean via GEMM with `1/N` vector (exact),
    /// 2. centering (MHP add),
    /// 3. squares via MHP (`x ⊙ x`),
    /// 4. row mean of squares via GEMM (exact variance),
    /// 5. `1/√(var+ε)` via IPF + MHP,
    /// 6. scale + affine (`γ`, `β`) via MHPs.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `x` is not a matrix or `gamma`/`beta`
    /// lengths differ from the row width.
    pub fn layernorm_rows(
        &self,
        x: &Tensor,
        gamma: &[f32],
        beta: &[f32],
        eps: f32,
    ) -> Result<Tensor> {
        let (m, n) = x.shape().as_matrix()?;
        if gamma.len() != n || beta.len() != n {
            return Err(crate::CpwlError::Tensor(
                onesa_tensor::TensorError::ShapeMismatch {
                    lhs: vec![m, n],
                    rhs: vec![gamma.len(), beta.len()],
                    op: "layernorm_rows",
                },
            ));
        }
        let mut out = x.clone();
        for i in 0..m {
            let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            let mean: f32 = row.iter().sum::<f32>() / n as f32;
            for v in row.iter_mut() {
                *v -= mean;
            }
            let var: f32 = row.iter().map(|&v| v * v).sum::<f32>() / n as f32;
            let inv_std = self.rsqrt.eval(var + eps);
            for (j, v) in row.iter_mut().enumerate() {
                *v = *v * inv_std * gamma[j] + beta[j];
            }
        }
        Ok(out)
    }

    /// Inference-time batch normalization: with running statistics folded
    /// into a per-channel affine, the op is a single MHP
    /// (`y = x ⊙ k + b` with `k = γ/√(σ²+ε)`, `b = β − μ·k`).
    ///
    /// `x` is `[rows, channels]`; statistics are per channel.
    ///
    /// # Errors
    ///
    /// Returns a tensor error on mismatched channel counts.
    pub fn batchnorm_rows(
        &self,
        x: &Tensor,
        mean: &[f32],
        var: &[f32],
        gamma: &[f32],
        beta: &[f32],
        eps: f32,
    ) -> Result<Tensor> {
        let (m, n) = x.shape().as_matrix()?;
        if mean.len() != n || var.len() != n || gamma.len() != n || beta.len() != n {
            return Err(crate::CpwlError::Tensor(
                onesa_tensor::TensorError::ShapeMismatch {
                    lhs: vec![m, n],
                    rhs: vec![mean.len()],
                    op: "batchnorm_rows",
                },
            ));
        }
        // Fold stats into (k, b); the rsqrt itself goes through CPWL so a
        // coarse granularity degrades batch-norm too, as in the paper.
        let k: Vec<f32> = (0..n)
            .map(|j| gamma[j] * self.rsqrt.eval(var[j] + eps))
            .collect();
        let b: Vec<f32> = (0..n).map(|j| beta[j] - mean[j] * k[j]).collect();
        let mut out = x.clone();
        for i in 0..m {
            let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (j, v) in row.iter_mut().enumerate() {
                *v = *v * k[j] + b[j];
            }
        }
        Ok(out)
    }
}

/// Exact row-wise softmax (reference for tests and the `Exact` backend).
///
/// # Errors
///
/// Returns a tensor error if `x` is not a matrix.
pub fn softmax_rows_exact(x: &Tensor) -> Result<Tensor> {
    let (m, n) = x.shape().as_matrix()?;
    let mut out = x.clone();
    for i in 0..m {
        let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Exact row-wise layer normalization (reference).
///
/// # Errors
///
/// Returns a tensor error on malformed operands.
pub fn layernorm_rows_exact(x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> Result<Tensor> {
    let (m, n) = x.shape().as_matrix()?;
    if gamma.len() != n || beta.len() != n {
        return Err(crate::CpwlError::Tensor(
            onesa_tensor::TensorError::ShapeMismatch {
                lhs: vec![m, n],
                rhs: vec![gamma.len(), beta.len()],
                op: "layernorm_rows_exact",
            },
        ));
    }
    let mut out = x.clone();
    for i in 0..m {
        let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        let mean: f32 = row.iter().sum::<f32>() / n as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * gamma[j] + beta[j];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_tensor::rng::Pcg32;
    use onesa_tensor::stats;

    #[test]
    fn softmax_rows_close_to_exact_at_fine_granularity() {
        let mut rng = Pcg32::seed_from_u64(1);
        let x = rng.randn(&[6, 10], 2.0);
        let tables = TableSet::for_granularity(0.0625).unwrap();
        let approx = tables.softmax_rows(&x).unwrap();
        let exact = softmax_rows_exact(&x).unwrap();
        assert!(stats::max_abs_diff(approx.as_slice(), exact.as_slice()) < 0.01);
        // Rows still sum to ≈ 1.
        for s in gemm::row_sums(&approx).unwrap() {
            assert!((s - 1.0).abs() < 0.05, "row sum {s}");
        }
    }

    #[test]
    fn softmax_error_grows_with_granularity() {
        let mut rng = Pcg32::seed_from_u64(2);
        let x = rng.randn(&[8, 16], 2.0);
        let exact = softmax_rows_exact(&x).unwrap();
        let mut last = 0.0f32;
        for g in [0.0625, 0.25, 1.0] {
            let tables = TableSet::for_granularity(g).unwrap();
            let approx = tables.softmax_rows(&x).unwrap();
            let err = stats::rms_diff(approx.as_slice(), exact.as_slice());
            assert!(err >= last - 1e-4, "granularity {g}: {err} < {last}");
            last = err;
        }
    }

    #[test]
    fn layernorm_close_to_exact() {
        let mut rng = Pcg32::seed_from_u64(3);
        let x = rng.randn(&[4, 32], 1.5);
        let gamma = vec![1.0f32; 32];
        let beta = vec![0.0f32; 32];
        let tables = TableSet::for_granularity(0.0625).unwrap();
        let approx = tables.layernorm_rows(&x, &gamma, &beta, 1e-5).unwrap();
        let exact = layernorm_rows_exact(&x, &gamma, &beta, 1e-5).unwrap();
        assert!(stats::max_abs_diff(approx.as_slice(), exact.as_slice()) < 0.05);
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut rng = Pcg32::seed_from_u64(4);
        let x = rng.randn(&[3, 64], 3.0);
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        let tables = TableSet::for_granularity(0.25).unwrap();
        let y = tables.layernorm_rows(&x, &gamma, &beta, 1e-5).unwrap();
        for i in 0..3 {
            let row = y.row(i).unwrap();
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 0.05, "mean {mean}");
            assert!((var - 1.0).abs() < 0.2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_folds_to_affine() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let tables = TableSet::for_granularity(0.0625).unwrap();
        let y = tables
            .batchnorm_rows(&x, &[0.0, 1.0], &[1.0, 4.0], &[1.0, 1.0], &[0.0, 0.0], 0.0)
            .unwrap();
        // Channel 0: (x-0)/1; channel 1: (x-1)/2.
        assert!((y.at(&[0, 0]).unwrap() - 1.0).abs() < 0.02);
        assert!((y.at(&[0, 1]).unwrap() - 0.5).abs() < 0.02);
        assert!((y.at(&[1, 1]).unwrap() - 1.5).abs() < 0.02);
    }

    #[test]
    fn shape_validation() {
        let x = Tensor::zeros(&[2, 3]);
        let tables = TableSet::for_granularity(0.25).unwrap();
        assert!(tables
            .layernorm_rows(&x, &[1.0; 2], &[0.0; 3], 1e-5)
            .is_err());
        assert!(tables
            .batchnorm_rows(&x, &[0.0; 3], &[1.0; 3], &[1.0; 3], &[0.0; 2], 1e-5)
            .is_err());
    }

    #[test]
    fn table_lookup_by_function() {
        let tables = TableSet::for_granularity(0.25).unwrap();
        assert!(tables.table(NonlinearFn::Gelu).is_some());
        assert!(tables.table(NonlinearFn::Mish).is_none());
    }

    #[test]
    fn preload_segments_match_the_built_tables() {
        let funcs = [
            NonlinearFn::Gelu,
            NonlinearFn::Exp,
            NonlinearFn::Reciprocal,
            NonlinearFn::Rsqrt,
            NonlinearFn::Tanh,
            NonlinearFn::Sigmoid,
            NonlinearFn::Relu,
        ];
        for g in [0.0625, 0.25, 0.5, 1.0] {
            let tables = TableSet::for_granularity(g).unwrap();
            for func in funcs {
                assert_eq!(
                    TableSet::preload_segments(func, g),
                    Some(tables.table(func).unwrap().n_segments()),
                    "{func:?} at {g}"
                );
            }
        }
        // Coarser granularity => strictly smaller preload footprint.
        let fine = TableSet::preload_segments(NonlinearFn::Gelu, 0.25).unwrap();
        let coarse = TableSet::preload_segments(NonlinearFn::Gelu, 1.0).unwrap();
        assert!(coarse < fine);
        assert_eq!(TableSet::preload_segments(NonlinearFn::Mish, 0.25), None);
        assert_eq!(TableSet::preload_segments(NonlinearFn::Gelu, 0.0), None);
    }
}
