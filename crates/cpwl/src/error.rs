use std::fmt;

/// Error type for CPWL table construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CpwlError {
    /// The requested granularity is not positive and finite.
    InvalidGranularity(f32),
    /// The approximation range is empty or inverted.
    InvalidRange {
        /// Lower bound of the offending range.
        lo: f32,
        /// Upper bound of the offending range.
        hi: f32,
    },
    /// The function produced a non-finite value inside the range, so no
    /// chord can be drawn there.
    NonFiniteSample {
        /// The abscissa at which sampling failed.
        x: f32,
    },
    /// The table would exceed the configured maximum number of segments
    /// (bounded by the L3 buffer capacity in hardware).
    TooManySegments {
        /// Segments the request implies.
        requested: usize,
        /// Hard cap.
        cap: usize,
    },
    /// A tensor operation failed while applying the table to a matrix.
    Tensor(onesa_tensor::TensorError),
}

impl fmt::Display for CpwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpwlError::InvalidGranularity(g) => {
                write!(f, "granularity must be positive and finite, got {g}")
            }
            CpwlError::InvalidRange { lo, hi } => {
                write!(f, "invalid approximation range [{lo}, {hi}]")
            }
            CpwlError::NonFiniteSample { x } => {
                write!(f, "function is not finite at x = {x}")
            }
            CpwlError::TooManySegments { requested, cap } => {
                write!(f, "table would need {requested} segments, cap is {cap}")
            }
            CpwlError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for CpwlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CpwlError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<onesa_tensor::TensorError> for CpwlError {
    fn from(e: onesa_tensor::TensorError) -> Self {
        CpwlError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            CpwlError::InvalidGranularity(-1.0),
            CpwlError::InvalidRange { lo: 1.0, hi: 0.0 },
            CpwlError::NonFiniteSample { x: 0.0 },
            CpwlError::TooManySegments {
                requested: 100,
                cap: 10,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_tensor_error() {
        use std::error::Error;
        let e = CpwlError::from(onesa_tensor::TensorError::NotAMatrix { rank: 1 });
        assert!(e.source().is_some());
    }
}
