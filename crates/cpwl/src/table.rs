//! CPWL tables: construction, segment addressing, capping and evaluation.

use crate::{CpwlError, NonlinearFn, Result};
use onesa_tensor::fixed::QFormat;
use onesa_tensor::{gemm, Tensor};

/// How segment indices are computed from inputs.
///
/// The hardware distinction matters: when the segment length is a power of
/// two, the L3 data-addressing module computes the index with a bare
/// right shift of the fixed-point input (Fig 5 of the paper); otherwise a
/// divide is required. Both paths are modelled so the accuracy sweep can
/// use the paper's non-power-of-two granularities (0.1, 0.75, 1.0 …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentIndexer {
    /// Index by arithmetic right shift; `log2_seg` is `log2(segment
    /// length)` (e.g. `-2` for granularity 0.25).
    Shift {
        /// Base-2 logarithm of the segment length.
        log2_seg: i8,
    },
    /// Index by floating-point division (non-power-of-two granularity).
    Divide {
        /// Segment length in input units.
        seg_len: f32,
    },
}

/// Result of Intermediate Parameter Fetching over a whole tensor: the
/// segment matrix `S` and the gathered parameter matrices `K` and `B`.
///
/// `Y = X ⊙ K + B` (a Matrix Hadamard Product) completes the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct IpfOutput {
    /// Capped segment index of every element, row-major.
    pub segments: Vec<u16>,
    /// Slope matrix `K`, same shape as the input.
    pub k: Tensor,
    /// Intercept matrix `B`, same shape as the input.
    pub b: Tensor,
}

/// A capped piecewise-linear approximation of one [`NonlinearFn`].
///
/// Construct with [`PwlTable::builder`]. The table stores per-segment
/// chord parameters `k`, `b` in both `f32` and Q-format INT16, mirroring
/// the k/b buffers preloaded into the L3 buffer.
///
/// # Example
///
/// ```
/// use onesa_cpwl::{NonlinearFn, PwlTable};
///
/// let t = PwlTable::builder(NonlinearFn::Tanh).granularity(0.5).build()?;
/// assert_eq!(t.n_segments(), 16); // range [-4, 4] at 0.5
/// // Inside the range the chord error is small …
/// assert!((t.eval(0.3) - 0.3f32.tanh()).abs() < 0.05);
/// // … and moderately outside the range the capped boundary chord keeps
/// // tracking the saturated asymptote (it extrapolates linearly, so very
/// // distant inputs do drift — that is the "capped" trade-off).
/// assert!((t.eval(6.0) - 1.0).abs() < 0.05);
/// # Ok::<(), onesa_cpwl::CpwlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PwlTable {
    func: NonlinearFn,
    x_min: f32,
    x_max: f32,
    seg_len: f32,
    indexer: SegmentIndexer,
    k: Vec<f32>,
    b: Vec<f32>,
    qformat: QFormat,
    k_q: Vec<i16>,
    b_q: Vec<i16>,
    x_min_q: i16,
}

impl PwlTable {
    /// Starts building a table for `func`.
    pub fn builder(func: NonlinearFn) -> PwlTableBuilder {
        PwlTableBuilder {
            func,
            granularity: 0.25,
            range: None,
            qformat: QFormat::default(),
            max_segments: 4096,
        }
    }

    /// The approximated function.
    pub fn func(&self) -> NonlinearFn {
        self.func
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.k.len()
    }

    /// Segment length (the paper's "approximation granularity").
    pub fn granularity(&self) -> f32 {
        self.seg_len
    }

    /// Approximation range `[lo, hi]`.
    pub fn range(&self) -> (f32, f32) {
        (self.x_min, self.x_max)
    }

    /// The segment indexing scheme in use.
    pub fn indexer(&self) -> SegmentIndexer {
        self.indexer
    }

    /// The Q-format of the INT16 parameter copies.
    pub fn qformat(&self) -> QFormat {
        self.qformat
    }

    /// Bytes of parameter storage at INT16 precision (`k` and `b` per
    /// segment), i.e. the L3 preload footprint.
    pub fn table_bytes(&self) -> usize {
        self.n_segments() * 2 * std::mem::size_of::<i16>()
    }

    /// Uncapped segment index — what the data-shift module produces before
    /// the scale module intervenes. Negative below the range.
    pub fn raw_segment_index(&self, x: f32) -> i64 {
        ((x - self.x_min) / self.seg_len).floor() as i64
    }

    /// Capped segment index: `s = max(min(s, s_max), s_min)` exactly as
    /// the paper's scale module computes it.
    pub fn segment_index(&self, x: f32) -> usize {
        let raw = self.raw_segment_index(x);
        raw.clamp(0, self.n_segments() as i64 - 1) as usize
    }

    /// Capped segment index of a fixed-point input, taking the shift path
    /// when the granularity allows it.
    pub fn segment_index_q(&self, x_q: i16) -> usize {
        let raw = match self.indexer {
            SegmentIndexer::Shift { log2_seg } => {
                self.qformat.segment_shift(x_q, self.x_min_q, log2_seg) as i64
            }
            SegmentIndexer::Divide { seg_len } => {
                ((self.qformat.to_f32(x_q) - self.x_min) / seg_len).floor() as i64
            }
        };
        raw.clamp(0, self.n_segments() as i64 - 1) as usize
    }

    /// Chord parameters `(k, b)` of segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn params(&self, s: usize) -> (f32, f32) {
        (self.k[s], self.b[s])
    }

    /// Quantized chord parameters of segment `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn params_q(&self, s: usize) -> (i16, i16) {
        (self.k_q[s], self.b_q[s])
    }

    /// Evaluates the approximation at `x` (float path).
    pub fn eval(&self, x: f32) -> f32 {
        let s = self.segment_index(x);
        self.k[s] * x + self.b[s]
    }

    /// Evaluates the approximation on the full INT16 path: shift-indexed
    /// segment, quantized parameters, MAC with saturation — bit-equivalent
    /// to what the array computes.
    pub fn eval_q(&self, x_q: i16) -> i16 {
        let s = self.segment_index_q(x_q);
        self.qformat.mac(self.k_q[s], x_q, self.b_q[s])
    }

    /// Runs Intermediate Parameter Fetching over a tensor: produces the
    /// segment matrix and gathers `K` and `B`.
    pub fn ipf(&self, x: &Tensor) -> IpfOutput {
        let mut segments = Vec::with_capacity(x.len());
        let mut k = Vec::with_capacity(x.len());
        let mut b = Vec::with_capacity(x.len());
        for &v in x.iter() {
            let s = self.segment_index(v);
            segments.push(s as u16);
            k.push(self.k[s]);
            b.push(self.b[s]);
        }
        IpfOutput {
            segments,
            k: Tensor::from_vec(k, x.dims()).expect("shape preserved"),
            b: Tensor::from_vec(b, x.dims()).expect("shape preserved"),
        }
    }

    /// Full three-step evaluation of a tensor: IPF then MHP.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (none occur for well-formed input).
    pub fn eval_tensor(&self, x: &Tensor) -> Result<Tensor> {
        let ipf = self.ipf(x);
        Ok(gemm::mhp(x, &ipf.k, &ipf.b)?)
    }
}

/// Builder for [`PwlTable`] (see [`PwlTable::builder`]).
#[derive(Debug, Clone)]
pub struct PwlTableBuilder {
    func: NonlinearFn,
    granularity: f32,
    range: Option<(f32, f32)>,
    qformat: QFormat,
    max_segments: usize,
}

impl PwlTableBuilder {
    /// Sets the segment length (default 0.25, the paper's default
    /// setting).
    pub fn granularity(mut self, g: f32) -> Self {
        self.granularity = g;
        self
    }

    /// Overrides the approximation range (default:
    /// [`NonlinearFn::default_range`]).
    pub fn range(mut self, lo: f32, hi: f32) -> Self {
        self.range = Some((lo, hi));
        self
    }

    /// Sets the Q-format of the INT16 parameter copies (default Q7.8).
    pub fn qformat(mut self, q: QFormat) -> Self {
        self.qformat = q;
        self
    }

    /// Caps the number of segments (models the finite L3 k/b buffers;
    /// default 4096).
    pub fn max_segments(mut self, cap: usize) -> Self {
        self.max_segments = cap;
        self
    }

    /// Builds the table by sampling the function at segment endpoints.
    ///
    /// # Errors
    ///
    /// * [`CpwlError::InvalidGranularity`] for non-positive granularity,
    /// * [`CpwlError::InvalidRange`] for an empty range,
    /// * [`CpwlError::TooManySegments`] when the range/granularity imply
    ///   more segments than the cap,
    /// * [`CpwlError::NonFiniteSample`] if the function is singular inside
    ///   the range.
    pub fn build(self) -> Result<PwlTable> {
        let g = self.granularity;
        if !(g.is_finite() && g > 0.0) {
            return Err(CpwlError::InvalidGranularity(g));
        }
        let (lo, hi) = self.range.unwrap_or_else(|| self.func.default_range());
        if lo >= hi || !lo.is_finite() || !hi.is_finite() {
            return Err(CpwlError::InvalidRange { lo, hi });
        }
        let n = (((hi - lo) / g).round() as usize).max(1);
        if n > self.max_segments {
            return Err(CpwlError::TooManySegments {
                requested: n,
                cap: self.max_segments,
            });
        }
        let mut k = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for s in 0..n {
            let x0 = lo + s as f32 * g;
            let x1 = x0 + g;
            let y0 = self.func.eval(x0);
            let y1 = self.func.eval(x1);
            if !y0.is_finite() {
                return Err(CpwlError::NonFiniteSample { x: x0 });
            }
            if !y1.is_finite() {
                return Err(CpwlError::NonFiniteSample { x: x1 });
            }
            let slope = (y1 - y0) / g;
            k.push(slope);
            b.push(y0 - slope * x0);
        }
        let indexer = match pow2_log(g) {
            Some(log2_seg) if self.qformat.frac_bits() as i32 + log2_seg as i32 >= 0 => {
                SegmentIndexer::Shift { log2_seg }
            }
            _ => SegmentIndexer::Divide { seg_len: g },
        };
        let k_q = k.iter().map(|&v| self.qformat.from_f32(v)).collect();
        let b_q = b.iter().map(|&v| self.qformat.from_f32(v)).collect();
        let x_min_q = self.qformat.from_f32(lo);
        Ok(PwlTable {
            func: self.func,
            x_min: lo,
            x_max: hi,
            seg_len: g,
            indexer,
            k,
            b,
            qformat: self.qformat,
            k_q,
            b_q,
            x_min_q,
        })
    }
}

/// Returns `Some(log2(g))` when `g` is an exact power of two within f32.
fn pow2_log(g: f32) -> Option<i8> {
    let log = g.log2();
    let rounded = log.round();
    if (log - rounded).abs() < 1e-6 && (-14.0..=14.0).contains(&rounded) {
        let candidate = rounded as i8;
        // Confirm exactness to avoid misclassifying 0.1 etc.
        if (2.0f32.powi(candidate as i32) - g).abs() <= f32::EPSILON * g.abs() {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gelu_table(g: f32) -> PwlTable {
        PwlTable::builder(NonlinearFn::Gelu)
            .granularity(g)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            PwlTable::builder(NonlinearFn::Gelu)
                .granularity(0.0)
                .build(),
            Err(CpwlError::InvalidGranularity(_))
        ));
        assert!(matches!(
            PwlTable::builder(NonlinearFn::Gelu).range(1.0, 1.0).build(),
            Err(CpwlError::InvalidRange { .. })
        ));
        assert!(matches!(
            PwlTable::builder(NonlinearFn::Gelu)
                .granularity(0.001)
                .max_segments(10)
                .build(),
            Err(CpwlError::TooManySegments { .. })
        ));
        assert!(matches!(
            PwlTable::builder(NonlinearFn::Reciprocal)
                .range(-1.0, 1.0)
                .build(),
            Err(CpwlError::NonFiniteSample { .. })
        ));
    }

    #[test]
    fn segment_count_matches_range() {
        let t = gelu_table(0.25);
        assert_eq!(t.n_segments(), 32); // [-4, 4] / 0.25
        assert_eq!(t.range(), (-4.0, 4.0));
        let t = PwlTable::builder(NonlinearFn::Gelu)
            .granularity(0.1)
            .build()
            .unwrap();
        assert_eq!(t.n_segments(), 80);
    }

    #[test]
    fn pow2_granularity_selects_shift_indexer() {
        assert!(matches!(
            gelu_table(0.25).indexer(),
            SegmentIndexer::Shift { log2_seg: -2 }
        ));
        assert!(matches!(
            gelu_table(0.5).indexer(),
            SegmentIndexer::Shift { log2_seg: -1 }
        ));
        assert!(matches!(
            gelu_table(1.0).indexer(),
            SegmentIndexer::Shift { log2_seg: 0 }
        ));
        assert!(matches!(
            gelu_table(0.1).indexer(),
            SegmentIndexer::Divide { .. }
        ));
        assert!(matches!(
            gelu_table(0.75).indexer(),
            SegmentIndexer::Divide { .. }
        ));
    }

    #[test]
    fn capping_below_and_above() {
        let t = gelu_table(0.25);
        assert_eq!(t.segment_index(-100.0), 0);
        assert_eq!(t.segment_index(100.0), t.n_segments() - 1);
        assert!(t.raw_segment_index(-100.0) < 0);
        // Above range GELU extrapolates ≈ identity.
        assert!((t.eval(10.0) - 10.0).abs() < 0.05);
        // Below range ≈ 0.
        assert!(t.eval(-10.0).abs() < 0.1);
    }

    #[test]
    fn chord_is_exact_at_endpoints() {
        let t = gelu_table(0.25);
        for s in 0..t.n_segments() {
            let x0 = -4.0 + s as f32 * 0.25;
            let exact = NonlinearFn::Gelu.eval(x0);
            assert!((t.eval(x0) - exact).abs() < 1e-5, "segment {s}");
        }
    }

    #[test]
    fn error_shrinks_with_granularity() {
        let coarse = gelu_table(1.0);
        let fine = gelu_table(0.125);
        let mut worst_coarse = 0.0f32;
        let mut worst_fine = 0.0f32;
        let mut x = -4.0f32;
        while x < 4.0 {
            let exact = NonlinearFn::Gelu.eval(x);
            worst_coarse = worst_coarse.max((coarse.eval(x) - exact).abs());
            worst_fine = worst_fine.max((fine.eval(x) - exact).abs());
            x += 0.01;
        }
        assert!(
            worst_fine < worst_coarse / 4.0,
            "{worst_fine} vs {worst_coarse}"
        );
    }

    #[test]
    fn quantized_path_matches_float_path() {
        let t = gelu_table(0.25);
        let q = t.qformat();
        let mut x = -6.0f32;
        while x < 6.0 {
            let xq = q.from_f32(x);
            let yq = t.eval_q(xq);
            let yf = t.eval(q.to_f32(xq));
            assert!(
                (q.to_f32(yq) - yf).abs() < 0.02,
                "x={x} quantized {} float {yf}",
                q.to_f32(yq)
            );
            x += 0.0371;
        }
    }

    #[test]
    fn shift_and_divide_agree_on_pow2() {
        let t = gelu_table(0.25);
        let q = t.qformat();
        let mut x = -5.0f32;
        while x < 5.0 {
            let xq = q.from_f32(x);
            let via_q = t.segment_index_q(xq);
            let via_f = t.segment_index(q.to_f32(xq));
            assert_eq!(via_q, via_f, "x = {x}");
            x += 0.013;
        }
    }

    #[test]
    fn ipf_plus_mhp_equals_eval() {
        let t = gelu_table(0.25);
        let x = Tensor::from_vec(vec![-5.0, -1.3, 0.0, 0.7, 2.2, 9.0], &[2, 3]).unwrap();
        let y = t.eval_tensor(&x).unwrap();
        for (i, &v) in x.as_slice().iter().enumerate() {
            assert_eq!(y.as_slice()[i], t.eval(v));
        }
        let ipf = t.ipf(&x);
        assert_eq!(ipf.segments[0], 0); // capped below
        assert_eq!(ipf.segments[5], (t.n_segments() - 1) as u16); // capped above
        assert_eq!(ipf.k.dims(), x.dims());
    }

    #[test]
    fn relu_is_exact_under_cpwl() {
        // ReLU is piecewise linear with a knee at 0; any power-of-two
        // granularity places a segment boundary at 0, so CPWL is exact.
        let t = PwlTable::builder(NonlinearFn::Relu)
            .granularity(0.5)
            .build()
            .unwrap();
        for x in [-3.0f32, -0.25, 0.0, 0.25, 3.0] {
            assert_eq!(t.eval(x), x.max(0.0), "x = {x}");
        }
    }

    #[test]
    fn table_bytes_scale_with_segments() {
        let t = gelu_table(0.25);
        assert_eq!(t.table_bytes(), 32 * 4);
    }
}
