//! The library of nonlinear scalar functions the paper's networks need.
//!
//! Each variant knows its exact reference implementation and a sensible
//! default approximation range. The ranges are chosen so that the capped
//! linear extension beyond the range keeps behaving like the function's
//! asymptote (e.g. GELU's last chord has slope ≈ 1 and intercept ≈ 0, so
//! capping extrapolates the identity — exactly the behaviour the paper's
//! "capped" qualifier relies on).

/// A nonlinear scalar function that CPWL can tabulate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum NonlinearFn {
    /// Gaussian Error Linear Unit, `x·Φ(x)` (exact erf form).
    Gelu,
    /// The error function `erf(x)`.
    Erf,
    /// Natural exponential `e^x`.
    Exp,
    /// Logistic sigmoid `1/(1+e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// SiLU / swish, `x·sigmoid(x)`.
    Silu,
    /// Softplus `ln(1+e^x)`.
    Softplus,
    /// Mish, `x·tanh(softplus(x))`.
    Mish,
    /// Exponential linear unit with slope parameter `alpha`.
    Elu(f32),
    /// Leaky ReLU with negative slope.
    LeakyRelu(f32),
    /// Rectified linear unit (piecewise linear already; included to show
    /// CPWL reproduces it exactly at any granularity).
    Relu,
    /// Square root (domain `x ≥ 0`).
    Sqrt,
    /// Reciprocal square root `1/√x` (domain `x > 0`), used by the
    /// layer-norm lowering.
    Rsqrt,
    /// Reciprocal `1/x` (domain `x > 0`), used by the softmax lowering.
    Reciprocal,
    /// Natural logarithm (domain `x > 0`).
    Ln,
    /// Square `x²`, used by the variance step of layer norm.
    Square,
}

impl NonlinearFn {
    /// Exact value of the function at `x` (the reference the chords are
    /// drawn against).
    pub fn eval(&self, x: f32) -> f32 {
        match *self {
            NonlinearFn::Gelu => 0.5 * x * (1.0 + erf(x / std::f32::consts::SQRT_2)),
            NonlinearFn::Erf => erf(x),
            NonlinearFn::Exp => x.exp(),
            NonlinearFn::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            NonlinearFn::Tanh => x.tanh(),
            NonlinearFn::Silu => x / (1.0 + (-x).exp()),
            NonlinearFn::Softplus => {
                // Numerically-stable ln(1+e^x).
                if x > 20.0 {
                    x
                } else {
                    x.exp().ln_1p()
                }
            }
            NonlinearFn::Mish => {
                let sp = if x > 20.0 { x } else { x.exp().ln_1p() };
                x * sp.tanh()
            }
            NonlinearFn::Elu(alpha) => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * (x.exp() - 1.0)
                }
            }
            NonlinearFn::LeakyRelu(slope) => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            NonlinearFn::Relu => x.max(0.0),
            NonlinearFn::Sqrt => x.max(0.0).sqrt(),
            NonlinearFn::Rsqrt => 1.0 / x.sqrt(),
            NonlinearFn::Reciprocal => 1.0 / x,
            NonlinearFn::Ln => x.ln(),
            NonlinearFn::Square => x * x,
        }
    }

    /// Default capped approximation range `[lo, hi]` for the function.
    ///
    /// Outside the range the boundary chord extrapolates; the defaults are
    /// chosen so that extrapolation matches the asymptote (identity for
    /// GELU/SiLU above, zero below; saturation for sigmoid/tanh; …).
    pub fn default_range(&self) -> (f32, f32) {
        match *self {
            NonlinearFn::Gelu | NonlinearFn::Silu | NonlinearFn::Mish => (-4.0, 4.0),
            NonlinearFn::Erf | NonlinearFn::Tanh => (-4.0, 4.0),
            NonlinearFn::Exp => (-8.0, 0.0),
            NonlinearFn::Sigmoid => (-8.0, 8.0),
            NonlinearFn::Softplus => (-8.0, 8.0),
            NonlinearFn::Elu(_) => (-8.0, 0.0),
            NonlinearFn::LeakyRelu(_) | NonlinearFn::Relu => (-4.0, 4.0),
            NonlinearFn::Sqrt => (0.0, 16.0),
            NonlinearFn::Rsqrt => (0.25, 16.0),
            NonlinearFn::Reciprocal => (0.5, 64.0),
            NonlinearFn::Ln => (0.25, 16.0),
            NonlinearFn::Square => (-8.0, 8.0),
        }
    }

    /// Short stable name (used in reports and table caches).
    pub fn name(&self) -> &'static str {
        match *self {
            NonlinearFn::Gelu => "gelu",
            NonlinearFn::Erf => "erf",
            NonlinearFn::Exp => "exp",
            NonlinearFn::Sigmoid => "sigmoid",
            NonlinearFn::Tanh => "tanh",
            NonlinearFn::Silu => "silu",
            NonlinearFn::Softplus => "softplus",
            NonlinearFn::Mish => "mish",
            NonlinearFn::Elu(_) => "elu",
            NonlinearFn::LeakyRelu(_) => "leaky_relu",
            NonlinearFn::Relu => "relu",
            NonlinearFn::Sqrt => "sqrt",
            NonlinearFn::Rsqrt => "rsqrt",
            NonlinearFn::Reciprocal => "reciprocal",
            NonlinearFn::Ln => "ln",
            NonlinearFn::Square => "square",
        }
    }
}

impl std::fmt::Display for NonlinearFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7, far below INT16 resolution).
pub(crate) fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_6
            + t * (-0.284_496_72 + t * (1.421_413_8 + t * (-1.453_152_1 + t * 1.061_405_4))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_2_SQRT_PI;

    #[test]
    fn erf_reference_points() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_8).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
        // 2/sqrt(pi) is the derivative at zero; check small-x slope.
        assert!((erf(1e-3) / 1e-3 - FRAC_2_SQRT_PI).abs() < 1e-3);
    }

    #[test]
    fn gelu_reference_points() {
        let g = NonlinearFn::Gelu;
        assert!(g.eval(0.0).abs() < 1e-6);
        assert!((g.eval(1.0) - 0.841_345).abs() < 1e-4);
        assert!((g.eval(-1.0) + 0.158_655).abs() < 1e-4);
        assert!((g.eval(3.0) - 2.995_95).abs() < 1e-3);
    }

    #[test]
    fn sigmoid_tanh_silu_consistency() {
        for x in [-3.0f32, -1.0, 0.0, 0.5, 2.0] {
            let s = NonlinearFn::Sigmoid.eval(x);
            assert!((NonlinearFn::Silu.eval(x) - x * s).abs() < 1e-6);
            assert!(
                (NonlinearFn::Tanh.eval(x) - (2.0 * NonlinearFn::Sigmoid.eval(2.0 * x) - 1.0))
                    .abs()
                    < 1e-5
            );
        }
    }

    #[test]
    fn piecewise_linear_functions_exact() {
        assert_eq!(NonlinearFn::Relu.eval(-2.0), 0.0);
        assert_eq!(NonlinearFn::Relu.eval(2.0), 2.0);
        assert_eq!(NonlinearFn::LeakyRelu(0.1).eval(-2.0), -0.2);
        assert_eq!(NonlinearFn::Elu(1.0).eval(3.0), 3.0);
        let expect = (-1.0f32).exp() - 1.0;
        assert!((NonlinearFn::Elu(1.0).eval(-1.0) - expect).abs() < 1e-6);
    }

    #[test]
    fn softplus_stability() {
        assert!((NonlinearFn::Softplus.eval(30.0) - 30.0).abs() < 1e-3);
        assert!(NonlinearFn::Softplus.eval(-30.0) < 1e-6);
    }

    #[test]
    fn reciprocal_and_rsqrt() {
        assert_eq!(NonlinearFn::Reciprocal.eval(4.0), 0.25);
        assert_eq!(NonlinearFn::Rsqrt.eval(4.0), 0.5);
        assert_eq!(NonlinearFn::Sqrt.eval(9.0), 3.0);
        assert_eq!(NonlinearFn::Square.eval(-3.0), 9.0);
    }

    #[test]
    fn default_ranges_are_well_formed() {
        let fns = [
            NonlinearFn::Gelu,
            NonlinearFn::Erf,
            NonlinearFn::Exp,
            NonlinearFn::Sigmoid,
            NonlinearFn::Tanh,
            NonlinearFn::Silu,
            NonlinearFn::Softplus,
            NonlinearFn::Mish,
            NonlinearFn::Elu(1.0),
            NonlinearFn::LeakyRelu(0.01),
            NonlinearFn::Relu,
            NonlinearFn::Sqrt,
            NonlinearFn::Rsqrt,
            NonlinearFn::Reciprocal,
            NonlinearFn::Ln,
            NonlinearFn::Square,
        ];
        for f in fns {
            let (lo, hi) = f.default_range();
            assert!(lo < hi, "{f}");
            // Function must be finite across its default range.
            let steps = 64;
            for i in 0..=steps {
                let x = lo + (hi - lo) * i as f32 / steps as f32;
                assert!(f.eval(x).is_finite(), "{f} at {x}");
            }
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(NonlinearFn::Gelu.to_string(), "gelu");
        assert_eq!(NonlinearFn::Elu(0.5).to_string(), "elu");
    }
}
