//! Execution reports: latency, throughput, power and efficiency of one
//! workload on one array configuration.

use onesa_resources::ModuleCost;
use onesa_sim::{ArrayConfig, ExecStats};

/// The result of running a workload on the engine.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Workload name.
    pub workload: String,
    /// Aggregated execution statistics.
    pub stats: ExecStats,
    /// Array configuration used.
    pub config: ArrayConfig,
    /// FPGA resource cost of the design.
    pub cost: ModuleCost,
    /// Modelled power draw during the run (W).
    pub power_w: f64,
}

impl ExecutionReport {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.stats.seconds() * 1e3
    }

    /// Sustained GOPS (1 op = 1 MAC, the paper's convention).
    pub fn gops(&self) -> f64 {
        self.stats.gops()
    }

    /// MAC utilization against the array peak.
    pub fn utilization(&self) -> f64 {
        self.stats.utilization(&self.config)
    }

    /// Throughput per watt (the paper's efficiency metric, `1/W`).
    pub fn gops_per_watt(&self) -> f64 {
        self.gops() / self.power_w
    }

    /// Energy for the run in joules.
    pub fn energy_j(&self) -> f64 {
        self.power_w * self.stats.seconds()
    }
}

impl std::fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.2} ms, {:.1} GOPS, {:.2} W, {:.2} GOPS/W (util {:.1}%)",
            self.workload,
            self.latency_ms(),
            self.gops(),
            self.power_w,
            self.gops_per_watt(),
            self.utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_sim::CycleBreakdown;

    #[test]
    fn derived_metrics() {
        let cfg = ArrayConfig::default();
        let stats = ExecStats::new(
            &cfg,
            CycleBreakdown {
                skew: 0,
                compute: 200_000,
                drain: 0,
                ipf: 0,
                dram_stall: 0,
            },
            204_800_000,
            0,
        );
        let report = ExecutionReport {
            workload: "test".into(),
            stats,
            config: cfg,
            cost: ModuleCost::new(1, 1, 1, 1),
            power_w: 8.0,
        };
        // 200k cycles at 200 MHz = 1 ms.
        assert!((report.latency_ms() - 1.0).abs() < 1e-9);
        assert!((report.gops() - 204.8).abs() < 1e-6);
        assert!((report.gops_per_watt() - 25.6).abs() < 1e-6);
        assert!((report.energy_j() - 8.0e-3).abs() < 1e-9);
        assert!(report.to_string().contains("GOPS"));
    }
}
