//! Batched serving on top of the [`OneSa`] engine.
//!
//! A deployed accelerator rarely sees one request at a time. The
//! [`BatchEngine`] accepts a queue of independent inference requests —
//! GEMMs against (typically shared) weight matrices and pointwise
//! nonlinear evaluations — and serves the whole queue at once:
//!
//! 1. **Coalescing.** GEMM requests that multiply against the *same*
//!    right-hand matrix are stacked row-wise into one tall GEMM (this is
//!    classic serving-time batching: many activations, one weight load).
//!    Nonlinear requests using the same function are concatenated into a
//!    single Matrix Hadamard Product pass, amortizing Intermediate
//!    Parameter Fetching.
//! 2. **Execution.** Each coalesced batch runs through the engine's
//!    parallel backend ([`onesa_tensor::parallel`]), which spreads row
//!    panels across worker threads.
//! 3. **Accounting.** Every request gets back its own output tensor and
//!    an [`ExecStats`] for its shape; the whole run is summarized in a
//!    [`ServingReport`] with aggregate throughput and latency
//!    percentiles, including the cycles the array saves by batching
//!    (fewer wavefront fills, drains and IPF passes).
//!
//! Coalescing is transparent: each request's rows/elements go through
//! exactly the same floating-point op sequence as a solo run, so outputs
//! are bit-identical to serving the queue one request at a time.
//!
//! # Whole-network program requests
//!
//! Beyond single GEMM/nonlinear requests, the engine accepts **compiled
//! programs** ([`Request::Program`], [`BatchEngine::submit_program`]):
//! operator graphs emitted by `onesa_nn`'s models via
//! [`crate::plan::Compile`]. Concurrent programs execute **stage by
//! stage** through [`crate::plan::run_staged`], which applies the same
//! two coalescing rules at *every* layer — GEMMs against a shared
//! constant weight row-stack (or column-stack for a shared left
//! operand, a GCN's Â), and nonlinear / softmax / layer-norm ops that
//! share a function, granularity and parameters concatenate into one
//! IPF + MHP pass. Per-stage accounting lands in
//! [`BatchRun::program_stages`]; each program's per-op [`ExecStats`]
//! come back in [`RequestOutcome::op_stats`] and roll into the
//! [`ServingReport`] totals.
//!
//! For asynchronous admission (submitting while a batch executes) and
//! sharding a queue across several simulated arrays, see
//! [`crate::serve`], which runs one `BatchEngine` per shard.
//!
//! # Example
//!
//! ```
//! use onesa_core::{BatchEngine, OneSa, Request};
//! use onesa_cpwl::NonlinearFn;
//! use onesa_sim::ArrayConfig;
//! use onesa_tensor::rng::Pcg32;
//!
//! let mut rng = Pcg32::seed_from_u64(1);
//! let weights = rng.randn(&[16, 8], 1.0);
//! let mut serving = BatchEngine::new(OneSa::new(ArrayConfig::new(8, 16)), 0.25)?;
//! for _ in 0..3 {
//!     serving.submit(Request::gemm(rng.randn(&[4, 16], 1.0), weights.clone()));
//! }
//! serving.submit(Request::nonlinear(NonlinearFn::Gelu, rng.randn(&[4, 8], 1.0)));
//! let run = serving.run()?;
//! assert_eq!(run.outcomes.len(), 4);
//! assert!(run.report.batching_speedup() > 1.0); // 3 GEMMs shared one pass
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```
//!
//! # A worked coalescing example
//!
//! Row stacking and concatenation are literal: the engine executes the
//! stacked operands as one kernel call and slices each request's share
//! back out. The doctest below spells the transformation out by hand and
//! checks it against the engine, for both coalescing rules.
//!
//! ```
//! use onesa_core::{BatchEngine, OneSa, Request};
//! use onesa_cpwl::ops::TableSet;
//! use onesa_cpwl::NonlinearFn;
//! use onesa_sim::ArrayConfig;
//! use onesa_tensor::{gemm, rng::Pcg32, Tensor};
//!
//! let mut rng = Pcg32::seed_from_u64(7);
//! let w = rng.randn(&[6, 4], 1.0);             // shared [K=6, N=4] weights
//! let a0 = rng.randn(&[2, 6], 1.0);            // request 0: 2 activation rows
//! let a1 = rng.randn(&[3, 6], 1.0);            // request 1: 3 activation rows
//!
//! // Shared-weight row stacking: the engine runs ONE [5, 6] x [6, 4]
//! // GEMM instead of a [2, 6] and a [3, 6] one...
//! let mut stacked = a0.as_slice().to_vec();
//! stacked.extend_from_slice(a1.as_slice());
//! let tall = Tensor::from_vec(stacked, &[5, 6])?;
//! let product = gemm::matmul(&tall, &w)?;
//!
//! // ...and each request gets its own rows back, bit-identical to solo.
//! let mut serving = BatchEngine::new(OneSa::new(ArrayConfig::new(8, 16)), 0.25)?;
//! serving.submit(Request::gemm(a0.clone(), w.clone()));
//! serving.submit(Request::gemm(a1.clone(), w.clone()));
//! // Same-function concatenation: both GELU requests share one IPF + MHP
//! // pass over their concatenated elements.
//! let x0 = rng.randn(&[1, 3], 1.0);
//! let x1 = rng.randn(&[2, 2], 1.0);
//! serving.submit(Request::nonlinear(NonlinearFn::Gelu, x0.clone()));
//! serving.submit(Request::nonlinear(NonlinearFn::Gelu, x1.clone()));
//!
//! let run = serving.run()?;
//! assert_eq!(run.report.gemm_groups, 1);        // 2 GEMMs -> 1 kernel call
//! assert_eq!(run.report.nonlinear_groups, 1);   // 2 GELUs -> 1 IPF + MHP
//! assert_eq!(run.outcomes[0].output.as_slice(), &product.as_slice()[..8]);
//! assert_eq!(run.outcomes[1].output.as_slice(), &product.as_slice()[8..]);
//! let tables = TableSet::for_granularity(0.25).unwrap();
//! assert_eq!(run.outcomes[2].output, tables.gelu(&x0).unwrap());
//! assert_eq!(run.outcomes[3].output, tables.gelu(&x1).unwrap());
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

use crate::engine::OneSa;
use onesa_cpwl::ops::TableSet;
use onesa_cpwl::NonlinearFn;
use onesa_plan::{self as plan, OptTotals, Program, StageGroups, TableCache};
use onesa_sim::{analytic, ExecStats};
use onesa_tensor::parallel;
use onesa_tensor::{Result, Tensor, TensorError};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier handed back by [`BatchEngine::submit`].
pub type RequestId = usize;

/// One inference request in the serving queue.
#[derive(Debug, Clone)]
pub enum Request {
    /// `A · B` — `b` is typically a weight matrix shared across requests.
    Gemm {
        /// Left operand (`M × K` activations).
        a: Tensor,
        /// Right operand (`K × N` weights).
        b: Tensor,
    },
    /// A pointwise nonlinear evaluation through the CPWL tables.
    Nonlinear {
        /// Which function to evaluate.
        func: NonlinearFn,
        /// Input activations (any shape).
        x: Tensor,
    },
    /// A compiled whole-network request: an operator-graph
    /// [`Program`] plus its input tensors. Concurrent programs coalesce
    /// with each other stage by stage (see the [module docs](self)).
    Program {
        /// The compiled operator graph (boxed to keep the enum small).
        program: Box<Program>,
        /// One tensor per program input slot.
        inputs: Vec<Tensor>,
    },
}

impl Request {
    /// Convenience constructor for a GEMM request.
    pub fn gemm(a: Tensor, b: Tensor) -> Self {
        Request::Gemm { a, b }
    }

    /// Convenience constructor for a nonlinear request.
    pub fn nonlinear(func: NonlinearFn, x: Tensor) -> Self {
        Request::Nonlinear { func, x }
    }

    /// Convenience constructor for a whole-network program request.
    pub fn program(program: Program, inputs: Vec<Tensor>) -> Self {
        Request::Program {
            program: Box::new(program),
            inputs,
        }
    }

    /// Modeled array work for this request, in MAC-equivalents: `M·K·N`
    /// for a GEMM, one per element for a nonlinear evaluation (the MHP
    /// `y = x⊙k + b` is exactly one MAC per element). Size-capped
    /// admission windows and least-loaded routing in [`crate::serve`]
    /// weigh requests by this number. Returns 0 for operands that are not
    /// matrices (such requests are rejected at execution time).
    pub fn modeled_macs(&self) -> u64 {
        match self {
            Request::Gemm { a, b } => match (a.shape().as_matrix(), b.shape().as_matrix()) {
                (Ok((m, k)), Ok((_, n))) => (m * k * n) as u64,
                _ => 0,
            },
            Request::Nonlinear { x, .. } => x.len() as u64,
            Request::Program { program, .. } => program.modeled_macs(),
        }
    }

    /// The coalescing key [`crate::serve`]'s weight-affinity router uses:
    /// GEMMs that can share a weight load hash identically, nonlinears
    /// hash by function. (Distinct weights may collide — the router only
    /// needs "equal keys usually coalesce", the engine still checks exact
    /// equality before stacking.)
    pub fn affinity_key(&self) -> u64 {
        match self {
            Request::Gemm { b, .. } => plan::tensor_fingerprint(b),
            Request::Program { program, .. } => program.fingerprint(),
            Request::Nonlinear { func, .. } => {
                // FNV-1a over the debug form: stable within a build, and
                // parameterized variants (Elu/LeakyRelu) hash by value.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for byte in format!("{func:?}").bytes() {
                    h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            }
        }
    }
}

/// Per-request result of a serving run.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The id [`BatchEngine::submit`] returned.
    pub id: RequestId,
    /// The request's output tensor (bit-identical to a solo run).
    pub output: Tensor,
    /// Simulated array stats for this request's own shape (for a
    /// program request, the merge of [`RequestOutcome::op_stats`]).
    pub stats: ExecStats,
    /// Per-op solo stats of a program request, in stage order (empty
    /// for plain GEMM/nonlinear requests).
    pub op_stats: Vec<ExecStats>,
    /// Session-state tensors a program request produced (the grown
    /// per-layer KV caches of a decoder prefill/decode step), in the
    /// program's `session_outputs` order. Empty for stateless programs
    /// and plain GEMM/nonlinear requests. The serving layer
    /// ([`crate::serve`]) writes these back into the session table.
    pub session_outputs: Vec<Tensor>,
}

/// Aggregate statistics of one [`BatchEngine::run`] (or, aggregated
/// across shards, of one [`crate::serve::ServeEngine`] lifetime).
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Number of requests served. Zero is legal (an empty queue produces
    /// an empty report, and every derived metric stays finite).
    pub requests: usize,
    /// Host wall-clock seconds for the whole run — queue coalescing plus
    /// kernel execution on the host backend. Machine-dependent; the
    /// simulated-seconds fields below are the deterministic quantities.
    pub wall_seconds: f64,
    /// Simulated array seconds for the schedule actually executed: the
    /// coalesced batches, at the array's configured clock. For a sharded
    /// run this is the *makespan* — the busiest shard's total, since the
    /// simulated arrays run concurrently.
    pub batched_seconds: f64,
    /// Simulated array seconds had each request run alone, back to back,
    /// on a single array (the sum of [`RequestOutcome::stats`] times).
    /// The numerator of [`ServingReport::batching_speedup`].
    pub unbatched_seconds: f64,
    /// Total multiply-accumulates across all requests (each MAC is one
    /// paper "operation": a multiply plus an add).
    pub total_macs: u64,
    /// Total CPWL nonlinear evaluations across all requests (0 for a
    /// GEMM-only queue).
    pub total_nonlinear_evals: u64,
    /// Number of coalesced GEMM kernel calls: requests sharing a weight
    /// matrix count once. For one [`BatchEngine::run`] this equals the
    /// number of distinct weight matrices in the queue; reports
    /// aggregated across shards/windows by [`crate::serve`] sum the
    /// groups of every shard-batch, so a weight served by several
    /// shards (or in several windows) counts once per kernel call, not
    /// once overall.
    pub gemm_groups: usize,
    /// Number of coalesced IPF + MHP passes: nonlinear requests sharing a
    /// function count once (per run, with the same aggregation caveat as
    /// [`ServingReport::gemm_groups`]).
    pub nonlinear_groups: usize,
    /// Per-request simulated latencies in seconds, indexed by submission
    /// order (entry `i` belongs to the request [`BatchEngine::submit`]
    /// returned id `i` for; serve-aggregated reports order by ticket id
    /// over the successfully served requests, omitting rejected ones).
    /// Input to [`ServingReport::latency_percentile`].
    pub latencies: Vec<f64>,
    /// Optimizer pass totals of the run's program requests, summed from
    /// each program's `OptReport` (all zero when the queue held no
    /// optimized programs). The counts are per *request*: one cached
    /// program served N times contributes N times, which is the point —
    /// they measure work the optimizer saved this run.
    pub opt: OptTotals,
    /// Weight column blocks the sparsity-aware GEMM kernel skipped
    /// across the run's program requests, summed from each program's
    /// [`Program::sparse_blocks`](onesa_plan::Program::sparse_blocks).
    /// Per *request*, like [`ServingReport::opt`]: a pruned program
    /// served N times credits its skipped blocks N times — work the
    /// prune-pack pass saved this run. Zero when no served program
    /// carried a sparsity attribute.
    pub blocks_skipped: u64,
    /// Total weight column blocks of the sparsity-attributed GEMMs the
    /// run served (the denominator of the skip fraction; dense GEMMs
    /// contribute nothing to either count).
    pub blocks_total: u64,
}

impl ServingReport {
    /// Requests per second against host wall-clock time.
    pub fn wall_rps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Sustained GOPS of the simulated array over the batched schedule.
    pub fn batched_gops(&self) -> f64 {
        if self.batched_seconds > 0.0 {
            self.total_macs as f64 / self.batched_seconds / 1e9
        } else {
            0.0
        }
    }

    /// How much array time coalescing saved (`unbatched / batched`).
    pub fn batching_speedup(&self) -> f64 {
        if self.batched_seconds > 0.0 {
            self.unbatched_seconds / self.batched_seconds
        } else {
            1.0
        }
    }

    /// Simulated per-request latency percentile (`q` in `0..=100`),
    /// nearest-rank over the served queue.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} requests in {:.3} ms wall ({:.0} req/s)",
            self.requests,
            self.wall_seconds * 1e3,
            self.wall_rps()
        )?;
        writeln!(
            f,
            "array: {:.3} ms batched vs {:.3} ms unbatched ({:.2}x from coalescing), {:.1} GOPS",
            self.batched_seconds * 1e3,
            self.unbatched_seconds * 1e3,
            self.batching_speedup(),
            self.batched_gops()
        )?;
        if self.opt.removed() > 0 {
            writeln!(
                f,
                "optimizer: {} boundaries elided, {} ops shared, {} fused, {} dead",
                self.opt.elided, self.opt.shared, self.opt.fused, self.opt.dead
            )?;
        }
        if self.blocks_total > 0 {
            writeln!(
                f,
                "sparsity: skipped {} of {} weight column blocks ({:.0}%)",
                self.blocks_skipped,
                self.blocks_total,
                100.0 * self.blocks_skipped as f64 / self.blocks_total as f64
            )?;
        }
        write!(
            f,
            "latency p50/p95/p99: {:.1} / {:.1} / {:.1} us",
            self.latency_percentile(50.0) * 1e6,
            self.latency_percentile(95.0) * 1e6,
            self.latency_percentile(99.0) * 1e6
        )
    }
}

/// Everything a serving run produces.
#[derive(Debug, Clone)]
#[must_use = "a BatchRun carries every request's output — dropping it discards results"]
pub struct BatchRun {
    /// Per-request outputs and stats, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    /// Aggregate throughput/latency summary.
    pub report: ServingReport,
    /// Per-stage coalescing accounting of the run's program requests
    /// (empty when the queue held none): how many program ops executed
    /// at each stage and how many kernel groups they collapsed into.
    pub program_stages: Vec<StageGroups>,
}

/// One queued request plus whether it was already validated at
/// admission (validated requests skip the redundant pre-run walk).
#[derive(Debug, Clone)]
struct Queued {
    request: Request,
    validated: bool,
}

/// A request queue in front of a [`OneSa`] engine.
///
/// See the [module docs](self) for the serving model.
#[derive(Debug)]
pub struct BatchEngine {
    engine: OneSa,
    /// `Arc`-shared: cloning the engine (or seeding the program table
    /// cache below) never copies the table data.
    tables: Arc<TableSet>,
    /// Table sets for program requests, keyed by granularity (programs
    /// may be compiled at granularities other than the engine's own;
    /// the engine's set seeds the cache). **Persistent across runs**:
    /// a granularity is built at most once per engine lifetime, however
    /// many batches it serves — `onesa_core::serve`'s shard workers
    /// keep one engine alive across all admission windows.
    plan_tables: TableCache,
    queue: Vec<Queued>,
    /// Full validation walks this engine performed (a `validate` call
    /// on a request). Observable so tests can pin that admission-time
    /// validation is not repeated per shard batch. Atomic (not `Cell`)
    /// so the engine stays `Sync` for read-only sharing.
    validations: AtomicU64,
}

impl Clone for BatchEngine {
    /// Cheap: tables are `Arc`-shared. The clone starts with a snapshot
    /// of the validation counter.
    fn clone(&self) -> Self {
        BatchEngine {
            engine: self.engine.clone(),
            tables: Arc::clone(&self.tables),
            plan_tables: self.plan_tables.clone(),
            queue: self.queue.clone(),
            validations: AtomicU64::new(self.validations()),
        }
    }
}

impl BatchEngine {
    /// Wraps an engine, building the CPWL table set every nonlinear
    /// request evaluates through at `granularity`.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures as
    /// [`TensorError::InvalidArgument`].
    pub fn new(engine: OneSa, granularity: f32) -> Result<Self> {
        let tables = Arc::new(
            TableSet::for_granularity(granularity)
                .map_err(|_| TensorError::InvalidArgument("invalid CPWL granularity"))?,
        );
        let mut plan_tables = TableCache::new();
        plan_tables.seed_shared(Arc::clone(&tables));
        Ok(BatchEngine {
            engine,
            tables,
            plan_tables,
            queue: Vec::new(),
            validations: AtomicU64::new(0),
        })
    }

    /// The engine's persistent per-granularity program table cache
    /// (seeded with the engine's own set; reused across every run).
    pub fn table_cache(&self) -> &TableCache {
        &self.plan_tables
    }

    /// Full validation walks this engine has performed, across
    /// [`BatchEngine::validate`], [`BatchEngine::submit_checked`] and
    /// [`BatchEngine::run`]. Requests enqueued through
    /// [`BatchEngine::submit_validated`] never add to this count.
    pub fn validations(&self) -> u64 {
        self.validations.load(Ordering::Relaxed)
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &OneSa {
        &self.engine
    }

    /// Number of requests waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The CPWL granularity the engine's table set was built at.
    pub fn granularity(&self) -> f32 {
        self.tables.granularity()
    }

    /// Enqueues a request, returning its id (its submission index).
    ///
    /// Validation is deferred to [`BatchEngine::run`]; use
    /// [`BatchEngine::submit_checked`] to reject malformed requests at
    /// the queue instead.
    pub fn submit(&mut self, request: Request) -> RequestId {
        self.queue.push(Queued {
            request,
            validated: false,
        });
        self.queue.len() - 1
    }

    /// Validates eagerly, then enqueues: a malformed request is turned
    /// away at the queue instead of poisoning the whole batch at
    /// [`BatchEngine::run`] time. The serving layer routes every
    /// admitted request through this.
    ///
    /// # Errors
    ///
    /// The same errors [`BatchEngine::validate`] reports; the queue is
    /// untouched on error.
    pub fn submit_checked(&mut self, request: Request) -> Result<RequestId> {
        self.validate(&request)?;
        self.queue.push(Queued {
            request,
            validated: true,
        });
        Ok(self.queue.len() - 1)
    }

    /// Enqueues a request the **caller** asserts was already validated
    /// against an engine with the same table granularity — the serving
    /// layer's shard workers use this to skip re-walking requests the
    /// admission thread already checked (for a whole-network program
    /// that walk is a full graph validation + shape inference per
    /// request). [`BatchEngine::run`] trusts the marker and skips its
    /// own pre-run validation for such requests; a false assertion can
    /// therefore surface as an execution error that fails the batch, so
    /// callers outside the serving layer should prefer
    /// [`BatchEngine::submit_checked`].
    pub fn submit_validated(&mut self, request: Request) -> RequestId {
        self.queue.push(Queued {
            request,
            validated: true,
        });
        self.queue.len() - 1
    }

    /// Validates and enqueues a compiled whole-network request.
    ///
    /// # Errors
    ///
    /// As for [`BatchEngine::submit_checked`].
    pub fn submit_program(&mut self, program: Program, inputs: Vec<Tensor>) -> Result<RequestId> {
        self.submit_checked(Request::program(program, inputs))
    }

    /// Drops every pending request, returning how many were discarded.
    /// The serving layer uses this to recover a shard after rejecting a
    /// malformed batch without replaying its queue.
    pub fn clear(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        n
    }

    /// Checks that a request can execute on this engine without touching
    /// the queue: GEMM operands must be matrices with matching inner
    /// dimensions, and a nonlinear request's function must be in the
    /// engine's table set.
    ///
    /// # Errors
    ///
    /// The same errors [`BatchEngine::run`] would report for the request.
    pub fn validate(&self, request: &Request) -> Result<()> {
        self.validations.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Gemm { a, b } => {
                let (_, ka) = a.shape().as_matrix()?;
                let (kb, _) = b.shape().as_matrix()?;
                if ka != kb {
                    return Err(TensorError::ShapeMismatch {
                        lhs: a.dims().to_vec(),
                        rhs: b.dims().to_vec(),
                        op: "BatchEngine::run",
                    });
                }
                Ok(())
            }
            Request::Nonlinear { func, .. } => match self.tables.table(*func) {
                Some(_) => Ok(()),
                None => Err(TensorError::InvalidArgument("function not in table set")),
            },
            Request::Program { program, inputs } => {
                program.validate()?;
                if inputs.len() != program.n_inputs() {
                    return Err(TensorError::InvalidArgument("program input count mismatch"));
                }
                for (t, expect) in inputs.iter().zip(program.input_shapes()) {
                    if t.dims() != expect.as_slice() {
                        return Err(TensorError::ShapeMismatch {
                            lhs: t.dims().to_vec(),
                            rhs: expect.clone(),
                            op: "BatchEngine::run program input",
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// Serves the whole queue: coalesces compatible requests, executes
    /// each batch through the parallel backend and drains the queue.
    ///
    /// # Errors
    ///
    /// Shape errors from malformed requests (non-matrix GEMM operands,
    /// mismatched inner dimensions). On error the queue is left intact —
    /// no request is lost; remove or fix the offending request and call
    /// `run` again.
    pub fn run(&mut self) -> Result<BatchRun> {
        // Validate every not-yet-validated request before draining the
        // queue, so one malformed request cannot discard the others.
        // Requests admitted through `submit_checked`/`submit_validated`
        // already passed this walk and skip it here.
        for entry in &self.queue {
            if !entry.validated {
                self.validate(&entry.request)?;
            }
        }
        // Same contract for program table sets: build them up front so
        // a granularity the table builder rejects (validation only
        // checks it is positive and finite) fails here, with the queue
        // still intact. The cache is persistent, so across runs each
        // granularity is built at most once.
        let granularities: Vec<f32> = self
            .queue
            .iter()
            .filter_map(|entry| match &entry.request {
                Request::Program { program, .. } => program.mode().granularity(),
                _ => None,
            })
            .collect();
        for g in granularities {
            self.plan_tables.get(g)?;
        }
        let queue: Vec<Request> = std::mem::take(&mut self.queue)
            .into_iter()
            .map(|entry| entry.request)
            .collect();
        let start = Instant::now();
        let cfg = self.engine.config().clone();

        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; queue.len()];
        let mut batched = ExecStats::new(&cfg, Default::default(), 0, 0);

        // ---- coalesce GEMMs by right-hand matrix, nonlinears by function ----
        let mut gemm_groups: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut nl_groups: Vec<(NonlinearFn, Vec<usize>)> = Vec::new();
        let mut program_ids: Vec<usize> = Vec::new();
        for (id, req) in queue.iter().enumerate() {
            match req {
                Request::Gemm { b, .. } => {
                    let key = plan::tensor_fingerprint(b);
                    match gemm_groups
                        .iter_mut()
                        .find(|(k, ids)| *k == key && same_weights(b, group_b(&queue, ids)))
                    {
                        Some((_, ids)) => ids.push(id),
                        None => gemm_groups.push((key, vec![id])),
                    }
                }
                Request::Nonlinear { func, .. } => {
                    match nl_groups.iter_mut().find(|(f, _)| f == func) {
                        Some((_, ids)) => ids.push(id),
                        None => nl_groups.push((*func, vec![id])),
                    }
                }
                Request::Program { .. } => program_ids.push(id),
            }
        }

        // ---- execute GEMM groups: stack A rows, one matmul per group ----
        for (_, ids) in &gemm_groups {
            let b = group_b(&queue, ids);
            let (k, n) = b.shape().as_matrix()?;
            let mut stacked = Vec::new();
            let mut row_counts = Vec::with_capacity(ids.len());
            for &id in ids {
                let Request::Gemm { a, .. } = &queue[id] else {
                    unreachable!("gemm group holds gemm ids")
                };
                stacked.extend_from_slice(a.as_slice());
                row_counts.push(a.dims()[0]);
            }
            let total_m: usize = row_counts.iter().sum();
            let tall = Tensor::from_vec(stacked, &[total_m, k])?;
            let product = parallel::matmul(&tall, b, self.engine.parallelism())?;
            batched = batched.merged(&analytic::gemm_stats(&cfg, total_m, k, n));
            let mut row0 = 0;
            for (&id, &m) in ids.iter().zip(&row_counts) {
                let rows = product.as_slice()[row0 * n..(row0 + m) * n].to_vec();
                row0 += m;
                outcomes[id] = Some(RequestOutcome {
                    id,
                    output: Tensor::from_vec(rows, &[m, n])?,
                    stats: analytic::gemm_stats(&cfg, m, k, n),
                    op_stats: Vec::new(),
                    session_outputs: Vec::new(),
                });
            }
        }

        // ---- execute nonlinear groups: concatenate, one MHP pass each ----
        for (func, ids) in &nl_groups {
            let table = self
                .tables
                .table(*func)
                .ok_or(TensorError::InvalidArgument("function not in table set"))?;
            let mut flat = Vec::new();
            for &id in ids {
                let Request::Nonlinear { x, .. } = &queue[id] else {
                    unreachable!("nonlinear group holds nonlinear ids")
                };
                flat.extend_from_slice(x.as_slice());
            }
            let total = flat.len();
            let joined = Tensor::from_vec(flat, &[1, total])?;
            // The paper's three steps, with the MHP routed through the
            // parallel backend (bit-identical to `PwlTable::eval_tensor`,
            // which is IPF + the sequential reference MHP).
            let ipf = table.ipf(&joined);
            let evaluated = parallel::mhp(&joined, &ipf.k, &ipf.b, self.engine.parallelism())?;
            batched = batched.merged(&analytic::nonlinear_stats(&cfg, 1, total));
            let mut off = 0;
            for &id in ids {
                let Request::Nonlinear { x, .. } = &queue[id] else {
                    unreachable!("nonlinear group holds nonlinear ids")
                };
                let vals = evaluated.as_slice()[off..off + x.len()].to_vec();
                off += x.len();
                let (m, n) = matrix_or_row(x);
                outcomes[id] = Some(RequestOutcome {
                    id,
                    output: Tensor::from_vec(vals, x.dims())?,
                    stats: analytic::nonlinear_stats(&cfg, m, n),
                    op_stats: Vec::new(),
                    session_outputs: Vec::new(),
                });
            }
        }

        // ---- execute program requests stage by stage, coalescing across
        // concurrent programs at every stage ----
        let mut program_stages: Vec<StageGroups> = Vec::new();
        let mut program_group_counts = (0usize, 0usize);
        let mut opt = OptTotals::default();
        let mut blocks = (0u64, 0u64);
        if !program_ids.is_empty() {
            for &id in &program_ids {
                let Request::Program { program, .. } = &queue[id] else {
                    unreachable!("program id list holds program requests")
                };
                if let Some(report) = program.opt_report() {
                    opt.merge(&report.totals);
                }
                let (skipped, total) = program.sparse_blocks();
                blocks.0 += skipped;
                blocks.1 += total;
            }
            let jobs: Vec<(&Program, &[Tensor])> = program_ids
                .iter()
                .map(|&id| {
                    let Request::Program { program, inputs } = &queue[id] else {
                        unreachable!("program id list holds program requests")
                    };
                    (program.as_ref(), inputs.as_slice())
                })
                .collect();
            let staged = plan::run_staged(
                &jobs,
                &cfg,
                self.engine.parallelism(),
                &mut self.plan_tables,
            )?;
            batched = batched.merged(&staged.batched);
            program_group_counts = (staged.gemm_groups, staged.nonlinear_groups);
            program_stages = staged.stages;
            for (&id, run) in program_ids.iter().zip(staged.runs) {
                let solo = run
                    .op_stats
                    .iter()
                    .fold(ExecStats::new(&cfg, Default::default(), 0, 0), |acc, s| {
                        acc.merged(s)
                    });
                outcomes[id] = Some(RequestOutcome {
                    id,
                    output: run.output,
                    stats: solo,
                    op_stats: run.op_stats,
                    session_outputs: run.session_outputs,
                });
            }
        }

        let wall_seconds = start.elapsed().as_secs_f64();
        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every queued request was served"))
            .collect();
        let unbatched = outcomes
            .iter()
            .fold(ExecStats::new(&cfg, Default::default(), 0, 0), |acc, o| {
                acc.merged(&o.stats)
            });
        let report = ServingReport {
            requests: outcomes.len(),
            wall_seconds,
            batched_seconds: batched.seconds(),
            unbatched_seconds: unbatched.seconds(),
            total_macs: unbatched.macs,
            total_nonlinear_evals: unbatched.nonlinear_evals,
            gemm_groups: gemm_groups.len() + program_group_counts.0,
            nonlinear_groups: nl_groups.len() + program_group_counts.1,
            latencies: outcomes.iter().map(|o| o.stats.seconds()).collect(),
            opt,
            blocks_skipped: blocks.0,
            blocks_total: blocks.1,
        };
        Ok(BatchRun {
            outcomes,
            report,
            program_stages,
        })
    }
}

/// The right-hand matrix of the first request in a GEMM group.
fn group_b<'q>(queue: &'q [Request], ids: &[usize]) -> &'q Tensor {
    let Request::Gemm { b, .. } = &queue[ids[0]] else {
        unreachable!("gemm group holds gemm ids")
    };
    b
}

fn same_weights(x: &Tensor, y: &Tensor) -> bool {
    x.dims() == y.dims()
        && x.as_slice()
            .iter()
            .zip(y.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits())
}

fn matrix_or_row(x: &Tensor) -> (usize, usize) {
    match x.shape().as_matrix() {
        Ok((m, n)) => (m, n),
        Err(_) => (1, x.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_sim::ArrayConfig;
    use onesa_tensor::gemm;
    use onesa_tensor::parallel::Parallelism;
    use onesa_tensor::rng::Pcg32;

    fn engine() -> OneSa {
        OneSa::with_parallelism(ArrayConfig::new(8, 16), Parallelism::Threads(2))
    }

    #[test]
    fn coalesced_gemms_match_solo_runs() {
        let mut rng = Pcg32::seed_from_u64(1);
        let w = rng.randn(&[12, 10], 1.0);
        let other = rng.randn(&[12, 10], 1.0);
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        let inputs: Vec<Tensor> = (0..4).map(|_| rng.randn(&[5, 12], 1.0)).collect();
        for a in &inputs {
            serving.submit(Request::gemm(a.clone(), w.clone()));
        }
        serving.submit(Request::gemm(inputs[0].clone(), other.clone()));
        assert_eq!(serving.pending(), 5);
        let run = serving.run().unwrap();
        assert_eq!(serving.pending(), 0);
        for (i, a) in inputs.iter().enumerate() {
            assert_eq!(run.outcomes[i].output, gemm::matmul(a, &w).unwrap());
        }
        assert_eq!(
            run.outcomes[4].output,
            gemm::matmul(&inputs[0], &other).unwrap()
        );
        // Four requests shared one weight load: the batched schedule must
        // beat five solo schedules.
        assert!(run.report.batching_speedup() > 1.0);
    }

    #[test]
    fn coalesced_nonlinears_match_solo_runs() {
        let mut rng = Pcg32::seed_from_u64(2);
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        let xs: Vec<Tensor> = (0..3).map(|i| rng.randn(&[2 + i, 7], 1.5)).collect();
        for x in &xs {
            serving.submit(Request::nonlinear(NonlinearFn::Gelu, x.clone()));
        }
        let tables = TableSet::for_granularity(0.25).unwrap();
        let run = serving.run().unwrap();
        for (o, x) in run.outcomes.iter().zip(&xs) {
            assert_eq!(o.output, tables.gelu(x).unwrap());
            assert_eq!(o.output.dims(), x.dims());
        }
        assert_eq!(
            run.report.total_nonlinear_evals,
            xs.iter().map(|x| x.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn report_percentiles_and_throughput() {
        let mut rng = Pcg32::seed_from_u64(3);
        let w = rng.randn(&[16, 16], 1.0);
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        for m in [2usize, 4, 8, 64] {
            serving.submit(Request::gemm(rng.randn(&[m, 16], 1.0), w.clone()));
        }
        let run = serving.run().unwrap();
        let r = &run.report;
        assert_eq!(r.requests, 4);
        assert!(r.wall_seconds > 0.0);
        assert!(r.wall_rps() > 0.0);
        let p50 = r.latency_percentile(50.0);
        let p99 = r.latency_percentile(99.0);
        assert!(p50 > 0.0 && p99 >= p50);
        // The 64-row request dominates the tail.
        assert!((p99 - r.latencies[3]).abs() < 1e-12);
        assert!(!format!("{r}").is_empty());
    }

    #[test]
    fn empty_queue_report_is_sane() {
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        let run = serving.run().unwrap();
        let r = &run.report;
        assert!(run.outcomes.is_empty());
        assert_eq!(r.requests, 0);
        assert_eq!((r.gemm_groups, r.nonlinear_groups), (0, 0));
        // Every derived metric must stay finite on the empty report — no
        // NaN, no divide-by-zero.
        assert_eq!(r.batching_speedup(), 1.0);
        assert_eq!(r.batched_gops(), 0.0);
        assert_eq!(r.latency_percentile(50.0), 0.0);
        assert_eq!(r.latency_percentile(99.0), 0.0);
        assert!(r.wall_rps().is_finite());
        assert!(!format!("{r}").contains("NaN"));
    }

    #[test]
    fn single_request_batch_has_unit_speedup() {
        let mut rng = Pcg32::seed_from_u64(11);
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        let a = rng.randn(&[5, 12], 1.0);
        let w = rng.randn(&[12, 7], 1.0);
        serving.submit(Request::gemm(a.clone(), w.clone()));
        let run = serving.run().unwrap();
        let r = &run.report;
        // A batch of one coalesces with nothing: the batched schedule IS
        // the solo schedule.
        assert_eq!(r.requests, 1);
        assert_eq!(r.gemm_groups, 1);
        assert!((r.batching_speedup() - 1.0).abs() < 1e-12);
        assert_eq!(r.latencies.len(), 1);
        assert!((r.latency_percentile(50.0) - r.latencies[0]).abs() < 1e-18);
        assert_eq!(run.outcomes[0].output, gemm::matmul(&a, &w).unwrap());
    }

    #[test]
    fn fully_uncoalescable_gemm_queue_has_unit_speedup() {
        let mut rng = Pcg32::seed_from_u64(12);
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        // Three GEMMs with three distinct weight matrices: no two
        // requests coalesce, so each "group" is one solo schedule and
        // batched == unbatched exactly.
        for _ in 0..3 {
            serving.submit(Request::gemm(
                rng.randn(&[4, 8], 1.0),
                rng.randn(&[8, 6], 1.0),
            ));
        }
        let run = serving.run().unwrap();
        let r = &run.report;
        assert_eq!(r.requests, 3);
        assert_eq!((r.gemm_groups, r.nonlinear_groups), (3, 0));
        assert!((r.batching_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_uncoalescable_mixed_queue_report_is_sane() {
        let mut rng = Pcg32::seed_from_u64(12);
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        // Distinct weights and distinct functions: nothing coalesces.
        // (A singleton nonlinear "group" still runs as its concatenated
        // [1, len] row pass, whose skew/drain differ slightly from the
        // request's own [m, n] shape — so speedup is near, not exactly,
        // 1.0 here; the GEMM-only test above pins the exact case.)
        for _ in 0..3 {
            serving.submit(Request::gemm(
                rng.randn(&[4, 8], 1.0),
                rng.randn(&[8, 6], 1.0),
            ));
        }
        serving.submit(Request::nonlinear(
            NonlinearFn::Gelu,
            rng.randn(&[3, 5], 1.0),
        ));
        serving.submit(Request::nonlinear(
            NonlinearFn::Tanh,
            rng.randn(&[2, 5], 1.0),
        ));
        let run = serving.run().unwrap();
        let r = &run.report;
        assert_eq!(r.requests, 5);
        assert_eq!((r.gemm_groups, r.nonlinear_groups), (3, 2));
        let speedup = r.batching_speedup();
        assert!(speedup.is_finite() && speedup > 0.5 && speedup < 2.0);
        let p50 = r.latency_percentile(50.0);
        let p95 = r.latency_percentile(95.0);
        assert!(p50.is_finite() && p95.is_finite() && p95 >= p50 && p50 > 0.0);
        assert!(r.wall_rps().is_finite() && r.batched_gops().is_finite());
        assert!(!format!("{r}").contains("NaN"));
    }

    #[test]
    fn modeled_macs_and_affinity_keys() {
        let mut rng = Pcg32::seed_from_u64(13);
        let w = rng.randn(&[8, 6], 1.0);
        let g = Request::gemm(rng.randn(&[4, 8], 1.0), w.clone());
        assert_eq!(g.modeled_macs(), 4 * 8 * 6);
        let nl = Request::nonlinear(NonlinearFn::Gelu, rng.randn(&[3, 5], 1.0));
        assert_eq!(nl.modeled_macs(), 15);
        // Shared weights agree on the affinity key; same function too.
        let g2 = Request::gemm(rng.randn(&[9, 8], 1.0), w.clone());
        assert_eq!(g.affinity_key(), g2.affinity_key());
        let nl2 = Request::nonlinear(NonlinearFn::Gelu, rng.randn(&[1, 2], 1.0));
        assert_eq!(nl.affinity_key(), nl2.affinity_key());
        assert_ne!(
            Request::nonlinear(NonlinearFn::Tanh, rng.randn(&[1, 2], 1.0)).affinity_key(),
            nl.affinity_key()
        );
    }

    #[test]
    fn validate_and_clear() {
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        assert_eq!(serving.granularity(), 0.25);
        let good = Request::gemm(Tensor::zeros(&[2, 3]), Tensor::zeros(&[3, 5]));
        let bad = Request::gemm(Tensor::zeros(&[2, 3]), Tensor::zeros(&[4, 5]));
        assert!(serving.validate(&good).is_ok());
        assert!(serving.validate(&bad).is_err());
        serving.submit(good);
        serving.submit(bad);
        assert_eq!(serving.clear(), 2);
        assert_eq!(serving.pending(), 0);
        // After clearing, the engine serves an empty run cleanly.
        assert_eq!(serving.run().unwrap().report.requests, 0);
    }

    fn mlp_program(w1: &Tensor, w2: &Tensor) -> Program {
        use onesa_plan::{EvalMode, Op};
        let mut b = Program::builder(
            "mlp",
            EvalMode::Cpwl {
                granularity: 0.25,
                quantize: false,
            },
        );
        let x = b.input(&[2, 6]);
        let (w1, w2) = (b.constant(w1.clone()), b.constant(w2.clone()));
        let h = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, w1],
        );
        let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[h]);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[g, w2],
        );
        b.finish().unwrap()
    }

    #[test]
    fn concurrent_programs_coalesce_at_every_stage() {
        let mut rng = Pcg32::seed_from_u64(21);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        let program = mlp_program(&w1, &w2);
        let xs: Vec<Tensor> = (0..3).map(|_| rng.randn(&[2, 6], 1.0)).collect();

        // Solo references through the plan executor.
        let solos: Vec<Tensor> = xs
            .iter()
            .map(|x| {
                program
                    .run(
                        std::slice::from_ref(x),
                        Parallelism::Sequential,
                        &mut onesa_plan::TableCache::new(),
                    )
                    .unwrap()
                    .output
            })
            .collect();

        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        for x in &xs {
            serving
                .submit_program(program.clone(), vec![x.clone()])
                .unwrap();
        }
        // Mixed queue: a plain GEMM rides along untouched.
        let a = rng.randn(&[2, 6], 1.0);
        serving.submit(Request::gemm(a.clone(), w1.clone()));
        let run = serving.run().unwrap();
        for (i, solo) in solos.iter().enumerate() {
            assert_eq!(&run.outcomes[i].output, solo);
            assert_eq!(run.outcomes[i].op_stats.len(), 3);
        }
        assert_eq!(run.outcomes[3].output, gemm::matmul(&a, &w1).unwrap());
        // Every program stage collapsed 3 ops into 1 kernel group.
        assert_eq!(run.program_stages.len(), 3);
        for s in &run.program_stages {
            assert_eq!((s.ops, s.groups), (3, 1), "stage {}", s.stage);
        }
        // Report: 2 program GEMM groups + 1 plain group, 1 program NL group.
        assert_eq!(run.report.gemm_groups, 3);
        assert_eq!(run.report.nonlinear_groups, 1);
        assert!(run.report.batching_speedup() > 1.0);
    }

    #[test]
    fn submit_checked_rejects_malformed_requests_at_the_queue() {
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        let bad = Request::gemm(Tensor::zeros(&[2, 3]), Tensor::zeros(&[4, 5]));
        assert!(serving.submit_checked(bad).is_err());
        assert_eq!(serving.pending(), 0);
        let good = Request::gemm(Tensor::zeros(&[2, 3]), Tensor::zeros(&[3, 5]));
        assert_eq!(serving.submit_checked(good).unwrap(), 0);
        assert_eq!(serving.pending(), 1);

        // Program with wrong input shape is rejected eagerly too.
        let mut rng = Pcg32::seed_from_u64(22);
        let program = mlp_program(&rng.randn(&[6, 4], 1.0), &rng.randn(&[4, 3], 1.0));
        let wrong = vec![rng.randn(&[5, 6], 1.0)];
        assert!(serving.submit_program(program.clone(), wrong).is_err());
        assert!(serving
            .submit_program(program, vec![rng.randn(&[2, 6], 1.0)])
            .is_ok());
        assert_eq!(serving.pending(), 2);
        let run = serving.run().unwrap();
        assert_eq!(run.report.requests, 2);
    }

    #[test]
    fn program_request_accounting() {
        let mut rng = Pcg32::seed_from_u64(23);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        let program = mlp_program(&w1, &w2);
        let req = Request::program(program.clone(), vec![rng.randn(&[2, 6], 1.0)]);
        assert_eq!(req.modeled_macs(), program.modeled_macs());
        assert!(req.modeled_macs() > 0);
        let req2 = Request::program(program.clone(), vec![rng.randn(&[2, 6], 1.0)]);
        assert_eq!(req.affinity_key(), req2.affinity_key());
        let other = mlp_program(&rng.randn(&[6, 4], 1.0), &w2);
        assert_ne!(
            req.affinity_key(),
            Request::program(other, vec![Tensor::zeros(&[2, 6])]).affinity_key()
        );
    }

    #[test]
    fn submit_validated_skips_the_redundant_validation_walk() {
        let mut rng = Pcg32::seed_from_u64(41);
        let program = mlp_program(&rng.randn(&[6, 4], 1.0), &rng.randn(&[4, 3], 1.0));
        let x = rng.randn(&[2, 6], 1.0);

        // submit_checked validates once; run() must not re-walk it.
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        serving
            .submit_program(program.clone(), vec![x.clone()])
            .unwrap();
        assert_eq!(serving.validations(), 1);
        let _ = serving.run().unwrap();
        assert_eq!(
            serving.validations(),
            1,
            "run() re-validated a checked request"
        );

        // submit_validated (the serving layer's shard path) never walks.
        let mut trusted = BatchEngine::new(engine(), 0.25).unwrap();
        trusted.submit_validated(Request::program(program.clone(), vec![x.clone()]));
        let run = trusted.run().unwrap();
        assert_eq!(trusted.validations(), 0);
        assert_eq!(run.report.requests, 1);

        // Plain submit still validates inside run().
        let mut lazy = BatchEngine::new(engine(), 0.25).unwrap();
        lazy.submit(Request::program(program, vec![x]));
        let _ = lazy.run().unwrap();
        assert_eq!(lazy.validations(), 1);
    }

    #[test]
    fn program_table_sets_are_built_once_across_runs() {
        let mut rng = Pcg32::seed_from_u64(42);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        // Programs at a granularity (0.5) the engine (0.25) did not
        // pre-build: the first run builds the set, later runs reuse it.
        let program = {
            use onesa_plan::{EvalMode, Op};
            let mut b = Program::builder(
                "mlp-0.5",
                EvalMode::Cpwl {
                    granularity: 0.5,
                    quantize: false,
                },
            );
            let x = b.input(&[2, 6]);
            let (c1, c2) = (b.constant(w1), b.constant(w2));
            let h = b.push(
                Op::Gemm {
                    bias: None,
                    sparsity: None,
                },
                &[x, c1],
            );
            let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[h]);
            b.push(
                Op::Gemm {
                    bias: None,
                    sparsity: None,
                },
                &[g, c2],
            );
            b.finish().unwrap()
        };
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        assert_eq!(serving.table_cache().builds(), 0); // engine set was seeded
        for _ in 0..3 {
            serving
                .submit_program(program.clone(), vec![rng.randn(&[2, 6], 1.0)])
                .unwrap();
            let _ = serving.run().unwrap();
        }
        assert_eq!(
            serving.table_cache().builds(),
            1,
            "per-granularity tables must persist across runs"
        );
        assert_eq!(serving.table_cache().len(), 2); // 0.25 seeded + 0.5 built
    }

    #[test]
    fn optimizer_totals_roll_into_the_serving_report() {
        use onesa_plan::{EvalMode, Op, OptLevel, Precision};
        let mut rng = Pcg32::seed_from_u64(43);
        let w = rng.randn(&[4, 3], 1.0);
        // A conservatively-emitted program: duplicate Quantize + a
        // duplicate const-operand GEMM for the optimizer to clean up.
        let mut b = Program::builder(
            "dup",
            EvalMode::Cpwl {
                granularity: 0.25,
                quantize: true,
            },
        );
        let x = b.input(&[2, 4]);
        let q1 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        let q2 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        let c = b.constant(w);
        let g1 = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[q1, c],
        );
        let g2 = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[q2, c],
        );
        b.push(Op::Add, &[g1, g2]);
        let raw = b.finish().unwrap();
        let optimized = raw.optimize(OptLevel::Standard).unwrap();

        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        for _ in 0..2 {
            serving
                .submit_program(optimized.clone(), vec![rng.randn(&[2, 4], 1.0)])
                .unwrap();
        }
        let run = serving.run().unwrap();
        // Two requests of a program with 1 elision + 1 CSE share each.
        assert_eq!(run.report.opt.elided, 2);
        assert_eq!(run.report.opt.shared, 2);
        assert!(format!("{}", run.report).contains("optimizer:"));

        // Unoptimized programs report zero totals (and no report line).
        let mut plain = BatchEngine::new(engine(), 0.25).unwrap();
        plain
            .submit_program(raw, vec![rng.randn(&[2, 4], 1.0)])
            .unwrap();
        let run = plain.run().unwrap();
        assert_eq!(run.report.opt.removed(), 0);
        assert!(!format!("{}", run.report).contains("optimizer:"));
    }

    #[test]
    fn mismatched_gemm_is_rejected_and_queue_preserved() {
        let mut serving = BatchEngine::new(engine(), 0.25).unwrap();
        serving.submit(Request::gemm(
            Tensor::zeros(&[2, 3]),
            Tensor::zeros(&[3, 5]),
        ));
        serving.submit(Request::gemm(
            Tensor::zeros(&[2, 3]),
            Tensor::zeros(&[4, 5]),
        ));
        assert!(serving.run().is_err());
        // The valid request was not lost with the bad one.
        assert_eq!(serving.pending(), 2);
    }
}
