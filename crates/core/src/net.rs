//! Cross-host serving transport: shard workers as **separate
//! processes**, programs as the wire unit.
//!
//! [`crate::serve::ServeEngine`] normally runs its shards as threads.
//! This module provides the process-boundary variant: each shard is an
//! `onesa-shard-worker` binary spawned by the host, connected over a
//! Unix-domain socket or loopback TCP ([`Transport`]), speaking a
//! framed protocol whose payloads are encoded with
//! [`onesa_plan::wire`]. The worker builds the *same*
//! [`BatchEngine`] the in-process shard would, and the wire format
//! preserves every `f32` bit, so a process-backed pool is bit-identical
//! to the in-process one — the cross-host integration suite asserts
//! this for every admission × routing policy.
//!
//! # Protocol
//!
//! Every message is one `onesa-plan` wire frame, length-prefixed on the
//! stream (`u32` LE). Handshake, then windows:
//!
//! ```text
//! worker → host   Hello      { wire format version }
//! host → worker   Configure  { granularity, ArrayConfig, Parallelism }
//! worker → host   Ready      {}
//! host → worker   Window     { n × (ticket, request) }
//! worker → host   Outcomes   { n × (ticket, output, stats, op_stats), report }
//!              or WindowError{ message }          (batch failed; engine cleared)
//! host → worker   Ping       {}        worker → host  Pong {}
//! host → worker   Shutdown   {}        (worker exits 0)
//! ```
//!
//! # The weight-cache protocol
//!
//! Program consts (the weights) dominate request bytes. The host keeps,
//! per worker, the set of program fingerprints it has already shipped:
//! the first request for a program sends the **full** frame (consts
//! included) and later requests send a *const-free delta* — just the
//! fingerprint plus the input tensors. The worker caches decoded
//! programs by fingerprint (consts `Arc`-shared, so the cache holds one
//! copy of each weight set). [`WeightCacheStats`] counts both kinds of
//! send and the const bytes the refs avoided; the serve layer surfaces
//! them per shard.
//!
//! # Worker death
//!
//! A killed worker closes its socket: the host's next write or read
//! fails (EOF / `EPIPE`), or a [`WorkerHandle::ping`] times out. The
//! serve layer's process backend reacts by requeuing the in-flight
//! window on a surviving shard — see `crate::serve`'s failover notes.

use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use onesa_plan::wire::{self, FrameBuilder, FrameView, WireError, WireReader, WireWriter};
use onesa_plan::OptTotals;
use onesa_sim::{ArrayConfig, ExecStats};
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::Tensor;

use crate::batch::{BatchEngine, Request};
use crate::engine::OneSa;

// ---------------------------------------------------------------------
// configuration
// ---------------------------------------------------------------------

/// Which socket family connects host and worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Unix-domain socket (default: lowest overhead on one machine).
    #[default]
    Unix,
    /// Loopback TCP (the cross-host wire; also what a real multi-host
    /// deployment would use, pointed at a remote address).
    Tcp,
}

impl Transport {
    /// Human-readable name (`"unix"` / `"tcp"`), used in bench output.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Unix => "unix",
            Transport::Tcp => "tcp",
        }
    }
}

/// Configuration of the multi-process shard backend
/// (`crate::serve::ShardBackend::Process`).
#[derive(Debug, Clone, Default)]
pub struct ProcessConfig {
    /// Socket family between host and workers.
    pub transport: Transport,
    /// Path of the `onesa-shard-worker` binary. `None` resolves via
    /// [`default_worker_path`] (the `ONESA_SHARD_WORKER` environment
    /// variable, then siblings of the current executable).
    pub worker: Option<PathBuf>,
}

impl ProcessConfig {
    /// Process backend over the given transport, worker resolved by
    /// [`default_worker_path`].
    pub fn new(transport: Transport) -> Self {
        ProcessConfig {
            transport,
            worker: None,
        }
    }
}

/// Locates the `onesa-shard-worker` binary: the `ONESA_SHARD_WORKER`
/// environment variable if set, otherwise a sibling of the current
/// executable (walking up to three directories, which covers
/// `target/<profile>/examples/` and `target/<profile>/deps/`).
pub fn default_worker_path() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("ONESA_SHARD_WORKER") {
        return Some(PathBuf::from(p));
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    for _ in 0..3 {
        let cand = dir.join(format!(
            "onesa-shard-worker{}",
            std::env::consts::EXE_SUFFIX
        ));
        if cand.is_file() {
            return Some(cand);
        }
        dir = dir.parent()?;
    }
    None
}

/// Weight-cache accounting for one worker connection: how often program
/// consts actually crossed the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightCacheStats {
    /// Program requests that shipped the full frame (first sighting of
    /// a fingerprint on this worker).
    pub full_sends: usize,
    /// Program requests that sent only the fingerprint + inputs.
    pub ref_sends: usize,
    /// Const payload bytes the ref sends avoided (4 bytes per weight
    /// element, per avoided resend).
    pub const_bytes_saved: u64,
}

impl WeightCacheStats {
    /// Fraction of program sends served from the worker's cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.full_sends + self.ref_sends;
        if total == 0 {
            0.0
        } else {
            self.ref_sends as f64 / total as f64
        }
    }

    /// Accumulates another connection's counters.
    pub fn merge(&mut self, other: &WeightCacheStats) {
        self.full_sends += other.full_sends;
        self.ref_sends += other.ref_sends;
        self.const_bytes_saved += other.const_bytes_saved;
    }
}

// ---------------------------------------------------------------------
// framing over a stream
// ---------------------------------------------------------------------

/// Message kinds (the `onesa-plan` wire layer reserves kinds below
/// `0x0100` for standalone values).
const KIND_HELLO: u16 = 0x0100;
const KIND_CONFIGURE: u16 = 0x0101;
const KIND_READY: u16 = 0x0102;
const KIND_WINDOW: u16 = 0x0103;
const KIND_OUTCOMES: u16 = 0x0104;
const KIND_PING: u16 = 0x0105;
const KIND_PONG: u16 = 0x0106;
const KIND_SHUTDOWN: u16 = 0x0107;
const KIND_WINDOW_ERROR: u16 = 0x0108;

/// Section id used for a message's single body section.
const SEC_BODY: u32 = 1;

/// Refuse frames above this size — a corrupt length prefix must not
/// drive a giant allocation. 1 GiB comfortably holds any real window.
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Either socket family, as one readable/writable stream.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn wire_to_io(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn write_frame(stream: &mut Stream, bytes: &[u8]) -> io::Result<()> {
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds size cap",
        ));
    }
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()
}

fn read_frame(stream: &mut Stream) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length prefix exceeds size cap",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

/// Builds a single-body-section message frame.
fn message(kind: u16, body: WireWriter) -> Vec<u8> {
    let mut f = FrameBuilder::new(kind);
    f.section(SEC_BODY, body.into_bytes());
    f.encode()
}

fn empty_message(kind: u16) -> Vec<u8> {
    message(kind, WireWriter::new())
}

// ---------------------------------------------------------------------
// request / outcome codecs (built on onesa-plan's wire primitives)
// ---------------------------------------------------------------------

const REQ_GEMM: u8 = 0;
const REQ_NONLINEAR: u8 = 1;
const REQ_PROGRAM_FULL: u8 = 2;
const REQ_PROGRAM_REF: u8 = 3;

/// Writes one request. Program requests consult (and update) the
/// per-worker shipped-fingerprint set: known programs go out as
/// const-free deltas.
fn put_request(
    w: &mut WireWriter,
    req: &Request,
    shipped: &mut HashSet<u64>,
    stats: &mut WeightCacheStats,
) {
    match req {
        Request::Gemm { a, b } => {
            w.put_u8(REQ_GEMM);
            wire::put_tensor(w, a);
            wire::put_tensor(w, b);
        }
        Request::Nonlinear { func, x } => {
            w.put_u8(REQ_NONLINEAR);
            wire::put_nonlinear(w, *func);
            wire::put_tensor(w, x);
        }
        Request::Program { program, inputs } => {
            let fp = program.fingerprint();
            if shipped.contains(&fp) {
                w.put_u8(REQ_PROGRAM_REF);
                w.put_u64(fp);
                stats.ref_sends += 1;
                stats.const_bytes_saved += program
                    .consts()
                    .iter()
                    .map(|c| c.as_slice().len() as u64 * 4)
                    .sum::<u64>();
            } else {
                w.put_u8(REQ_PROGRAM_FULL);
                let frame = wire::encode_program(program);
                w.put_usize(frame.len());
                w.put_bytes(&frame);
                shipped.insert(fp);
                stats.full_sends += 1;
            }
            w.put_usize(inputs.len());
            for t in inputs {
                wire::put_tensor(w, t);
            }
        }
    }
}

/// Reads one request on the worker, resolving program refs against (and
/// inserting full programs into) the worker's fingerprint cache.
fn get_request(
    r: &mut WireReader<'_>,
    cache: &mut HashMap<u64, onesa_plan::Program>,
) -> Result<Request, WireError> {
    match r.get_u8()? {
        REQ_GEMM => {
            let a = wire::get_tensor(r)?;
            let b = wire::get_tensor(r)?;
            Ok(Request::Gemm { a, b })
        }
        REQ_NONLINEAR => {
            let func = wire::get_nonlinear(r)?;
            let x = wire::get_tensor(r)?;
            Ok(Request::Nonlinear { func, x })
        }
        tag @ (REQ_PROGRAM_FULL | REQ_PROGRAM_REF) => {
            let program = if tag == REQ_PROGRAM_FULL {
                let len = r.get_usize()?;
                let frame = r.get_bytes(len)?;
                let program = wire::decode_program(frame)?;
                cache.insert(program.fingerprint(), program.clone());
                program
            } else {
                let fp = r.get_u64()?;
                cache
                    .get(&fp)
                    .cloned()
                    .ok_or(WireError::Corrupt("program ref to unshipped fingerprint"))?
            };
            let n = r.get_usize()?;
            if n > 4096 {
                return Err(WireError::Corrupt("input count exceeds cap"));
            }
            let mut inputs = Vec::with_capacity(n);
            for _ in 0..n {
                inputs.push(wire::get_tensor(r)?);
            }
            Ok(Request::Program {
                program: Box::new(program),
                inputs,
            })
        }
        _ => Err(WireError::Corrupt("unknown request tag")),
    }
}

/// One per-request result coming back from a worker.
#[derive(Debug)]
pub struct RemoteOutcome {
    /// The ticket the host attached to the request.
    pub ticket: u64,
    /// Output tensor, bit-identical to in-process execution.
    pub output: Tensor,
    /// Simulated solo stats for the request's own shape.
    pub stats: ExecStats,
    /// Per-op stats for program requests (empty otherwise).
    pub op_stats: Vec<ExecStats>,
    /// Session-state tensors of a session-bearing program request (the
    /// grown per-layer KV caches), bit-identical across the wire. The
    /// host's serve layer writes them back into its session table —
    /// workers stay stateless, which is what makes failover re-execution
    /// exact.
    pub session_outputs: Vec<Tensor>,
}

/// Everything one `Window → Outcomes` exchange produced.
#[derive(Debug)]
pub struct WindowResult {
    /// Per-request outcomes, in the order the window sent them.
    pub outcomes: Vec<RemoteOutcome>,
    /// Coalesced GEMM kernel calls of the worker's batch.
    pub gemm_groups: usize,
    /// Coalesced IPF + MHP passes of the worker's batch.
    pub nonlinear_groups: usize,
    /// Multiply-accumulates the batch performed.
    pub total_macs: u64,
    /// Simulated array seconds of the batched schedule.
    pub batched_seconds: f64,
    /// Optimizer totals of the batch's program requests.
    pub opt: OptTotals,
    /// Weight column blocks the worker's sparse GEMM kernel skipped
    /// (see `ServingReport::blocks_skipped`).
    pub blocks_skipped: u64,
    /// Total column blocks of the batch's sparsity-attributed GEMMs.
    pub blocks_total: u64,
}

/// A window's outcome: executed, or failed as a unit (the worker's
/// engine recovered and stays serviceable).
#[derive(Debug)]
pub enum WindowReply {
    /// The batch executed; per-request outcomes inside.
    Done(WindowResult),
    /// The worker's `BatchEngine::run` rejected the batch.
    Failed(String),
}

fn put_window_result(w: &mut WireWriter, outcomes: &[RemoteOutcome], result: &WindowResult) {
    w.put_usize(outcomes.len());
    for o in outcomes {
        w.put_u64(o.ticket);
        wire::put_tensor(w, &o.output);
        wire::put_exec_stats(w, &o.stats);
        w.put_usize(o.op_stats.len());
        for s in &o.op_stats {
            wire::put_exec_stats(w, s);
        }
        w.put_usize(o.session_outputs.len());
        for t in &o.session_outputs {
            wire::put_tensor(w, t);
        }
    }
    w.put_usize(result.gemm_groups);
    w.put_usize(result.nonlinear_groups);
    w.put_u64(result.total_macs);
    w.put_f64(result.batched_seconds);
    w.put_usize(result.opt.elided);
    w.put_usize(result.opt.shared);
    w.put_usize(result.opt.fused);
    w.put_usize(result.opt.dead);
    w.put_usize(result.opt.pruned);
    w.put_u64(result.blocks_skipped);
    w.put_u64(result.blocks_total);
}

fn get_window_result(r: &mut WireReader<'_>) -> Result<WindowResult, WireError> {
    let n = r.get_usize()?;
    if n > 1_048_576 {
        return Err(WireError::Corrupt("outcome count exceeds cap"));
    }
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        let ticket = r.get_u64()?;
        let output = wire::get_tensor(r)?;
        let stats = wire::get_exec_stats(r)?;
        let n_ops = r.get_usize()?;
        if n_ops > 1_048_576 {
            return Err(WireError::Corrupt("op-stat count exceeds cap"));
        }
        let mut op_stats = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            op_stats.push(wire::get_exec_stats(r)?);
        }
        let n_sess = r.get_usize()?;
        if n_sess > 4096 {
            return Err(WireError::Corrupt("session output count exceeds cap"));
        }
        let mut session_outputs = Vec::with_capacity(n_sess);
        for _ in 0..n_sess {
            session_outputs.push(wire::get_tensor(r)?);
        }
        outcomes.push(RemoteOutcome {
            ticket,
            output,
            stats,
            op_stats,
            session_outputs,
        });
    }
    Ok(WindowResult {
        outcomes,
        gemm_groups: r.get_usize()?,
        nonlinear_groups: r.get_usize()?,
        total_macs: r.get_u64()?,
        batched_seconds: r.get_f64()?,
        opt: OptTotals {
            elided: r.get_usize()?,
            shared: r.get_usize()?,
            fused: r.get_usize()?,
            dead: r.get_usize()?,
            pruned: r.get_usize()?,
        },
        blocks_skipped: r.get_u64()?,
        blocks_total: r.get_u64()?,
    })
}

// ---------------------------------------------------------------------
// host side: spawning and driving one worker
// ---------------------------------------------------------------------

/// Distinguishes concurrently-spawned listeners within one process.
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

/// How long the host waits for a spawned worker to connect and
/// handshake before declaring the spawn failed.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(20);

/// A spawned shard worker process plus its connected, handshaken
/// stream. Owned by one serve-engine proxy; all methods take `&mut
/// self` and any I/O error means the worker should be treated as dead
/// (the process is killed and reaped on drop).
#[derive(Debug)]
pub struct WorkerHandle {
    child: Child,
    stream: Stream,
    shipped: HashSet<u64>,
    /// Weight-cache accounting for this connection.
    pub cache: WeightCacheStats,
    socket_path: Option<PathBuf>,
}

impl WorkerHandle {
    /// Spawns the worker binary, waits for it to connect over the
    /// chosen transport and completes the Hello → Configure → Ready
    /// handshake, leaving the connection ready for windows.
    ///
    /// # Errors
    ///
    /// Any spawn, accept-timeout, socket or handshake failure.
    pub fn spawn(
        shard: usize,
        transport: Transport,
        worker: Option<&PathBuf>,
        config: &ArrayConfig,
        parallelism: Parallelism,
        granularity: f32,
    ) -> io::Result<WorkerHandle> {
        let worker_path = match worker {
            Some(p) => p.clone(),
            None => default_worker_path().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    "onesa-shard-worker binary not found: build it with `cargo build --release` \
                     or set ONESA_SHARD_WORKER",
                )
            })?,
        };

        enum Listener {
            Tcp(TcpListener),
            Unix(UnixListener, PathBuf),
        }

        let listener = match transport {
            Transport::Tcp => {
                let l = TcpListener::bind(("127.0.0.1", 0))?;
                Listener::Tcp(l)
            }
            Transport::Unix => {
                let path = std::env::temp_dir().join(format!(
                    "onesa-worker-{}-{}-{}.sock",
                    std::process::id(),
                    shard,
                    SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                Listener::Unix(UnixListener::bind(&path)?, path)
            }
        };
        let connect_spec = match &listener {
            Listener::Tcp(l) => format!("tcp:{}", l.local_addr()?),
            Listener::Unix(_, path) => format!("unix:{}", path.display()),
        };

        let mut child = Command::new(&worker_path)
            .arg("--connect")
            .arg(&connect_spec)
            .arg("--shard")
            .arg(shard.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()?;

        // Accept with a deadline, bailing out early if the child exits
        // (wrong binary, bad args) instead of hanging on accept().
        let accept_deadline = Instant::now() + SPAWN_TIMEOUT;
        let stream = loop {
            let accepted = match &listener {
                Listener::Tcp(l) => {
                    l.set_nonblocking(true)?;
                    l.accept().map(|(s, _)| Stream::Tcp(s))
                }
                Listener::Unix(l, _) => {
                    l.set_nonblocking(true)?;
                    l.accept().map(|(s, _)| Stream::Unix(s))
                }
            };
            match accepted {
                Ok(s) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Some(status) = child.try_wait()? {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            format!("shard worker exited before connecting: {status}"),
                        ));
                    }
                    if Instant::now() > accept_deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "shard worker did not connect in time",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(e);
                }
            }
        };
        match &stream {
            Stream::Tcp(s) => {
                s.set_nonblocking(false)?;
                // Windows are request/reply; Nagle would serialize every
                // frame behind a delayed ACK.
                s.set_nodelay(true)?;
            }
            Stream::Unix(s) => s.set_nonblocking(false)?,
        }
        let socket_path = match listener {
            Listener::Unix(_, path) => Some(path),
            Listener::Tcp(_) => None,
        };

        let mut handle = WorkerHandle {
            child,
            stream,
            shipped: HashSet::new(),
            cache: WeightCacheStats::default(),
            socket_path,
        };

        // Handshake (bounded: a wedged worker must not hang start()).
        handle.stream.set_read_timeout(Some(SPAWN_TIMEOUT))?;
        let hello = read_frame(&mut handle.stream)?;
        let view = FrameView::parse(&hello).map_err(wire_to_io)?;
        if view.kind() != KIND_HELLO {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "worker did not open with Hello",
            ));
        }
        let mut body = WireReader::new(view.section(SEC_BODY).map_err(wire_to_io)?);
        let version = body.get_u16().map_err(wire_to_io)?;
        if version != wire::VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "worker speaks wire format v{version}, host speaks v{}",
                    wire::VERSION
                ),
            ));
        }

        let mut cfg = WireWriter::new();
        cfg.put_f32(granularity);
        wire::put_array_config(&mut cfg, config);
        wire::put_parallelism(&mut cfg, parallelism);
        write_frame(&mut handle.stream, &message(KIND_CONFIGURE, cfg))?;

        let ready = read_frame(&mut handle.stream)?;
        let view = FrameView::parse(&ready).map_err(wire_to_io)?;
        if view.kind() != KIND_READY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "worker did not answer Configure with Ready",
            ));
        }
        handle.stream.set_read_timeout(None)?;
        Ok(handle)
    }

    /// The worker process id (what a chaos test kills).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Ships one window and waits for its outcomes.
    ///
    /// # Errors
    ///
    /// Any socket or decode failure — after which the worker must be
    /// considered dead (the caller fails over).
    pub fn run_window(&mut self, items: &[(u64, &Request)]) -> io::Result<WindowReply> {
        let mut body = WireWriter::new();
        body.put_usize(items.len());
        for (ticket, request) in items {
            body.put_u64(*ticket);
            put_request(&mut body, request, &mut self.shipped, &mut self.cache);
        }
        write_frame(&mut self.stream, &message(KIND_WINDOW, body))?;

        let reply = read_frame(&mut self.stream)?;
        let view = FrameView::parse(&reply).map_err(wire_to_io)?;
        let mut body = WireReader::new(view.section(SEC_BODY).map_err(wire_to_io)?);
        match view.kind() {
            KIND_OUTCOMES => {
                let result = get_window_result(&mut body).map_err(wire_to_io)?;
                if result.outcomes.len() != items.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "worker answered with a different outcome count",
                    ));
                }
                Ok(WindowReply::Done(result))
            }
            KIND_WINDOW_ERROR => {
                let msg = body.get_str().map_err(wire_to_io)?;
                Ok(WindowReply::Failed(msg))
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected reply to Window",
            )),
        }
    }

    /// Liveness probe: sends Ping and waits (bounded) for Pong.
    ///
    /// # Errors
    ///
    /// Socket failure or timeout — the worker is dead or wedged.
    pub fn ping(&mut self, timeout: Duration) -> io::Result<()> {
        write_frame(&mut self.stream, &empty_message(KIND_PING))?;
        self.stream.set_read_timeout(Some(timeout))?;
        let result = (|| {
            let reply = read_frame(&mut self.stream)?;
            let view = FrameView::parse(&reply).map_err(wire_to_io)?;
            if view.kind() != KIND_PONG {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected reply to Ping",
                ));
            }
            Ok(())
        })();
        let _ = self.stream.set_read_timeout(None);
        result
    }

    /// Asks the worker to exit and reaps it (bounded wait, then kill).
    pub fn shutdown(mut self) {
        let _ = write_frame(&mut self.stream, &empty_message(KIND_SHUTDOWN));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2))
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    break;
                }
            }
        }
    }
}

impl Drop for WorkerHandle {
    /// Last-resort reap: kill the child if it is still running and
    /// remove the Unix socket file.
    fn drop(&mut self) {
        if let Ok(None) = self.child.try_wait() {
            let _ = self.child.kill();
        }
        let _ = self.child.wait();
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------
// worker side
// ---------------------------------------------------------------------

/// Entry point of the `onesa-shard-worker` binary: connects back to the
/// host, handshakes, then serves windows until Shutdown or EOF.
///
/// `args` are the process arguments after the binary name:
/// `--connect unix:<path>|tcp:<addr>` (required) and `--shard <n>`
/// (cosmetic, for diagnostics).
///
/// # Errors
///
/// A human-readable message on bad arguments, connection failure or a
/// protocol violation. Worker-side *batch* failures are not errors —
/// they are reported to the host as `WindowError` frames and the worker
/// keeps serving.
pub fn worker_main(args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut connect: Option<String> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = args.next(),
            "--shard" => {
                args.next();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let connect = connect.ok_or("missing --connect unix:<path>|tcp:<addr>")?;
    let mut stream = if let Some(path) = connect.strip_prefix("unix:") {
        Stream::Unix(UnixStream::connect(path).map_err(|e| format!("connect {connect}: {e}"))?)
    } else if let Some(addr) = connect.strip_prefix("tcp:") {
        let s = TcpStream::connect(addr).map_err(|e| format!("connect {connect}: {e}"))?;
        s.set_nodelay(true)
            .map_err(|e| format!("tcp nodelay: {e}"))?;
        Stream::Tcp(s)
    } else {
        return Err(format!("bad --connect spec `{connect}`"));
    };

    let mut hello = WireWriter::new();
    hello.put_u16(wire::VERSION);
    write_frame(&mut stream, &message(KIND_HELLO, hello)).map_err(|e| format!("hello: {e}"))?;

    let cfg_frame = read_frame(&mut stream).map_err(|e| format!("read configure: {e}"))?;
    let view = FrameView::parse(&cfg_frame).map_err(|e| format!("parse configure: {e}"))?;
    if view.kind() != KIND_CONFIGURE {
        return Err("expected Configure after Hello".into());
    }
    let mut body = WireReader::new(
        view.section(SEC_BODY)
            .map_err(|e| format!("configure body: {e}"))?,
    );
    let (granularity, config, parallelism) = (|| -> Result<_, WireError> {
        let g = body.get_f32()?;
        let c = wire::get_array_config(&mut body)?;
        let p = wire::get_parallelism(&mut body)?;
        body.expect_end()?;
        Ok((g, c, p))
    })()
    .map_err(|e| format!("decode configure: {e}"))?;

    // The same construction as an in-process shard: identical engine,
    // identical table set, bit-identical outputs.
    let mut engine = BatchEngine::new(OneSa::with_parallelism(config, parallelism), granularity)
        .map_err(|e| format!("build engine: {e}"))?;
    write_frame(&mut stream, &empty_message(KIND_READY)).map_err(|e| format!("ready: {e}"))?;

    let mut programs: HashMap<u64, onesa_plan::Program> = HashMap::new();
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            // Host gone (finished or crashed): a worker never outlives
            // its host.
            Err(_) => return Ok(()),
        };
        let view = FrameView::parse(&frame).map_err(|e| format!("parse message: {e}"))?;
        match view.kind() {
            KIND_SHUTDOWN => return Ok(()),
            KIND_PING => {
                write_frame(&mut stream, &empty_message(KIND_PONG))
                    .map_err(|e| format!("pong: {e}"))?;
            }
            KIND_WINDOW => {
                let mut body = WireReader::new(
                    view.section(SEC_BODY)
                        .map_err(|e| format!("window body: {e}"))?,
                );
                let reply = serve_window(&mut body, &mut engine, &mut programs);
                write_frame(&mut stream, &reply).map_err(|e| format!("outcomes: {e}"))?;
            }
            _ => return Err(format!("unexpected message kind {:#06x}", view.kind())),
        }
    }
}

/// Decodes and executes one window, producing the reply frame. Decode
/// and batch failures produce a `WindowError` frame — the engine is
/// cleared and the worker stays serviceable.
fn serve_window(
    body: &mut WireReader<'_>,
    engine: &mut BatchEngine,
    programs: &mut HashMap<u64, onesa_plan::Program>,
) -> Vec<u8> {
    let fail = |engine: &mut BatchEngine, msg: String| {
        engine.clear();
        let mut w = WireWriter::new();
        w.put_str(&msg);
        message(KIND_WINDOW_ERROR, w)
    };

    let mut tickets: Vec<u64> = Vec::new();
    let decoded = (|| -> Result<(), WireError> {
        let n = body.get_usize()?;
        if n > 1_048_576 {
            return Err(WireError::Corrupt("window item count exceeds cap"));
        }
        for _ in 0..n {
            let ticket = body.get_u64()?;
            let request = get_request(body, programs)?;
            // The host's admitter already validated the request (and
            // program decode re-validated the graph), mirroring the
            // in-process shard loop's submit_validated.
            engine.submit_validated(request);
            tickets.push(ticket);
        }
        body.expect_end()
    })();
    if let Err(e) = decoded {
        return fail(engine, format!("window decode failed: {e}"));
    }

    match engine.run() {
        Ok(run) => {
            let outcomes: Vec<RemoteOutcome> = tickets
                .into_iter()
                .zip(run.outcomes)
                .map(|(ticket, o)| RemoteOutcome {
                    ticket,
                    output: o.output,
                    stats: o.stats,
                    op_stats: o.op_stats,
                    session_outputs: o.session_outputs,
                })
                .collect();
            let result = WindowResult {
                outcomes: Vec::new(),
                gemm_groups: run.report.gemm_groups,
                nonlinear_groups: run.report.nonlinear_groups,
                total_macs: run.report.total_macs,
                batched_seconds: run.report.batched_seconds,
                opt: run.report.opt,
                blocks_skipped: run.report.blocks_skipped,
                blocks_total: run.report.blocks_total,
            };
            let mut w = WireWriter::new();
            put_window_result(&mut w, &outcomes, &result);
            message(KIND_OUTCOMES, w)
        }
        Err(e) => fail(engine, format!("batch execution failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_cpwl::NonlinearFn;
    use onesa_plan::{EvalMode, Op, Program};
    use onesa_tensor::rng::Pcg32;

    fn small_program() -> Program {
        let mut rng = Pcg32::seed_from_u64(5);
        let w = rng.randn(&[4, 2], 1.0);
        let mut b = Program::builder("net-test", EvalMode::Exact);
        let x = b.input(&[1, 4]);
        let c = b.constant(w);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, c],
        );
        b.finish().unwrap()
    }

    #[test]
    fn request_round_trip_all_variants() {
        let mut rng = Pcg32::seed_from_u64(6);
        let program = small_program();
        let reqs = vec![
            Request::gemm(rng.randn(&[2, 3], 1.0), rng.randn(&[3, 2], 1.0)),
            Request::nonlinear(NonlinearFn::LeakyRelu(0.1), rng.randn(&[2, 2], 1.0)),
            Request::program(program.clone(), vec![rng.randn(&[1, 4], 1.0)]),
            Request::program(program.clone(), vec![rng.randn(&[1, 4], 1.0)]),
        ];
        let mut shipped = HashSet::new();
        let mut stats = WeightCacheStats::default();
        let mut w = WireWriter::new();
        for r in &reqs {
            put_request(&mut w, r, &mut shipped, &mut stats);
        }
        // Second program send rode the cache.
        assert_eq!(stats.full_sends, 1);
        assert_eq!(stats.ref_sends, 1);
        assert_eq!(stats.const_bytes_saved, 4 * 2 * 4);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);

        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut cache = HashMap::new();
        for req in &reqs {
            let back = get_request(&mut r, &mut cache).unwrap();
            match (req, &back) {
                (Request::Gemm { a, b }, Request::Gemm { a: a2, b: b2 }) => {
                    assert_eq!(a.as_slice(), a2.as_slice());
                    assert_eq!(b.as_slice(), b2.as_slice());
                }
                (Request::Nonlinear { func, x }, Request::Nonlinear { func: f2, x: x2 }) => {
                    assert_eq!(func, f2);
                    assert_eq!(x.as_slice(), x2.as_slice());
                }
                (
                    Request::Program { program, inputs },
                    Request::Program {
                        program: p2,
                        inputs: i2,
                    },
                ) => {
                    assert_eq!(program.as_ref(), p2.as_ref());
                    assert_eq!(inputs.len(), i2.len());
                }
                _ => panic!("variant changed across the wire"),
            }
        }
        r.expect_end().unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn program_ref_without_prior_full_send_is_corrupt() {
        let mut w = WireWriter::new();
        w.put_u8(REQ_PROGRAM_REF);
        w.put_u64(0xdead_beef);
        w.put_usize(0);
        let bytes = w.into_bytes();
        let mut cache = HashMap::new();
        assert!(matches!(
            get_request(&mut WireReader::new(&bytes), &mut cache),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn window_result_round_trip() {
        let stats = ExecStats {
            breakdown: Default::default(),
            macs: 7,
            nonlinear_evals: 0,
            clock_mhz: 200.0,
        };
        let outcome = RemoteOutcome {
            ticket: 42,
            output: Tensor::from_vec(vec![1.0, -0.0], &[1, 2]).unwrap(),
            stats: stats.clone(),
            op_stats: vec![stats.clone(), stats],
            session_outputs: vec![Tensor::from_vec(vec![0.5, 2.0, -3.0, 0.25], &[2, 2]).unwrap()],
        };
        let result = WindowResult {
            outcomes: Vec::new(),
            gemm_groups: 3,
            nonlinear_groups: 1,
            total_macs: 999,
            batched_seconds: 0.125,
            opt: OptTotals {
                elided: 1,
                shared: 2,
                fused: 0,
                dead: 3,
                pruned: 4,
            },
            blocks_skipped: 12,
            blocks_total: 48,
        };
        let mut w = WireWriter::new();
        put_window_result(&mut w, std::slice::from_ref(&outcome), &result);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = get_window_result(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.outcomes.len(), 1);
        assert_eq!(back.outcomes[0].ticket, 42);
        assert_eq!(back.outcomes[0].op_stats.len(), 2);
        assert_eq!(back.outcomes[0].session_outputs.len(), 1);
        assert_tensor_bits_eq(
            &back.outcomes[0].session_outputs[0],
            &outcome.session_outputs[0],
        );
        assert_eq!(back.gemm_groups, 3);
        assert_eq!(back.total_macs, 999);
        assert_eq!(back.opt.dead, 3);
        assert_eq!(back.opt.pruned, 4);
        assert_eq!((back.blocks_skipped, back.blocks_total), (12, 48));
    }

    #[test]
    fn worker_main_rejects_bad_args() {
        assert!(worker_main(std::iter::empty()).is_err());
        assert!(worker_main(["--connect".to_string(), "bogus:x".to_string()].into_iter()).is_err());
        assert!(worker_main(["--frobnicate".to_string()].into_iter()).is_err());
    }

    use proptest::prelude::*;

    fn assert_tensor_bits_eq(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Randomized mixed request streams round trip bit-exactly
        /// through the weight-cached request codec, and the cache
        /// accounting matches the repeat structure exactly.
        #[test]
        fn request_frames_round_trip(
            n_gemm in 0usize..4,
            n_nl in 0usize..4,
            n_prog in 0usize..5,
            seed in 0u64..10_000,
        ) {
            let mut rng = Pcg32::seed_from_u64(seed);
            let program = small_program();
            let mut reqs = Vec::new();
            for _ in 0..n_gemm {
                reqs.push(Request::gemm(
                    rng.randn(&[1 + seed as usize % 3, 4], 1.0),
                    rng.randn(&[4, 2], 1.0),
                ));
            }
            for i in 0..n_nl {
                let func = if i % 2 == 0 {
                    NonlinearFn::Gelu
                } else {
                    NonlinearFn::Elu(0.5)
                };
                reqs.push(Request::nonlinear(func, rng.randn(&[2, 3], 1.0)));
            }
            for _ in 0..n_prog {
                reqs.push(Request::program(program.clone(), vec![rng.randn(&[1, 4], 1.0)]));
            }
            let mut shipped = HashSet::new();
            let mut stats = WeightCacheStats::default();
            let mut w = WireWriter::new();
            for r in &reqs {
                put_request(&mut w, r, &mut shipped, &mut stats);
            }
            prop_assert_eq!(stats.full_sends, usize::from(n_prog > 0));
            prop_assert_eq!(stats.ref_sends, n_prog.saturating_sub(1));
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let mut cache = HashMap::new();
            for req in &reqs {
                let back = get_request(&mut r, &mut cache).unwrap();
                match (req, &back) {
                    (Request::Gemm { a, b }, Request::Gemm { a: a2, b: b2 }) => {
                        assert_tensor_bits_eq(a, a2);
                        assert_tensor_bits_eq(b, b2);
                    }
                    (Request::Nonlinear { func, x }, Request::Nonlinear { func: f2, x: x2 }) => {
                        prop_assert_eq!(func, f2);
                        assert_tensor_bits_eq(x, x2);
                    }
                    (
                        Request::Program { program: p, inputs },
                        Request::Program { program: p2, inputs: i2 },
                    ) => {
                        prop_assert_eq!(p.fingerprint(), p2.fingerprint());
                        for (a, b) in inputs.iter().zip(i2.iter()) {
                            assert_tensor_bits_eq(a, b);
                        }
                    }
                    _ => prop_assert!(false, "variant changed across the wire"),
                }
            }
            r.expect_end().unwrap();
        }

        /// Randomized outcome frames round trip every field — tickets,
        /// output bits, per-op stats, pool totals.
        #[test]
        fn outcome_frames_round_trip(
            n in 0usize..6,
            seed in 0u64..10_000,
        ) {
            let mut rng = Pcg32::seed_from_u64(seed);
            let outcomes: Vec<RemoteOutcome> = (0..n)
                .map(|i| {
                    let stats = ExecStats {
                        breakdown: Default::default(),
                        macs: seed.wrapping_mul(i as u64 + 1),
                        nonlinear_evals: i as u64,
                        clock_mhz: 200.0,
                    };
                    RemoteOutcome {
                        ticket: seed ^ i as u64,
                        output: rng.randn(&[1 + i % 3, 2], 1.0),
                        stats: stats.clone(),
                        op_stats: vec![stats; i % 3],
                        session_outputs: (0..i % 4)
                            .map(|l| rng.randn(&[1 + i, 2 + l % 2], 1.0))
                            .collect(),
                    }
                })
                .collect();
            let result = WindowResult {
                outcomes: Vec::new(),
                gemm_groups: seed as usize % 7,
                nonlinear_groups: seed as usize % 3,
                total_macs: seed.wrapping_mul(31),
                batched_seconds: (seed % 1000) as f64 / 64.0,
                opt: OptTotals::default(),
                blocks_skipped: seed % 16,
                blocks_total: 16 + seed % 16,
            };
            let mut w = WireWriter::new();
            put_window_result(&mut w, &outcomes, &result);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = get_window_result(&mut r).unwrap();
            r.expect_end().unwrap();
            prop_assert_eq!(back.outcomes.len(), n);
            for (a, b) in outcomes.iter().zip(&back.outcomes) {
                prop_assert_eq!(a.ticket, b.ticket);
                assert_tensor_bits_eq(&a.output, &b.output);
                prop_assert_eq!(&a.stats, &b.stats);
                prop_assert_eq!(a.op_stats.len(), b.op_stats.len());
                prop_assert_eq!(a.session_outputs.len(), b.session_outputs.len());
                for (s, t) in a.session_outputs.iter().zip(&b.session_outputs) {
                    assert_tensor_bits_eq(s, t);
                }
            }
            prop_assert_eq!(back.gemm_groups, result.gemm_groups);
            prop_assert_eq!(back.total_macs, result.total_macs);
            prop_assert_eq!(back.batched_seconds.to_bits(), result.batched_seconds.to_bits());
        }
    }
}
