//! The flexibility argument, quantified.
//!
//! The paper's introduction argues that accelerators built from a matrix
//! unit *plus* dedicated nonlinear function units stall: "one computing
//! unit may remain idle while another processes the workload". This
//! module models that split design as two serialized engines — a GEMM
//! unit with the same MAC budget as the full array and a nonlinear unit
//! sized like typical dedicated vector units — and reports how many
//! cycles each unit idles, versus ONE-SA where the *same* fabric runs
//! both phases.

use onesa_nn::workloads::{Phase, Workload};
use onesa_sim::{analytic, ArrayConfig};

/// Cycle accounting of a split (matrix unit + nonlinear unit) design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitCycles {
    /// Cycles the matrix unit is busy.
    pub gemm_busy: u64,
    /// Cycles the nonlinear unit is busy.
    pub nonlinear_busy: u64,
    /// Total serialized cycles (layer dependencies force alternation).
    pub total: u64,
}

impl SplitCycles {
    /// Fraction of cycles the matrix unit idles while the nonlinear unit
    /// works (and vice versa) — the paper's stall argument.
    pub fn idle_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // Each unit idles while the other is busy.
        let idle = (self.total - self.gemm_busy) + (self.total - self.nonlinear_busy);
        idle as f64 / (2 * self.total) as f64
    }
}

/// Models the split accelerator on a workload: the matrix unit uses the
/// same GEMM schedule as ONE-SA; the dedicated nonlinear unit processes
/// `nl_lanes` elements per cycle (typical dedicated SFU widths are 8–32
/// lanes). Phases serialize because each layer consumes the previous
/// layer's output.
pub fn split_accelerator_cycles(
    cfg: &ArrayConfig,
    workload: &Workload,
    nl_lanes: usize,
) -> SplitCycles {
    let mut gemm_busy = 0u64;
    let mut nonlinear_busy = 0u64;
    for phase in &workload.phases {
        match *phase {
            Phase::Gemm { m, k, n } => {
                gemm_busy += analytic::gemm_breakdown(cfg, m, k, n).total();
            }
            Phase::Pointwise { m, n, .. } => {
                nonlinear_busy += ((m * n) as u64).div_ceil(nl_lanes as u64);
            }
            Phase::Softmax { rows, cols } => {
                // exp + sum + reciprocal + scale on the vector unit.
                nonlinear_busy += (4 * (rows * cols) as u64).div_ceil(nl_lanes as u64);
            }
            Phase::Norm { rows, cols } => {
                nonlinear_busy += (5 * (rows * cols) as u64).div_ceil(nl_lanes as u64);
            }
        }
    }
    SplitCycles {
        gemm_busy,
        nonlinear_busy,
        total: gemm_busy + nonlinear_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OneSa;
    use onesa_nn::workloads;

    #[test]
    fn split_design_idles() {
        let cfg = ArrayConfig::new(8, 16);
        let split = split_accelerator_cycles(&cfg, &workloads::bert_base(64), 16);
        assert!(split.gemm_busy > 0 && split.nonlinear_busy > 0);
        assert!(split.idle_fraction() > 0.0);
        assert_eq!(split.total, split.gemm_busy + split.nonlinear_busy);
    }

    #[test]
    fn onesa_is_not_slower_than_narrow_split_design() {
        // With a typical narrow (16-lane) nonlinear unit, the split
        // design's serialized nonlinear time exceeds what ONE-SA spends
        // running the same ops across its diagonal PEs.
        let cfg = ArrayConfig::new(8, 16);
        let engine = OneSa::new(cfg.clone());
        let w = workloads::resnet50(224);
        let split = split_accelerator_cycles(&cfg, &w, 16);
        let onesa_cycles = engine.run_workload(&w).stats.cycles();
        assert!(
            onesa_cycles < split.total,
            "onesa {onesa_cycles} vs split {}",
            split.total
        );
    }

    #[test]
    fn idle_fraction_bounds() {
        let s = SplitCycles {
            gemm_busy: 60,
            nonlinear_busy: 40,
            total: 100,
        };
        assert!((s.idle_fraction() - 0.5).abs() < 1e-12);
        let z = SplitCycles {
            gemm_busy: 0,
            nonlinear_busy: 0,
            total: 0,
        };
        assert_eq!(z.idle_fraction(), 0.0);
    }
}
