//! The [`OneSa`] engine.

use crate::report::ExecutionReport;
use onesa_cpwl::ops::TableSet;
use onesa_cpwl::PwlTable;
use onesa_nn::workloads::{Phase, Workload};
use onesa_resources::array::ArrayResources;
use onesa_resources::power::PowerModel;
use onesa_resources::{Design, ModuleCost};
use onesa_sim::{analytic, ArrayConfig, ExecStats};
use onesa_tensor::parallel::{self, Parallelism};
use onesa_tensor::{Result, Tensor};

/// One ONE-SA instance: a configured array plus its cost and power
/// models.
#[derive(Debug, Clone)]
pub struct OneSa {
    cfg: ArrayConfig,
    cost: ModuleCost,
    power: PowerModel,
    par: Parallelism,
}

impl OneSa {
    /// Builds the engine for an array configuration, deriving the FPGA
    /// cost from the calibrated resource model. Kernels run sequentially;
    /// use [`OneSa::with_parallelism`] for the multi-threaded backend.
    pub fn new(cfg: ArrayConfig) -> Self {
        OneSa::with_parallelism(cfg, Parallelism::Sequential)
    }

    /// Builds the engine with an explicit host-execution policy. All
    /// policies produce bit-identical tensors (see
    /// [`onesa_tensor::parallel`]); only wall-clock speed changes.
    pub fn with_parallelism(cfg: ArrayConfig, par: Parallelism) -> Self {
        let resources = ArrayResources::calibrated();
        let cost = resources.total(Design::OneSa, cfg.dim, cfg.macs_per_pe);
        OneSa {
            cfg,
            cost,
            power: PowerModel::virtex7(),
            par,
        }
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// The host-execution policy used for kernel evaluation.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Changes the host-execution policy in place.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.par = par;
    }

    /// FPGA resource cost of this design point.
    pub fn cost(&self) -> ModuleCost {
        self.cost
    }

    /// Modelled power at a given utilization.
    pub fn power_watts(&self, utilization: f64) -> f64 {
        self.power.power_at_utilization(&self.cost, utilization)
    }

    // ---------- functional execution (values + cycles) ----------

    /// Executes a GEMM: returns the product and its execution stats.
    ///
    /// # Errors
    ///
    /// Shape errors as in [`onesa_tensor::gemm::matmul`].
    pub fn gemm(&self, a: &Tensor, b: &Tensor) -> Result<(Tensor, ExecStats)> {
        let (m, k) = a.shape().as_matrix()?;
        let (_, n) = b.shape().as_matrix()?;
        let out = parallel::matmul(a, b, self.par)?;
        Ok((out, analytic::gemm_stats(&self.cfg, m, k, n)))
    }

    /// Executes a pointwise nonlinear function through IPF + MHP.
    ///
    /// # Errors
    ///
    /// Shape errors from the underlying tensor ops.
    pub fn nonlinear(&self, table: &PwlTable, x: &Tensor) -> Result<(Tensor, ExecStats)> {
        let (m, n) = matrix_or_row(x);
        let out = table.eval_tensor(x).map_err(unwrap_cpwl)?;
        Ok((out, analytic::nonlinear_stats(&self.cfg, m, n)))
    }

    /// Executes a row-wise softmax via the paper's lowering (row max →
    /// exp MHP → row-sum GEMM → reciprocal MHP → scale MHP).
    ///
    /// # Errors
    ///
    /// Shape errors from the underlying tensor ops.
    pub fn softmax_rows(&self, tables: &TableSet, x: &Tensor) -> Result<(Tensor, ExecStats)> {
        let (m, n) = x.shape().as_matrix()?;
        let out = tables.softmax_rows(x).map_err(unwrap_cpwl)?;
        Ok((out, self.softmax_stats(m, n)))
    }

    /// Executes a row-wise layer norm via the paper's lowering.
    ///
    /// # Errors
    ///
    /// Shape errors from the underlying tensor ops.
    pub fn layernorm_rows(
        &self,
        tables: &TableSet,
        x: &Tensor,
        gamma: &[f32],
        beta: &[f32],
        eps: f32,
    ) -> Result<(Tensor, ExecStats)> {
        let (m, n) = x.shape().as_matrix()?;
        let out = tables
            .layernorm_rows(x, gamma, beta, eps)
            .map_err(unwrap_cpwl)?;
        Ok((out, self.norm_stats(m, n)))
    }

    // ---------- cycle composition for lowered composite ops ----------

    /// Softmax lowering cycles: exp (IPF+MHP) + row-sum GEMM +
    /// reciprocal (IPF+MHP on the row vector) + scale MHP (see
    /// [`analytic::softmax_stats`]).
    pub fn softmax_stats(&self, m: usize, n: usize) -> ExecStats {
        analytic::softmax_stats(&self.cfg, m, n)
    }

    /// Normalization lowering cycles: mean GEMM + center MHP + square
    /// MHP + variance GEMM + rsqrt (IPF+MHP) + affine MHP (see
    /// [`analytic::norm_stats`]).
    pub fn norm_stats(&self, m: usize, n: usize) -> ExecStats {
        analytic::norm_stats(&self.cfg, m, n)
    }

    /// Stats for one workload phase.
    pub fn phase_stats(&self, phase: &Phase) -> ExecStats {
        match *phase {
            Phase::Gemm { m, k, n } => analytic::gemm_stats(&self.cfg, m, k, n),
            Phase::Pointwise { m, n, .. } => analytic::nonlinear_stats(&self.cfg, m, n),
            Phase::Softmax { rows, cols } => self.softmax_stats(rows, cols),
            Phase::Norm { rows, cols } => self.norm_stats(rows, cols),
        }
    }

    /// Runs a whole workload and produces the Table IV-style report.
    pub fn run_workload(&self, w: &Workload) -> ExecutionReport {
        let mut stats: Option<ExecStats> = None;
        for phase in &w.phases {
            let s = self.phase_stats(phase);
            stats = Some(match stats {
                Some(acc) => acc.merged(&s),
                None => s,
            });
        }
        let stats = stats.unwrap_or_else(|| {
            ExecStats::new(&self.cfg, onesa_sim::CycleBreakdown::default(), 0, 0)
        });
        let utilization = stats.utilization(&self.cfg);
        ExecutionReport {
            workload: w.name.clone(),
            stats,
            config: self.cfg.clone(),
            cost: self.cost,
            power_w: self.power.power_at_utilization(&self.cost, utilization),
        }
    }
}

impl Default for OneSa {
    /// The paper's evaluation design point (64 PEs, 16 MACs each).
    fn default() -> Self {
        OneSa::new(ArrayConfig::default())
    }
}

fn matrix_or_row(x: &Tensor) -> (usize, usize) {
    match x.shape().as_matrix() {
        Ok((m, n)) => (m, n),
        Err(_) => (1, x.len()),
    }
}

fn unwrap_cpwl(e: onesa_cpwl::CpwlError) -> onesa_tensor::TensorError {
    match e {
        onesa_cpwl::CpwlError::Tensor(t) => t,
        other => onesa_tensor::TensorError::InvalidArgument(match other {
            onesa_cpwl::CpwlError::InvalidGranularity(_) => "invalid granularity",
            onesa_cpwl::CpwlError::InvalidRange { .. } => "invalid range",
            _ => "cpwl table error",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_cpwl::NonlinearFn;
    use onesa_nn::workloads;
    use onesa_tensor::gemm;
    use onesa_tensor::rng::Pcg32;
    use onesa_tensor::stats;

    #[test]
    fn gemm_values_match_reference() {
        let engine = OneSa::default();
        let mut rng = Pcg32::seed_from_u64(1);
        let a = rng.randn(&[20, 12], 1.0);
        let b = rng.randn(&[12, 9], 1.0);
        let (out, s) = engine.gemm(&a, &b).unwrap();
        assert_eq!(out, gemm::matmul(&a, &b).unwrap());
        assert_eq!(s.macs, 20 * 12 * 9);
        assert!(s.cycles() > 0);
    }

    #[test]
    fn threaded_engine_is_bit_identical_to_sequential() {
        let mut rng = Pcg32::seed_from_u64(9);
        let a = rng.randn(&[33, 21], 1.0);
        let b = rng.randn(&[21, 27], 1.0);
        let seq = OneSa::default();
        let par = OneSa::with_parallelism(ArrayConfig::default(), Parallelism::Threads(4));
        assert_eq!(par.parallelism(), Parallelism::Threads(4));
        let (sout, sstats) = seq.gemm(&a, &b).unwrap();
        let (pout, pstats) = par.gemm(&a, &b).unwrap();
        assert_eq!(sout, pout);
        // Simulated array cycles are a property of the workload, not of
        // the host execution policy.
        assert_eq!(sstats, pstats);
    }

    #[test]
    fn nonlinear_values_match_table() {
        let engine = OneSa::default();
        let table = PwlTable::builder(NonlinearFn::Gelu)
            .granularity(0.25)
            .build()
            .unwrap();
        let x = Pcg32::seed_from_u64(2).randn(&[6, 10], 2.0);
        let (out, s) = engine.nonlinear(&table, &x).unwrap();
        assert_eq!(out, table.eval_tensor(&x).unwrap());
        assert_eq!(s.nonlinear_evals, 60);
    }

    #[test]
    fn softmax_values_match_tableset() {
        let engine = OneSa::default();
        let tables = TableSet::for_granularity(0.25).unwrap();
        let x = Pcg32::seed_from_u64(3).randn(&[5, 8], 1.5);
        let (out, s) = engine.softmax_rows(&tables, &x).unwrap();
        let reference = tables.softmax_rows(&x).unwrap();
        assert!(stats::max_abs_diff(out.as_slice(), reference.as_slice()) < 1e-6);
        assert!(s.cycles() > 0);
    }

    #[test]
    fn workload_reports_are_sane() {
        let engine = OneSa::new(ArrayConfig::new(8, 16));
        for w in workloads::table4_workloads() {
            let r = engine.run_workload(&w);
            assert!(r.latency_ms() > 0.1, "{}: {}", w.name, r.latency_ms());
            assert!(r.gops() > 10.0, "{}: {}", w.name, r.gops());
            assert!(r.gops() <= engine.config().peak_gops());
            assert!(
                r.power_w > 0.25 && r.power_w < 10.0,
                "{}: {} W",
                w.name,
                r.power_w
            );
        }
    }

    #[test]
    fn onesa_beats_cpu_efficiency_on_all_families() {
        // The paper's headline: ONE-SA efficiency ≫ general-purpose CPU.
        let engine = OneSa::new(ArrayConfig::new(8, 16));
        for w in workloads::table4_workloads() {
            let r = engine.run_workload(&w);
            let cpu = onesa_baselines::cpu_i7_11700();
            let cpu_eff = cpu.gops_for(w.family).unwrap() / cpu.power_w;
            assert!(
                r.gops_per_watt() > cpu_eff,
                "{}: onesa {} vs cpu {}",
                w.name,
                r.gops_per_watt(),
                cpu_eff
            );
        }
    }

    #[test]
    fn bigger_arrays_are_faster_on_big_workloads() {
        let small = OneSa::new(ArrayConfig::new(4, 16));
        let big = OneSa::new(ArrayConfig::new(16, 16));
        let w = workloads::bert_base(64);
        assert!(big.run_workload(&w).latency_ms() < small.run_workload(&w).latency_ms());
    }
}
