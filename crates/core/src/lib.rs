//! The ONE-SA engine: one systolic array that executes *every* phase of a
//! neural network — GEMMs natively, and nonlinear operations through
//! capped piecewise linearization lowered to Intermediate Parameter
//! Fetching + Matrix Hadamard Products.
//!
//! [`OneSa`] ties the repository together: it owns an array
//! configuration ([`onesa_sim::ArrayConfig`]), its FPGA cost
//! ([`onesa_resources`]) and power model, executes tensors *functionally*
//! (producing real values, checked against the reference kernels) while
//! accounting cycles, and lowers whole-network [`Workload`]s into
//! execution reports — the machinery behind the paper's Fig 8, Fig 10
//! and Table IV.
//!
//! # Example
//!
//! ```
//! use onesa_core::OneSa;
//! use onesa_sim::ArrayConfig;
//! use onesa_nn::workloads;
//!
//! let engine = OneSa::new(ArrayConfig::new(8, 16)); // the paper's design point
//! let report = engine.run_workload(&workloads::bert_base(64));
//! assert!(report.latency_ms() > 0.0);
//! assert!(report.gops() <= engine.config().peak_gops());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod flex;
mod report;

pub mod batch;
pub mod net;
pub mod serve;

/// The operator-graph Program IR (re-export of the `onesa-plan` crate).
///
/// Whole networks compile to [`plan::Program`]s (see
/// `onesa_nn::compile`) and execute through [`BatchEngine`]'s staged
/// scheduler, which coalesces compatible ops **across concurrent
/// programs at every stage** — shared-weight row-stacking and
/// shared-table concatenation per layer, not just at the classifier.
pub mod plan {
    pub use onesa_plan::*;
}

pub use batch::{BatchEngine, BatchRun, Request, RequestId, RequestOutcome, ServingReport};
pub use engine::OneSa;
pub use flex::split_accelerator_cycles;
pub use net::{default_worker_path, ProcessConfig, Transport, WeightCacheStats};
pub use onesa_nn::workloads::Workload;
pub use onesa_plan::{Compile, Program, StageGroups};
pub use onesa_tensor::parallel::Parallelism;
pub use report::ExecutionReport;
pub use serve::{
    AdmissionPolicy, DegradeInfo, DegradePolicy, PoolPolicy, PowerSummary, RoutePolicy,
    ServeClient, ServeConfig, ServeEngine, ServeError, ServeSummary, ServedOutcome, ShardBackend,
    ShardPower, ShardSpec, ShardStats, Ticket, TicketId, TrySubmitError,
};
