//! Asynchronous request admission and multi-array sharded serving.
//!
//! [`BatchEngine`] serves a queue it already holds;
//! this module puts a *live* front door on top of it. A [`ServeEngine`]
//! owns a bounded multi-producer submission queue that keeps **accepting
//! requests while batches execute**, an admission thread that closes
//! batching windows under a configurable [`AdmissionPolicy`], and a
//! shard pool of `N` worker shards — each one a `(OneSa, BatchEngine,
//! Parallelism)` triple standing in for one simulated systolic array —
//! fed through a pluggable [`RoutePolicy`]. This is the scale-out rung
//! the ROADMAP names after PR 2's synchronous batching: one workload,
//! many arrays, in the spirit of FlexSA's sub-array partitioning and
//! ArrayFlex's per-workload reconfiguration.
//!
//! # Request lifecycle
//!
//! ```text
//!  client threads                admission thread              shard workers
//!  ──────────────                ────────────────              ─────────────
//!  submit(Request) ──► bounded MPSC queue ──► batching window ──► router
//!        │            (backpressure: send     (FIFO / EDF /       │
//!        ▼             blocks when full)       size-capped)       ▼
//!     Ticket                                              per-shard channel
//!        │                                                        │
//!        │                                                 BatchEngine::run
//!        │                                                 (coalesce + exec)
//!        ▼                                                        │
//!  Ticket::wait ◄───────────── per-request reply channel ◄────────┘
//!
//!  finish() ──► drains the queue, joins every worker, aggregates the
//!               shards into a ServingReport + per-shard ShardStats
//! ```
//!
//! # Guarantees
//!
//! * **Bit-identicality.** Outputs are bit-identical to running every
//!   request alone on one sequential array, for every shard count,
//!   admission policy and routing policy — coalescing never changes a
//!   request's floating-point op sequence (see [`crate::batch`]), and
//!   sharding only changes *which* engine runs it.
//! * **Per-ticket ordering.** Ticket ids are assigned in submission
//!   order and every [`ServedOutcome`] carries the id of the request it
//!   answers; a window is dispatched in submission order unless the
//!   deadline policy deliberately reorders it (observable through
//!   [`ServedOutcome::dispatch_seq`]).
//! * **Backpressure.** The submission queue is bounded:
//!   [`ServeClient::submit`] blocks and [`ServeClient::try_submit`]
//!   returns the request back once `queue_capacity` requests are
//!   waiting, so producers can never outrun the pool unboundedly. The
//!   per-shard channels are bounded too, which stalls admission (not
//!   the clients) when one shard falls behind.
//! * **Early rejection.** The admission thread validates every request
//!   (via the same checks as `BatchEngine::submit_checked`) before
//!   routing: a malformed request's ticket resolves with the validation
//!   error at the queue, and never reaches a shard's batch. Validated
//!   requests carry that status to their shard, whose worker enqueues
//!   them through [`BatchEngine::submit_validated`] — the full
//!   validation walk (for a program request, a whole-graph validation
//!   plus shape inference) runs once per request, not once per layer of
//!   the stack. Under
//!   [`AdmissionPolicy::Deadline`] with `drop_expired`, requests
//!   already past their deadline at window close resolve with
//!   [`ServeError::DeadlineExpired`] instead of dispatching (counted in
//!   [`ServeSummary::expired`]) — the ROADMAP's drop-on-expiry
//!   admission rung.
//!
//! # Whole-network program tickets
//!
//! Compiled [`crate::Program`]s are first-class requests
//! ([`ServeEngine::submit_program`]): an entire network — convolutions,
//! attention, CPWL nonlinears, quantization boundaries — flows through
//! the admission window and shard pool as one ticket, and concurrent
//! programs on a shard coalesce **at every stage** through
//! `BatchEngine`'s staged scheduler (shared-weight row-stacking and
//! shared-table concatenation per layer). [`ServedOutcome::op_stats`]
//! returns the per-op [`ExecStats`], which roll into the summary's
//! [`ServingReport`] totals.
//!
//! # Example
//!
//! ```
//! use onesa_core::serve::{ServeConfig, ServeEngine};
//! use onesa_core::{Parallelism, Request};
//! use onesa_sim::ArrayConfig;
//! use onesa_tensor::{gemm, rng::Pcg32};
//!
//! let mut rng = Pcg32::seed_from_u64(5);
//! let w = rng.randn(&[16, 8], 1.0);
//! let pool = ServeEngine::start(ServeConfig::uniform(
//!     2,
//!     ArrayConfig::new(8, 16),
//!     Parallelism::Sequential,
//! ))?;
//! let a = rng.randn(&[4, 16], 1.0);
//! let ticket = pool.submit(Request::gemm(a.clone(), w.clone())).unwrap();
//! let served = ticket.wait().unwrap();
//! assert_eq!(served.output, gemm::matmul(&a, &w)?);
//! let summary = pool.finish().unwrap();
//! assert_eq!(summary.report.requests, 1);
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

use crate::batch::{BatchEngine, Request, ServingReport};
use crate::engine::OneSa;
use crate::net::{self, ProcessConfig, WeightCacheStats};
use onesa_plan::{CompileCache, EvalMode, OptTotals};
use onesa_resources::array::ArrayResources;
use onesa_resources::power::PowerModel;
use onesa_resources::{Design, ModuleCost};
use onesa_sim::{ArrayConfig, ExecStats};
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::{Tensor, TensorError};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Globally unique, monotonically increasing id of a submitted request.
pub type TicketId = u64;

/// How many dispatched-but-unfinished batches one shard's channel holds
/// before admission stalls on it (bounded backpressure between the
/// admitter and a slow shard).
const SHARD_CHANNEL_DEPTH: usize = 2;

/// How the admission thread closes a batching window.
///
/// A window opens when the first waiting request is picked up and is
/// filled greedily from whatever else has already arrived — admission
/// never waits for stragglers, so a lightly loaded pool degenerates to
/// request-at-a-time serving and a busy one to large coalesced batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Dispatch in arrival order; close the window after `window`
    /// requests (`0` is treated as `1`).
    Fifo {
        /// Maximum requests per window.
        window: usize,
    },
    /// Like [`AdmissionPolicy::Fifo`], but the admitted window is
    /// dispatched earliest-deadline-first. Requests without a deadline
    /// sort last; ties keep arrival order (the sort is stable).
    ///
    /// With `drop_expired` off, the deadline is a pure priority key —
    /// nothing is dropped on a miss. With it on, deadlines are absolute
    /// **microseconds since [`ServeEngine::start`]**: a request already
    /// past its deadline when its window closes resolves its ticket
    /// with [`ServeError::DeadlineExpired`] instead of dispatching, and
    /// is counted in [`ServeSummary::expired`].
    Deadline {
        /// Maximum requests per window.
        window: usize,
        /// Drop (rather than merely deprioritize) expired requests.
        drop_expired: bool,
    },
    /// Close the window once its accumulated modeled work
    /// ([`Request::modeled_macs`]) reaches `max_macs`, so one window
    /// never holds more array work than a target batch budget.
    SizeCapped {
        /// Modeled-MAC budget per window.
        max_macs: u64,
    },
}

impl Default for AdmissionPolicy {
    /// FIFO with a 64-request window.
    fn default() -> Self {
        AdmissionPolicy::Fifo { window: 64 }
    }
}

/// How an admitted request picks its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Strict rotation over the shards.
    #[default]
    RoundRobin,
    /// The shard with the least outstanding modeled work (queued plus
    /// executing, in [`Request::modeled_macs`] units; ties pick the
    /// lowest shard index).
    LeastLoaded,
    /// Requests with equal [`Request::affinity_key`]s — GEMMs against
    /// the same weight matrix, nonlinears of the same function — land on
    /// the same shard, so sharding does not break [`crate::batch`]'s
    /// coalescing (shared weights still load once *per shard that sees
    /// them*, and with affinity routing that is one shard).
    WeightAffinity,
    /// The powered shard that would finish this request for the least
    /// additional modeled energy: each shard's full-activity energy per
    /// MAC (its [`PowerModel`] power over its peak MAC rate) weighs its
    /// outstanding work plus this request; ties pick the lowest shard
    /// index. On a homogeneous pool this degenerates to
    /// [`RoutePolicy::LeastLoaded`]; on a heterogeneous one it steers
    /// work toward the more efficient arrays first.
    EnergyAware,
}

/// When and how the admitter trades accuracy for survival under
/// overload: instead of letting a queued CPWL program request expire
/// (or letting a deep queue grow its latency unboundedly), the request
/// is **re-compiled at a coarser CPWL granularity** — fewer table
/// segments, a cheaper table-staging footprint, the accuracy/latency
/// knob the paper itself highlights — and served. The recompile rides
/// [`CompileCache`] (keyed on the coarser mode + the source program's
/// fingerprint), and the shard's per-granularity plan `TableCache`
/// builds each rung's tables at most once.
///
/// Two trigger points:
///
/// * **Window fill.** While the admitter fills a window, a CPWL program
///   request degrades one ladder rung if the submission queue behind it
///   is at least [`DegradePolicy::depth_threshold`] deep, or its
///   deadline slack has shrunk below [`DegradePolicy::slack_us`]. The
///   window's work budget ([`AdmissionPolicy::SizeCapped`]) counts the
///   *recompiled* program's modeled MACs.
/// * **Expiry rescue.** Under [`AdmissionPolicy::Deadline`] with
///   `drop_expired`, a CPWL program request already past its deadline
///   jumps to the **coarsest** rung and dispatches instead of resolving
///   [`ServeError::DeadlineExpired`]. Only non-degradable requests
///   (plain GEMM/nonlinear, exact-mode programs) or requests already at
///   the coarsest rung still expire.
///
/// Degraded outputs stay bit-identical to a solo run of the same
/// program compiled directly at the served granularity — degrading
/// changes *which* program runs, never how it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradePolicy {
    /// Fallback granularities, finest first, each strictly coarser
    /// (larger) than the one before; requests degrade along it rung by
    /// rung. Must be non-empty.
    pub ladder: Vec<f32>,
    /// Submission-queue depth at which window fill degrades a request
    /// one rung (`usize::MAX` — the [`DegradePolicy::new`] default —
    /// disables pressure degrading; `0` degrades every request).
    pub depth_threshold: usize,
    /// Deadline slack (µs) below which window fill degrades a
    /// deadline-carrying request one rung (`0`, the default, disables
    /// the slack trigger).
    pub slack_us: u64,
}

impl DegradePolicy {
    /// A ladder-only policy: no pressure or slack triggers, just the
    /// expiry rescue (degrade-don't-drop).
    pub fn new(ladder: Vec<f32>) -> Self {
        DegradePolicy {
            ladder,
            depth_threshold: usize::MAX,
            slack_us: 0,
        }
    }

    /// Replaces the queue-depth trigger.
    pub fn with_depth_threshold(mut self, depth: usize) -> Self {
        self.depth_threshold = depth;
        self
    }

    /// Replaces the deadline-slack trigger.
    pub fn with_slack_us(mut self, slack_us: u64) -> Self {
        self.slack_us = slack_us;
        self
    }
}

/// How a degraded request was actually served, riding its
/// [`ServedOutcome`]. `None` on an outcome means the request ran
/// exactly as submitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeInfo {
    /// CPWL granularity the program was compiled at when submitted.
    pub requested: f32,
    /// Coarser granularity it was re-compiled to and served at.
    pub served: f32,
    /// Ladder rungs between the two (the number of
    /// [`DegradePolicy::ladder`] entries in `(requested, served]`).
    pub rungs: usize,
}

/// Power state of one shard in the pool, driven per admission window by
/// [`PoolPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPower {
    /// Powered and routable.
    Active,
    /// Draining toward power-off: the router no longer targets it, but
    /// its in-flight windows finish (and it still burns idle power), so
    /// no admitted work is ever lost to a power-down.
    Idle,
    /// Powered down: consumes no modeled energy and receives no work
    /// until queue pressure (or a pinned session) re-activates it.
    Off,
}

/// How the pool manages shard power across the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolPolicy {
    /// Every shard stays [`ShardPower::Active`] for the whole run (the
    /// default).
    #[default]
    AlwaysOn,
    /// Closed-loop elasticity against the admission queue: shards past
    /// `min_active` start [`ShardPower::Off`]; a backlog powers one up
    /// per window; a shard that routes nothing for `idle_windows`
    /// consecutive windows drains ([`ShardPower::Idle`]) and powers off
    /// once its channel and outstanding work are empty. A session
    /// pinned to a parked shard re-activates it — pinning always wins.
    Elastic {
        /// Shards kept active at all times (clamped to `1..=pool`).
        min_active: usize,
        /// Submission-queue depth (beyond the closing window) at which
        /// one more shard powers up.
        scale_up_depth: usize,
        /// Consecutive windows a drained shard must sit unused before
        /// it starts draining toward [`ShardPower::Off`].
        idle_windows: usize,
    },
}

/// Modeled energy accounting of one engine lifetime
/// ([`ServeSummary::power`]). Every admission window is costed over its
/// modeled duration (the longest batch any shard executed for it):
/// an executing shard pays [`PowerModel`] energy at its batch's actual
/// utilization plus idle power for the window's remainder, a powered
/// but idle shard pays idle power for the whole window, and an
/// [`ShardPower::Off`] shard pays nothing. Deterministic — it is built
/// from simulated batch seconds, not host wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerSummary {
    /// Modeled joules the pool consumed across all windows.
    pub modeled_joules: f64,
    /// Shard-windows spent [`ShardPower::Active`].
    pub active_shard_windows: u64,
    /// Shard-windows spent [`ShardPower::Idle`] (draining).
    pub idle_shard_windows: u64,
    /// Shard-windows spent [`ShardPower::Off`].
    pub off_shard_windows: u64,
    /// `Off → Active` transitions (scale-ups and pinned-session
    /// re-powers).
    pub power_ups: u64,
    /// `Idle → Off` transitions (completed drains).
    pub power_downs: u64,
}

/// Identifier of a decoding session (from [`ServeClient::open_session`]).
pub type SessionId = u64;

/// Which autoregressive phase a session-tagged request is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The prompt pass: one program over the whole prompt that produces
    /// the session's initial KV cache.
    Prefill,
    /// One token step against the session-resident KV cache.
    Decode,
}

/// How a closed admission window orders prefill and decode steps before
/// routing. Reordering happens *within* one window (after the deadline
/// sort, which it preserves within each phase class) and never changes
/// any request's output — only which requests share a shard batch, and
/// therefore the continuous-batching coalescing opportunities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterleavePolicy {
    /// Keep arrival order: prefill and decode steps mix freely (the
    /// default).
    #[default]
    Mixed,
    /// Prompt passes dispatch ahead of decode steps — favors time to
    /// first token for newly admitted sessions.
    PrefillFirst,
    /// Decode steps dispatch ahead of prompt passes — favors inter-token
    /// latency of already-running sessions.
    DecodeFirst,
}

/// Lifetime counters of the session table, reported in
/// [`ServeSummary::sessions`]. `live` counts entries still resident at
/// finish — an evicted session's KV tensors are freed at eviction, so
/// `opened == closed + evicted_deadline + evicted_overflow + live`
/// always holds (no orphaned cache entries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Sessions opened over the engine lifetime.
    pub opened: u64,
    /// Sessions the client closed ([`ServeClient::close_session`]).
    pub closed: u64,
    /// Whole sessions evicted because a step expired under
    /// [`AdmissionPolicy::Deadline`] with `drop_expired` — the KV
    /// tensors are freed with the entry, not just the in-flight step.
    pub evicted_deadline: u64,
    /// Sessions evicted least-recently-used to admit a new one past
    /// [`ServeConfig::session_capacity`].
    pub evicted_overflow: u64,
    /// Sessions still resident when the engine finished.
    pub live: u64,
}

/// Latency/throughput accounting of one phase ([`ServeSummary::prefill`]
/// / [`ServeSummary::decode`]). Only session-tagged requests are
/// counted; plain GEMM/nonlinear/program tickets belong to neither
/// phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Requests served in this phase.
    pub requests: usize,
    /// Tokens those requests covered: the prompt length for a prefill,
    /// one per decode step.
    pub tokens: u64,
    /// Simulated per-request latencies in seconds, ordered by ticket id.
    pub latencies: Vec<f64>,
}

impl PhaseStats {
    /// Nearest-rank latency percentile (`q` in `0..=100`) over this
    /// phase's requests; 0.0 when the phase served nothing.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Tokens per second against the given wall-clock interval.
    pub fn tokens_per_second(&self, wall_seconds: f64) -> f64 {
        if wall_seconds > 0.0 {
            self.tokens as f64 / wall_seconds
        } else {
            0.0
        }
    }
}

/// One live decoding session: host-resident KV tensors plus scheduling
/// state. The tensors are whatever the session's programs declare as
/// session outputs — for `TinyCausalLm`, per-layer `[ctx, d]` K and V
/// matrices, K then V in block order.
#[derive(Debug)]
struct SessionState {
    /// Current per-layer cache tensors (empty until prefill completes).
    kv: Vec<Tensor>,
    /// The shard the session's first step landed on; every later step
    /// routes here so the session's weight state stays shard-local.
    shard: Option<usize>,
    /// A step is queued or executing: the session admits one step at a
    /// time, which is what keeps cache read-modify-write linearizable.
    in_flight: bool,
    /// LRU clock value of the last checkout (overflow eviction key).
    last_used: u64,
    /// Decode steps completed (== tokens generated so far).
    tokens: u64,
}

#[derive(Debug, Default)]
struct SessionTableInner {
    map: std::collections::HashMap<SessionId, SessionState>,
    next: SessionId,
    clock: u64,
    opened: u64,
    closed: u64,
    evicted_deadline: u64,
    evicted_overflow: u64,
}

/// The host-side session table, shared by clients (checkout at submit),
/// the admitter (pinning, deadline eviction) and the shard workers
/// (write-back before the ticket reply).
#[derive(Debug)]
struct SessionTable {
    inner: Mutex<SessionTableInner>,
    capacity: usize,
}

impl SessionTable {
    fn new(capacity: usize) -> Self {
        SessionTable {
            inner: Mutex::new(SessionTableInner::default()),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SessionTableInner> {
        self.inner.lock().expect("session table lock")
    }

    /// Opens a session, evicting the least-recently-used idle session
    /// first if the table is at capacity (an in-flight session is never
    /// evicted — its write-back is pending; if every resident session is
    /// in flight the table temporarily exceeds capacity instead).
    fn open(&self) -> SessionId {
        let mut t = self.lock();
        if t.map.len() >= self.capacity {
            let victim = t
                .map
                .iter()
                .filter(|(_, s)| !s.in_flight)
                .min_by_key(|(id, s)| (s.last_used, **id))
                .map(|(id, _)| *id);
            if let Some(id) = victim {
                t.map.remove(&id);
                t.evicted_overflow += 1;
            }
        }
        let id = t.next;
        t.next += 1;
        t.opened += 1;
        let clock = t.clock;
        t.clock += 1;
        t.map.insert(
            id,
            SessionState {
                kv: Vec::new(),
                shard: None,
                in_flight: false,
                last_used: clock,
                tokens: 0,
            },
        );
        id
    }

    fn close(&self, id: SessionId) -> bool {
        let mut t = self.lock();
        let existed = t.map.remove(&id).is_some();
        if existed {
            t.closed += 1;
        }
        existed
    }

    /// Marks the session in flight and returns a clone of its KV
    /// tensors for input binding.
    fn checkout(&self, id: SessionId) -> Result<Vec<Tensor>, ServeError> {
        let mut t = self.lock();
        let clock = t.clock;
        t.clock += 1;
        let s = t.map.get_mut(&id).ok_or(ServeError::SessionUnknown(id))?;
        if s.in_flight {
            return Err(ServeError::SessionBusy(id));
        }
        s.in_flight = true;
        s.last_used = clock;
        Ok(s.kv.clone())
    }

    /// Installs a completed step's session outputs and reopens the
    /// session for its next step. A session evicted or closed while the
    /// step was in flight is left gone — the stale tensors are dropped.
    fn writeback(&self, id: SessionId, kv: Vec<Tensor>, phase: Phase) {
        let mut t = self.lock();
        if let Some(s) = t.map.get_mut(&id) {
            s.kv = kv;
            s.in_flight = false;
            if phase == Phase::Decode {
                s.tokens += 1;
            }
        }
    }

    /// Clears the in-flight marker without touching the cache (error
    /// paths: validation rejection, shard failure, queue teardown).
    fn release(&self, id: SessionId) {
        let mut t = self.lock();
        if let Some(s) = t.map.get_mut(&id) {
            s.in_flight = false;
        }
    }

    fn pin_of(&self, id: SessionId) -> Option<usize> {
        self.lock().map.get(&id).and_then(|s| s.shard)
    }

    fn set_pin(&self, id: SessionId, shard: usize) {
        let mut t = self.lock();
        if let Some(s) = t.map.get_mut(&id) {
            if s.shard.is_none() {
                s.shard = Some(shard);
            }
        }
    }

    /// Evicts the whole session because one of its steps expired: the
    /// entry — KV tensors included — is freed, not just the in-flight
    /// step (the regression pinned by
    /// `deadline_expiry_evicts_the_whole_session`).
    fn evict_deadline(&self, id: SessionId) {
        let mut t = self.lock();
        if t.map.remove(&id).is_some() {
            t.evicted_deadline += 1;
        }
    }

    fn kv(&self, id: SessionId) -> Option<Vec<Tensor>> {
        self.lock().map.get(&id).map(|s| s.kv.clone())
    }

    fn context_rows(&self, id: SessionId) -> Option<usize> {
        self.lock()
            .map
            .get(&id)
            .map(|s| s.kv.first().map_or(0, |t| t.dims()[0]))
    }

    fn tokens(&self, id: SessionId) -> Option<u64> {
        self.lock().map.get(&id).map(|s| s.tokens)
    }

    fn live(&self) -> usize {
        self.lock().map.len()
    }

    fn summary(&self) -> SessionSummary {
        let t = self.lock();
        SessionSummary {
            opened: t.opened,
            closed: t.closed,
            evicted_deadline: t.evicted_deadline,
            evicted_overflow: t.evicted_overflow,
            live: t.map.len() as u64,
        }
    }
}

/// One simulated array in the pool: an [`ArrayConfig`] plus the host
/// execution policy its kernels run under.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The simulated array this shard stands in for.
    pub config: ArrayConfig,
    /// Host backend policy for this shard's kernels.
    pub parallelism: Parallelism,
    /// Routing specialization: CPWL program requests compiled at this
    /// granularity prefer this shard (after session pinning, before the
    /// general [`RoutePolicy`]), so an SLO class — say, degraded bulk
    /// traffic at a coarse rung — clusters on designated shards, keeps
    /// their per-granularity table caches warm and stays out of the
    /// fine-granularity shards' queues. Purely a routing hint: it never
    /// changes any request's output.
    pub granularity: Option<f32>,
}

/// How the pool's shards execute: as threads in this process, or as
/// spawned worker processes behind the cross-host wire protocol.
///
/// Both backends run the *same* `BatchEngine` per shard and the wire
/// format preserves every `f32` bit, so outputs are bit-identical
/// across backends for every admission × routing policy (locked in by
/// `tests/integration_cross_host.rs`).
#[derive(Debug, Clone, Default)]
pub enum ShardBackend {
    /// One thread per shard inside this process (the default).
    #[default]
    InProcess,
    /// One `onesa-shard-worker` process per shard, connected over a
    /// Unix-domain or TCP socket (see [`crate::net`]). Adds worker-death
    /// failover: a window in flight to a dead worker requeues on a
    /// surviving shard, and [`ShardStats::worker_lost`] /
    /// [`ServeSummary::failovers`] record the event.
    Process(ProcessConfig),
}

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The shard pool; must be non-empty. Shards may be heterogeneous.
    pub shards: Vec<ShardSpec>,
    /// CPWL granularity for every shard's table set.
    pub granularity: f32,
    /// Bound of the submission queue (`0` is treated as `1`):
    /// submissions beyond it block (or fail, for
    /// [`ServeClient::try_submit`]) until admission catches up.
    pub queue_capacity: usize,
    /// Window-closing policy of the admission thread.
    pub admission: AdmissionPolicy,
    /// Shard-selection policy.
    pub routing: RoutePolicy,
    /// Start with the admission gate closed: submissions queue up (to
    /// `queue_capacity`) but nothing dispatches until
    /// [`ServeEngine::resume`]. Deterministic tests and benches use this
    /// to pre-load a queue and open the gate in one motion.
    pub paused: bool,
    /// Where shards run: in-process threads or spawned worker processes.
    pub backend: ShardBackend,
    /// How a closed window orders prefill vs decode steps before
    /// routing (see [`InterleavePolicy`]).
    pub interleave: InterleavePolicy,
    /// Most sessions resident at once (`0` is treated as `1`): opening
    /// one past the cap evicts the least-recently-used idle session,
    /// counted in [`SessionSummary::evicted_overflow`].
    pub session_capacity: usize,
    /// Overload degrade ladder (`None`, the default, disables
    /// degrading; see [`DegradePolicy`]).
    pub degrade: Option<DegradePolicy>,
    /// Shard power management (see [`PoolPolicy`]).
    pub pool: PoolPolicy,
}

impl ServeConfig {
    /// A homogeneous pool: `shards` identical arrays, paper-default 0.25
    /// CPWL granularity, a 256-request queue, FIFO windows of 64 and
    /// round-robin routing.
    pub fn uniform(shards: usize, config: ArrayConfig, parallelism: Parallelism) -> Self {
        ServeConfig {
            shards: (0..shards.max(1))
                .map(|_| ShardSpec {
                    config: config.clone(),
                    parallelism,
                    granularity: None,
                })
                .collect(),
            granularity: 0.25,
            queue_capacity: 256,
            admission: AdmissionPolicy::default(),
            routing: RoutePolicy::default(),
            paused: false,
            backend: ShardBackend::default(),
            interleave: InterleavePolicy::default(),
            session_capacity: 64,
            degrade: None,
            pool: PoolPolicy::default(),
        }
    }

    /// Replaces the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Replaces the routing policy.
    pub fn with_routing(mut self, routing: RoutePolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the submission-queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Starts the engine with the admission gate closed (see
    /// [`ServeConfig::paused`]).
    pub fn start_paused(mut self) -> Self {
        self.paused = true;
        self
    }

    /// Replaces the shard backend (see [`ShardBackend`]).
    pub fn with_backend(mut self, backend: ShardBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the prefill/decode interleave policy.
    pub fn with_interleave(mut self, interleave: InterleavePolicy) -> Self {
        self.interleave = interleave;
        self
    }

    /// Replaces the session-table capacity.
    pub fn with_session_capacity(mut self, capacity: usize) -> Self {
        self.session_capacity = capacity;
        self
    }

    /// Installs an overload degrade ladder (see [`DegradePolicy`]).
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = Some(degrade);
        self
    }

    /// Replaces the shard power policy (see [`PoolPolicy`]).
    pub fn with_pool(mut self, pool: PoolPolicy) -> Self {
        self.pool = pool;
        self
    }

    /// Marks shard `index` as specialized for CPWL programs compiled at
    /// `granularity` (see [`ShardSpec::granularity`]). Out-of-range
    /// indices are ignored.
    pub fn with_shard_granularity(mut self, index: usize, granularity: f32) -> Self {
        if let Some(spec) = self.shards.get_mut(index) {
            spec.granularity = Some(granularity);
        }
        self
    }
}

/// Errors of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The engine was finished (or dropped): the submission queue no
    /// longer accepts requests.
    QueueClosed,
    /// The request failed validation or execution on its shard.
    Exec(TensorError),
    /// The request was already past its deadline when its admission
    /// window closed (only under [`AdmissionPolicy::Deadline`] with
    /// `drop_expired`); it was never dispatched.
    DeadlineExpired {
        /// The deadline the request carried (µs since engine start).
        deadline_us: u64,
        /// The admission clock when the window closed (same epoch).
        now_us: u64,
    },
    /// A worker thread disappeared without answering (it panicked, or —
    /// for a submission racing with `finish()` — the engine tore down
    /// before the reply could be produced).
    WorkerLost,
    /// The session id is not in the table: never opened, closed, or
    /// evicted (deadline expiry / capacity overflow).
    SessionUnknown(SessionId),
    /// The session already has a step queued or executing; a session
    /// admits one step at a time (wait the previous ticket first).
    SessionBusy(SessionId),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueClosed => write!(f, "serve queue is closed"),
            ServeError::Exec(e) => write!(f, "request failed on its shard: {e}"),
            ServeError::DeadlineExpired {
                deadline_us,
                now_us,
            } => write!(
                f,
                "request expired before dispatch (deadline {deadline_us} us, window closed at {now_us} us)"
            ),
            ServeError::WorkerLost => write!(f, "serve worker lost before replying"),
            ServeError::SessionUnknown(id) => {
                write!(f, "session {id} is unknown (never opened, closed, or evicted)")
            }
            ServeError::SessionBusy(id) => {
                write!(f, "session {id} already has a step in flight")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Non-blocking submission failure; both variants hand the request back
/// so the caller can retry, redirect or drop it deliberately.
#[derive(Debug)]
pub enum TrySubmitError {
    /// The bounded queue is at capacity (backpressure).
    Full(Request),
    /// The engine is finished.
    Closed(Request),
}

impl fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySubmitError::Full(_) => write!(f, "serve queue is full"),
            TrySubmitError::Closed(_) => write!(f, "serve queue is closed"),
        }
    }
}

impl std::error::Error for TrySubmitError {}

/// What one request gets back from the pool.
#[derive(Debug, Clone)]
pub struct ServedOutcome {
    /// The ticket this outcome answers.
    pub ticket: TicketId,
    /// Index of the shard that executed the request.
    pub shard: usize,
    /// Global dispatch position: the order in which the admitter handed
    /// requests to shards. Equals submission order under FIFO; the
    /// deadline policy may reorder within a window.
    pub dispatch_seq: u64,
    /// The request's output, bit-identical to a solo sequential run.
    pub output: Tensor,
    /// Simulated array stats for the request's own shape (what a solo
    /// run would have cost; for a program request, the merge of
    /// [`ServedOutcome::op_stats`]).
    pub stats: ExecStats,
    /// Per-op solo stats of a whole-network program request, in stage
    /// order (empty for plain GEMM/nonlinear requests).
    pub op_stats: Vec<ExecStats>,
    /// Host seconds between submission and the start of the executing
    /// batch (admission + routing + shard queueing delay).
    pub queue_seconds: f64,
    /// `Some` when the admitter served this request at a coarser CPWL
    /// granularity than submitted (see [`DegradePolicy`]); the output
    /// is bit-identical to a solo run compiled at
    /// [`DegradeInfo::served`].
    pub degrade: Option<DegradeInfo>,
}

/// Handle to one in-flight request (from [`ServeClient::submit`]).
///
/// Results are buffered: waiting after [`ServeEngine::finish`] still
/// returns the outcome.
#[derive(Debug)]
#[must_use = "a Ticket is the only handle to its request's output — dropping it discards the result"]
pub struct Ticket {
    id: TicketId,
    rx: Receiver<Result<ServedOutcome, ServeError>>,
}

impl Ticket {
    /// The id assigned at submission (monotonic across the engine).
    pub fn id(&self) -> TicketId {
        self.id
    }

    /// Blocks until the request's outcome arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::Exec`] if the request failed on its shard,
    /// [`ServeError::WorkerLost`] if the pool died before answering.
    pub fn wait(self) -> Result<ServedOutcome, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerLost)?
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<ServedOutcome, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }
}

/// Everything a shard did over one engine lifetime.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (position in [`ServeConfig::shards`]).
    pub shard: usize,
    /// Requests this shard served.
    pub requests: usize,
    /// Dispatched batches this shard executed.
    pub batches: usize,
    /// Coalesced GEMM kernel calls across those batches.
    pub gemm_groups: usize,
    /// Coalesced IPF + MHP passes across those batches.
    pub nonlinear_groups: usize,
    /// Multiply-accumulates this shard performed.
    pub macs: u64,
    /// Simulated array seconds this shard's batched schedules took. The
    /// maximum across shards is the pool's makespan.
    pub array_seconds: f64,
    /// Host seconds this shard's worker spent executing batches.
    pub busy_seconds: f64,
    /// `busy_seconds` over the engine's wall lifetime: the fraction of
    /// time this shard's worker was doing work rather than waiting.
    pub occupancy: f64,
    /// Most batches ever observed waiting in this shard's channel at
    /// once (peak queue depth behind the router): at most the channel
    /// bound plus the one batch the admitter may be blocked handing
    /// over.
    pub peak_queue_depth: usize,
    /// Optimizer pass totals of the program requests this shard served
    /// (see `ServingReport::opt`).
    pub opt: OptTotals,
    /// Weight column blocks the sparse GEMM kernel skipped on this
    /// shard (see `ServingReport::blocks_skipped`).
    pub blocks_skipped: u64,
    /// Total column blocks of the sparsity-attributed GEMMs this shard
    /// served (see `ServingReport::blocks_total`).
    pub blocks_total: u64,
    /// Process backend only: this shard's worker process died
    /// (EOF/ping timeout) during the run and its in-flight windows were
    /// requeued on surviving shards.
    pub worker_lost: bool,
    /// Process backend only: requests this shard's proxy re-executed on
    /// *another* shard's worker after a connection failed (its own
    /// worker's, or a dead peer it was asked to cover for).
    pub requeued: usize,
    /// Process backend only: weight-cache accounting of this shard's
    /// worker connection — how often program consts actually crossed
    /// the wire. All zeros for in-process shards (consts never leave
    /// the address space) and for workers that died before shutdown.
    pub wire_cache: WeightCacheStats,
}

/// Aggregate result of one [`ServeEngine`] lifetime.
#[derive(Debug, Clone)]
#[must_use = "a ServeSummary is the engine's only aggregate report — dropping it discards the run's accounting"]
pub struct ServeSummary {
    /// Pool-wide totals in the same shape synchronous batching reports:
    /// `batched_seconds` is the **makespan** (busiest shard — the
    /// simulated arrays run concurrently), `unbatched_seconds` the cost
    /// of serving every request alone on a single array, and
    /// `latencies` are ordered by ticket id over the *successfully
    /// served* requests (rejected requests produce no latency entry, so
    /// after a failure entry `i` no longer equals ticket `i`). The
    /// group counts are summed across shard-batches — see
    /// [`ServingReport::gemm_groups`].
    pub report: ServingReport,
    /// Per-shard occupancy, throughput and queue statistics.
    pub shards: Vec<ShardStats>,
    /// Batching windows the admission thread closed.
    pub windows: usize,
    /// Requests dropped at window close because their deadline had
    /// already passed ([`AdmissionPolicy::Deadline`] with
    /// `drop_expired`); their tickets resolved with
    /// [`ServeError::DeadlineExpired`]. With a [`DegradePolicy`]
    /// installed, only requests the ladder could not rescue count here.
    pub expired: usize,
    /// Requests the admitter served at a coarser CPWL granularity than
    /// submitted (their outcomes carry [`ServedOutcome::degrade`]);
    /// every served request is either exact or degraded, never dropped
    /// while the ladder has rungs.
    pub degraded: usize,
    /// Modeled pool energy accounting (see [`PowerSummary`]); all-zero
    /// for a run that dispatched no windows.
    pub power: PowerSummary,
    /// Most requests ever observed waiting in the submission queue at
    /// once. Single-producer submission keeps this at most
    /// [`ServeConfig::queue_capacity`]; concurrent producers blocked in
    /// `submit` can momentarily be counted on top of a full queue.
    pub peak_queue_depth: usize,
    /// Process backend only: shards whose worker process died during
    /// the run (each one's in-flight windows requeued on survivors).
    pub failovers: usize,
    /// Process backend only: pool-wide weight-cache accounting (the
    /// per-shard [`ShardStats::wire_cache`] counters merged).
    pub wire_cache: WeightCacheStats,
    /// Latency/throughput accounting of the prompt passes of decoding
    /// sessions (empty for a session-free run).
    pub prefill: PhaseStats,
    /// Latency/throughput accounting of the decode steps of decoding
    /// sessions (empty for a session-free run).
    pub decode: PhaseStats,
    /// Session-table lifetime counters; see [`SessionSummary`] for the
    /// no-orphaned-entries invariant.
    pub sessions: SessionSummary,
}

impl ServeSummary {
    /// Modeled serving speedup of the pool over one array serving the
    /// queue request-at-a-time: `unbatched / makespan`. Combines the
    /// coalescing win (shared weight loads, shared IPF) with the
    /// sharding win (arrays in parallel); deterministic, unlike host
    /// wall-clock. Returns 1.0 for an empty run.
    pub fn modeled_speedup(&self) -> f64 {
        self.report.batching_speedup()
    }

    /// Generated tokens per host wall-clock second across every
    /// session's decode steps (0.0 for a session-free run).
    pub fn decode_tokens_per_second(&self) -> f64 {
        self.decode.tokens_per_second(self.report.wall_seconds)
    }

    /// Modeled joules per served request (0.0 for an empty run) — the
    /// efficiency number the elastic pool is judged on.
    pub fn modeled_joules_per_request(&self) -> f64 {
        if self.report.requests > 0 {
            self.power.modeled_joules / self.report.requests as f64
        } else {
            0.0
        }
    }

    /// Fraction of served requests that were degraded (0.0 for an
    /// empty run).
    pub fn degraded_fraction(&self) -> f64 {
        if self.report.requests > 0 {
            self.degraded as f64 / self.report.requests as f64
        } else {
            0.0
        }
    }
}

impl fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} requests over {} shards in {} windows: {:.3} ms wall ({:.0} req/s)",
            self.report.requests,
            self.shards.len(),
            self.windows,
            self.report.wall_seconds * 1e3,
            self.report.wall_rps()
        )?;
        writeln!(
            f,
            "array makespan {:.3} ms vs {:.3} ms solo-on-one-array ({:.2}x modeled), \
             peak queue {}, expired {}, degraded {}",
            self.report.batched_seconds * 1e3,
            self.report.unbatched_seconds * 1e3,
            self.modeled_speedup(),
            self.peak_queue_depth,
            self.expired,
            self.degraded
        )?;
        let p = &self.power;
        if p.active_shard_windows + p.idle_shard_windows + p.off_shard_windows > 0 {
            writeln!(
                f,
                "power: {:.3} mJ modeled ({:.3} mJ/req), shard-windows {} active / {} idle / \
                 {} off, {} power-ups, {} power-downs",
                p.modeled_joules * 1e3,
                self.modeled_joules_per_request() * 1e3,
                p.active_shard_windows,
                p.idle_shard_windows,
                p.off_shard_windows,
                p.power_ups,
                p.power_downs
            )?;
        }
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: {:>4} req in {:>3} batches ({} gemm + {} nl groups), \
                 {:.3} ms array, occupancy {:.0}%, peak depth {}",
                s.shard,
                s.requests,
                s.batches,
                s.gemm_groups,
                s.nonlinear_groups,
                s.array_seconds * 1e3,
                s.occupancy * 100.0,
                s.peak_queue_depth
            )?;
        }
        if self.failovers > 0 {
            writeln!(
                f,
                "failovers: {} worker(s) lost, in-flight windows requeued on survivors",
                self.failovers
            )?;
        }
        let cache = &self.wire_cache;
        if cache.full_sends + cache.ref_sends > 0 {
            writeln!(
                f,
                "weight cache: {} full / {} ref sends ({:.0}% hit), {} const bytes saved",
                cache.full_sends,
                cache.ref_sends,
                cache.hit_ratio() * 100.0,
                cache.const_bytes_saved
            )?;
        }
        if self.sessions.opened > 0 {
            writeln!(
                f,
                "sessions: {} opened, {} closed, {} expired, {} overflowed, {} live",
                self.sessions.opened,
                self.sessions.closed,
                self.sessions.evicted_deadline,
                self.sessions.evicted_overflow,
                self.sessions.live
            )?;
            writeln!(
                f,
                "phases: prefill {} req ({} tokens) p50 {:.1} us | decode {} steps p50 {:.1} us, \
                 {:.0} tokens/s",
                self.prefill.requests,
                self.prefill.tokens,
                self.prefill.latency_percentile(50.0) * 1e6,
                self.decode.requests,
                self.decode.latency_percentile(50.0) * 1e6,
                self.decode_tokens_per_second()
            )?;
        }
        write!(
            f,
            "latency p50/p95/p99: {:.1} / {:.1} / {:.1} us",
            self.report.latency_percentile(50.0) * 1e6,
            self.report.latency_percentile(95.0) * 1e6,
            self.report.latency_percentile(99.0) * 1e6
        )
    }
}

// ---------------------------------------------------------------------
// internal plumbing
// ---------------------------------------------------------------------

/// What clients push into the submission queue.
enum Msg {
    Work(Submission),
    /// Sent by `finish`: dispatch the backlog, then stop. Lets the
    /// engine shut down without waiting for every cloned client to drop.
    Drain,
}

/// Session tag riding on a submission: which session, which phase, and
/// how many tokens the step covers (prompt length / 1).
#[derive(Debug, Clone, Copy)]
struct SessionTag {
    id: SessionId,
    phase: Phase,
    tokens: u64,
}

struct Submission {
    ticket: TicketId,
    deadline: Option<u64>,
    submitted_at: Instant,
    request: Request,
    session: Option<SessionTag>,
    /// Set once the admitter re-compiles the request at a coarser
    /// granularity; later degrades extend it (`requested` is sticky).
    degrade: Option<DegradeInfo>,
    reply: Sender<Result<ServedOutcome, ServeError>>,
}

struct WorkItem {
    ticket: TicketId,
    dispatch_seq: u64,
    /// Index of the admission window that dispatched this item (the
    /// per-window energy accounting key).
    window: usize,
    submitted_at: Instant,
    request: Request,
    session: Option<SessionTag>,
    degrade: Option<DegradeInfo>,
    reply: Sender<Result<ServedOutcome, ServeError>>,
}

type ShardBatch = Vec<WorkItem>;

/// Current/peak gauge for a bounded queue.
#[derive(Debug, Default)]
struct DepthGauge {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl DepthGauge {
    fn inc(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    /// Raises the count without touching the peak; callers record the
    /// peak themselves once the enqueue is known to have succeeded (a
    /// rejected `try_submit` must not register as observed depth).
    fn inc_tentative(&self) {
        self.current.fetch_add(1, Ordering::SeqCst);
    }

    fn record_peak(&self) {
        self.peak
            .fetch_max(self.current.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    fn dec(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }

    fn current(&self) -> usize {
        self.current.load(Ordering::SeqCst)
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }
}

/// The pause gate in front of the admission loop.
#[derive(Debug)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new(open: bool) -> Self {
        Gate {
            open: Mutex::new(open),
            cv: Condvar::new(),
        }
    }

    fn open(&self) {
        let mut open = self.open.lock().expect("gate lock");
        *open = true;
        self.cv.notify_all();
    }

    fn close(&self) {
        let mut open = self.open.lock().expect("gate lock");
        *open = false;
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().expect("gate lock");
        while !*open {
            open = self.cv.wait(open).expect("gate lock");
        }
    }
}

/// Cloneable submission handle; every clone shares the same bounded
/// queue and ticket sequence, so any number of producer threads can feed
/// one pool.
#[derive(Debug, Clone)]
pub struct ServeClient {
    tx: SyncSender<Msg>,
    next: Arc<AtomicU64>,
    depth: Arc<DepthGauge>,
    sessions: Arc<SessionTable>,
}

impl ServeClient {
    fn make(
        &self,
        request: Request,
        deadline: Option<u64>,
        session: Option<SessionTag>,
    ) -> (Submission, Ticket) {
        let id = self.next.fetch_add(1, Ordering::SeqCst);
        let (reply, rx) = mpsc::channel();
        (
            Submission {
                ticket: id,
                deadline,
                submitted_at: Instant::now(),
                request,
                session,
                degrade: None,
                reply,
            },
            Ticket { id, rx },
        )
    }

    /// Submits a request, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueClosed`] after [`ServeEngine::finish`].
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        self.submit_inner(request, None)
    }

    /// Submits with a deadline priority key (smaller = more urgent; any
    /// unit, typically µs since an epoch the caller picks). Only the
    /// [`AdmissionPolicy::Deadline`] policy reads it.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueClosed`] after [`ServeEngine::finish`].
    pub fn submit_with_deadline(
        &self,
        request: Request,
        deadline: u64,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(request, Some(deadline))
    }

    fn submit_inner(&self, request: Request, deadline: Option<u64>) -> Result<Ticket, ServeError> {
        self.submit_tagged(request, deadline, None)
    }

    fn submit_tagged(
        &self,
        request: Request,
        deadline: Option<u64>,
        session: Option<SessionTag>,
    ) -> Result<Ticket, ServeError> {
        let (sub, ticket) = self.make(request, deadline, session);
        self.depth.inc_tentative();
        match self.tx.send(Msg::Work(sub)) {
            Ok(()) => {
                self.depth.record_peak();
                Ok(ticket)
            }
            Err(_) => {
                self.depth.dec();
                if let Some(tag) = session {
                    self.sessions.release(tag.id);
                }
                Err(ServeError::QueueClosed)
            }
        }
    }

    /// Non-blocking submit: fails fast with the request handed back when
    /// the queue is full (backpressure signal) or closed.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Full`] at capacity, [`TrySubmitError::Closed`]
    /// after [`ServeEngine::finish`]; both return the request.
    pub fn try_submit(&self, request: Request) -> Result<Ticket, TrySubmitError> {
        let (sub, ticket) = self.make(request, None, None);
        self.depth.inc_tentative();
        match self.tx.try_send(Msg::Work(sub)) {
            Ok(()) => {
                self.depth.record_peak();
                Ok(ticket)
            }
            Err(TrySendError::Full(Msg::Work(sub))) => {
                self.depth.dec();
                Err(TrySubmitError::Full(sub.request))
            }
            Err(TrySendError::Disconnected(Msg::Work(sub))) => {
                self.depth.dec();
                Err(TrySubmitError::Closed(sub.request))
            }
            Err(_) => unreachable!("clients only send Work messages"),
        }
    }

    /// Submits a compiled whole-network program as one request (see
    /// [`ServeEngine::submit_program`]).
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit`].
    pub fn submit_program(
        &self,
        program: crate::Program,
        inputs: Vec<Tensor>,
    ) -> Result<Ticket, ServeError> {
        self.submit(Request::program(program, inputs))
    }

    /// Requests currently waiting in the submission queue.
    pub fn queued(&self) -> usize {
        self.depth.current()
    }

    // -- decoding sessions ------------------------------------------------

    /// Opens a decoding session: an entry in the host-resident session
    /// table that will hold the session's KV tensors across admission
    /// windows until [`ServeClient::close_session`] or eviction. At
    /// [`ServeConfig::session_capacity`] the least-recently-used idle
    /// session is evicted to make room.
    pub fn open_session(&self) -> SessionId {
        self.sessions.open()
    }

    /// Closes a session, freeing its KV tensors. Returns whether the
    /// session was still resident (false: already closed or evicted).
    pub fn close_session(&self, id: SessionId) -> bool {
        self.sessions.close(id)
    }

    /// Submits a session's prompt pass: a session-bearing program (its
    /// session outputs become the cache) over the whole prompt.
    /// `prompt_tokens` is the prompt length, counted into
    /// [`PhaseStats::tokens`]. The session admits one step at a time.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionUnknown`] / [`ServeError::SessionBusy`] at
    /// the table, otherwise as for [`ServeClient::submit`].
    pub fn submit_prefill(
        &self,
        id: SessionId,
        program: crate::Program,
        inputs: Vec<Tensor>,
        prompt_tokens: usize,
    ) -> Result<Ticket, ServeError> {
        self.submit_prefill_with_deadline(id, program, inputs, prompt_tokens, None)
    }

    /// [`ServeClient::submit_prefill`] with a deadline priority key
    /// (see [`ServeClient::submit_with_deadline`]; under drop-on-expiry
    /// an expired step evicts the **whole session**).
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit_prefill`].
    pub fn submit_prefill_with_deadline(
        &self,
        id: SessionId,
        program: crate::Program,
        inputs: Vec<Tensor>,
        prompt_tokens: usize,
        deadline: Option<u64>,
    ) -> Result<Ticket, ServeError> {
        let _ = self.sessions.checkout(id)?; // a prefill binds no cache
        self.submit_tagged(
            Request::program(program, inputs),
            deadline,
            Some(SessionTag {
                id,
                phase: Phase::Prefill,
                tokens: prompt_tokens as u64,
            }),
        )
    }

    /// Submits one decode step: the session's current KV tensors are
    /// bound as the program's session inputs **after** `step_inputs`
    /// (matching `Program::session_input` declaration order), and the
    /// step's session outputs are written back into the table before
    /// the ticket resolves — so a caller that has seen the reply can
    /// immediately submit the next step.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit_prefill`].
    pub fn submit_decode(
        &self,
        id: SessionId,
        program: crate::Program,
        step_inputs: Vec<Tensor>,
    ) -> Result<Ticket, ServeError> {
        self.submit_decode_with_deadline(id, program, step_inputs, None)
    }

    /// [`ServeClient::submit_decode`] with a deadline priority key
    /// (see [`ServeClient::submit_with_deadline`]; under drop-on-expiry
    /// an expired step evicts the **whole session**).
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit_prefill`].
    pub fn submit_decode_with_deadline(
        &self,
        id: SessionId,
        program: crate::Program,
        step_inputs: Vec<Tensor>,
        deadline: Option<u64>,
    ) -> Result<Ticket, ServeError> {
        let kv = self.sessions.checkout(id)?;
        let mut inputs = step_inputs;
        inputs.extend(kv);
        self.submit_tagged(
            Request::program(program, inputs),
            deadline,
            Some(SessionTag {
                id,
                phase: Phase::Decode,
                tokens: 1,
            }),
        )
    }

    /// The session's current KV tensors (a clone), in the program's
    /// session-output order. `None` if the session is gone; empty before
    /// its prefill completes.
    pub fn session_kv(&self, id: SessionId) -> Option<Vec<Tensor>> {
        self.sessions.kv(id)
    }

    /// Rows of the session's first cache tensor — the attended context
    /// length. `None` if the session is gone, 0 before prefill.
    pub fn session_context_rows(&self, id: SessionId) -> Option<usize> {
        self.sessions.context_rows(id)
    }

    /// Decode steps the session has completed (tokens generated).
    pub fn session_tokens(&self, id: SessionId) -> Option<u64> {
        self.sessions.tokens(id)
    }

    /// Sessions currently resident in the table.
    pub fn live_sessions(&self) -> usize {
        self.sessions.live()
    }
}

// ---------------------------------------------------------------------
// the engine
// ---------------------------------------------------------------------

/// Per-request accounting a shard sends back at shutdown (the outcome
/// itself went to the ticket).
struct ReqRecord {
    ticket: TicketId,
    seconds: f64,
    macs: u64,
    nonlinear_evals: u64,
    /// Session phase of the request (`None` for plain requests).
    phase: Option<Phase>,
    /// Tokens the request covered (0 for plain requests).
    tokens: u64,
}

/// Modeled execution of one admission window on one shard, for the
/// energy accounting in `ServeEngine::shutdown`.
struct WindowRecord {
    window: usize,
    seconds: f64,
    macs: u64,
}

struct ShardOut {
    stats: ShardStats,
    records: Vec<ReqRecord>,
    window_records: Vec<WindowRecord>,
}

/// Per-shard power-model constants, precomputed at `start`.
#[derive(Debug)]
struct ShardPowerSpec {
    model: PowerModel,
    cost: ModuleCost,
    peak_macs_per_second: f64,
}

impl ShardPowerSpec {
    fn new(config: &ArrayConfig) -> Self {
        ShardPowerSpec {
            model: PowerModel::virtex7(),
            cost: ArrayResources::calibrated().total(Design::OneSa, config.dim, config.macs_per_pe),
            peak_macs_per_second: config.peak_macs_per_cycle() as f64 * config.clock_mhz * 1e6,
        }
    }

    /// Modeled joules one MAC costs at full activity — the
    /// [`RoutePolicy::EnergyAware`] weight.
    fn energy_per_mac(&self) -> f64 {
        self.model.power_at_utilization(&self.cost, 1.0) / self.peak_macs_per_second
    }

    /// Modeled watts while powered but executing nothing.
    fn idle_watts(&self) -> f64 {
        self.model.power_at_utilization(&self.cost, 0.0)
    }
}

/// The asynchronous sharded serving engine. See the [module docs](self).
#[derive(Debug)]
pub struct ServeEngine {
    client: ServeClient,
    gate: Arc<Gate>,
    started: Instant,
    n_shards: usize,
    admitter: Option<JoinHandle<AdmitOut>>,
    workers: Vec<JoinHandle<ShardOut>>,
    /// Process backend: one pid per shard; empty in-process.
    worker_pids: Vec<u32>,
    sessions: Arc<SessionTable>,
    /// Per-shard power-model constants for the energy accounting.
    power_specs: Vec<ShardPowerSpec>,
}

/// What the admission thread reports at shutdown.
struct AdmitOut {
    windows: usize,
    expired: usize,
    degraded: usize,
    /// Per-window snapshot of every shard's power state at dispatch.
    power_log: Vec<Vec<ShardPower>>,
    power_ups: u64,
    power_downs: u64,
}

impl ServeEngine {
    /// Builds every shard's engine, spawns the admission thread and one
    /// worker per shard, and (unless [`ServeConfig::paused`]) opens the
    /// admission gate.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] for an empty shard list or a
    /// granularity the CPWL table builder rejects.
    pub fn start(cfg: ServeConfig) -> Result<ServeEngine, TensorError> {
        if cfg.shards.is_empty() {
            return Err(TensorError::InvalidArgument(
                "serve pool needs at least one shard",
            ));
        }
        if let Some(policy) = &cfg.degrade {
            if policy.ladder.is_empty() {
                return Err(TensorError::InvalidArgument(
                    "degrade ladder needs at least one rung",
                ));
            }
            let mut prev = 0.0f32;
            for &g in &policy.ladder {
                if !(g.is_finite() && g > prev) {
                    return Err(TensorError::InvalidArgument(
                        "degrade ladder must be finite, positive and strictly coarsening",
                    ));
                }
                prev = g;
            }
        }
        let n = cfg.shards.len();

        let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.queue_capacity.max(1));
        let gate = Arc::new(Gate::new(!cfg.paused));
        let sessions = Arc::new(SessionTable::new(cfg.session_capacity));
        let queue_depth = Arc::new(DepthGauge::default());
        let loads: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let shard_depths: Vec<Arc<DepthGauge>> =
            (0..n).map(|_| Arc::new(DepthGauge::default())).collect();

        let mut shard_txs = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        let mut worker_pids = Vec::new();
        match &cfg.backend {
            ShardBackend::InProcess => {
                let engines: Vec<BatchEngine> = cfg
                    .shards
                    .iter()
                    .map(|spec| {
                        BatchEngine::new(
                            OneSa::with_parallelism(spec.config.clone(), spec.parallelism),
                            cfg.granularity,
                        )
                    })
                    .collect::<Result<_, _>>()?;
                for (i, engine) in engines.into_iter().enumerate() {
                    let (btx, brx) = mpsc::sync_channel::<ShardBatch>(SHARD_CHANNEL_DEPTH);
                    shard_txs.push(btx);
                    let load = Arc::clone(&loads[i]);
                    let depth = Arc::clone(&shard_depths[i]);
                    let sess = Arc::clone(&sessions);
                    let handle = thread::Builder::new()
                        .name(format!("onesa-shard-{i}"))
                        .spawn(move || shard_loop(i, brx, engine, load, depth, sess))
                        .expect("spawn shard worker");
                    workers.push(handle);
                }
            }
            ShardBackend::Process(pcfg) => {
                // Spawn every worker process and complete its handshake
                // before any thread starts: a missing binary or a
                // version-skewed worker fails `start` instead of
                // surfacing later as a dead shard. A failure here drops
                // the already-spawned handles, which reaps their
                // children.
                let mut conns: Vec<Arc<Mutex<Option<net::WorkerHandle>>>> = Vec::with_capacity(n);
                for (i, spec) in cfg.shards.iter().enumerate() {
                    let handle = net::WorkerHandle::spawn(
                        i,
                        pcfg.transport,
                        pcfg.worker.as_ref(),
                        &spec.config,
                        spec.parallelism,
                        cfg.granularity,
                    )
                    .map_err(|e| {
                        eprintln!("onesa-serve: shard {i} worker spawn failed: {e}");
                        TensorError::InvalidArgument(
                            "failed to spawn a shard worker process (see stderr)",
                        )
                    })?;
                    worker_pids.push(handle.pid());
                    conns.push(Arc::new(Mutex::new(Some(handle))));
                }
                let alive: Vec<Arc<AtomicBool>> =
                    (0..n).map(|_| Arc::new(AtomicBool::new(true))).collect();
                for (i, depth) in shard_depths.iter().enumerate() {
                    let (btx, brx) = mpsc::sync_channel::<ShardBatch>(SHARD_CHANNEL_DEPTH);
                    shard_txs.push(btx);
                    let ctx = RemoteShardCtx {
                        shard: i,
                        rx: brx,
                        conns: conns.clone(),
                        alive: alive.clone(),
                        loads: loads.clone(),
                        depth: Arc::clone(depth),
                        sessions: Arc::clone(&sessions),
                    };
                    let handle = thread::Builder::new()
                        .name(format!("onesa-shard-proxy-{i}"))
                        .spawn(move || remote_shard_loop(ctx))
                        .expect("spawn shard proxy");
                    workers.push(handle);
                }
            }
        }

        // The admitter validates every request before routing it, so a
        // malformed request is rejected at the queue instead of riding
        // into (and poisoning) a shard's batch. Validation only needs
        // the table set, so any shard's geometry works as the template.
        let validator =
            BatchEngine::new(OneSa::new(cfg.shards[0].config.clone()), cfg.granularity)?;
        let power_specs: Vec<ShardPowerSpec> = cfg
            .shards
            .iter()
            .map(|spec| ShardPowerSpec::new(&spec.config))
            .collect();
        let admitter = {
            let ctx = AdmitterCtx {
                rx,
                shard_txs,
                shard_depths,
                loads,
                admission: cfg.admission,
                routing: cfg.routing,
                interleave: cfg.interleave,
                degrade: cfg.degrade.clone(),
                pool: cfg.pool,
                energy_per_mac: power_specs.iter().map(|s| s.energy_per_mac()).collect(),
                specialization: cfg.shards.iter().map(|s| s.granularity).collect(),
                recompile: CompileCache::new(),
                gate: Arc::clone(&gate),
                queue_depth: Arc::clone(&queue_depth),
                validator,
                epoch: Instant::now(),
                sessions: Arc::clone(&sessions),
            };
            thread::Builder::new()
                .name("onesa-admitter".to_string())
                .spawn(move || admitter_loop(ctx))
                .expect("spawn admission thread")
        };

        Ok(ServeEngine {
            client: ServeClient {
                tx,
                next: Arc::new(AtomicU64::new(0)),
                depth: queue_depth,
                sessions: Arc::clone(&sessions),
            },
            gate,
            started: Instant::now(),
            n_shards: n,
            admitter: Some(admitter),
            workers,
            worker_pids,
            sessions,
            power_specs,
        })
    }

    /// Process backend only: the shard workers' process ids, indexed by
    /// shard (empty for [`ShardBackend::InProcess`]). The chaos tests
    /// use these to kill a worker mid-run.
    pub fn worker_pids(&self) -> &[u32] {
        &self.worker_pids
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> usize {
        self.n_shards
    }

    /// A cloneable submission handle for producer threads.
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// Opens the admission gate of a [`ServeConfig::paused`] engine
    /// (idempotent).
    pub fn resume(&self) {
        self.gate.open();
    }

    /// Closes the admission gate again, so a wave of submissions can be
    /// staged into **one** admission window mid-run: `pause()`, submit
    /// the wave, `resume()`. While paused, the admitter still dequeues
    /// the head request of the next window but blocks before filling or
    /// dispatching it; a window already being filled or executing is
    /// unaffected. This is how a continuous-batching driver keeps the
    /// decode steps of many sessions coalescing even though each round's
    /// inputs only exist after the previous round's outputs: without the
    /// pause, the admitter's greedy fill would dispatch the first step
    /// of a round alone. [`ServeEngine::finish`] reopens the gate, so a
    /// paused engine still drains.
    pub fn pause(&self) {
        self.gate.close();
    }

    /// See [`ServeClient::submit`].
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit`].
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        self.client.submit(request)
    }

    /// See [`ServeClient::submit_with_deadline`].
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit_with_deadline`].
    pub fn submit_with_deadline(
        &self,
        request: Request,
        deadline: u64,
    ) -> Result<Ticket, ServeError> {
        self.client.submit_with_deadline(request, deadline)
    }

    /// See [`ServeClient::try_submit`].
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::try_submit`].
    pub fn try_submit(&self, request: Request) -> Result<Ticket, TrySubmitError> {
        self.client.try_submit(request)
    }

    /// Submits a compiled whole-network program as one request: it
    /// flows through the admission window and shard pool like any
    /// other, coalescing stage by stage with concurrent programs on its
    /// shard (use [`RoutePolicy::WeightAffinity`] to keep same-model
    /// programs together). The ticket's [`ServedOutcome`] carries the
    /// final output plus per-op [`ExecStats`].
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit`].
    pub fn submit_program(
        &self,
        program: crate::Program,
        inputs: Vec<Tensor>,
    ) -> Result<Ticket, ServeError> {
        self.client.submit_program(program, inputs)
    }

    /// Requests currently waiting in the submission queue.
    pub fn pending(&self) -> usize {
        self.client.queued()
    }

    /// See [`ServeClient::open_session`].
    pub fn open_session(&self) -> SessionId {
        self.client.open_session()
    }

    /// See [`ServeClient::close_session`].
    pub fn close_session(&self, id: SessionId) -> bool {
        self.client.close_session(id)
    }

    /// See [`ServeClient::submit_prefill`].
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit_prefill`].
    pub fn submit_prefill(
        &self,
        id: SessionId,
        program: crate::Program,
        inputs: Vec<Tensor>,
        prompt_tokens: usize,
    ) -> Result<Ticket, ServeError> {
        self.client
            .submit_prefill(id, program, inputs, prompt_tokens)
    }

    /// See [`ServeClient::submit_decode`].
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::submit_decode`].
    pub fn submit_decode(
        &self,
        id: SessionId,
        program: crate::Program,
        step_inputs: Vec<Tensor>,
    ) -> Result<Ticket, ServeError> {
        self.client.submit_decode(id, program, step_inputs)
    }

    /// See [`ServeClient::session_kv`].
    pub fn session_kv(&self, id: SessionId) -> Option<Vec<Tensor>> {
        self.client.session_kv(id)
    }

    /// See [`ServeClient::session_context_rows`].
    pub fn session_context_rows(&self, id: SessionId) -> Option<usize> {
        self.client.session_context_rows(id)
    }

    /// See [`ServeClient::session_tokens`].
    pub fn session_tokens(&self, id: SessionId) -> Option<u64> {
        self.client.session_tokens(id)
    }

    /// See [`ServeClient::live_sessions`].
    pub fn live_sessions(&self) -> usize {
        self.client.live_sessions()
    }

    /// Routes a batch of pooled feature vectors through the pool as
    /// shared-weight classifier GEMMs and adds `bias`, exactly the final
    /// layer of `onesa_nn`'s models: sample `i`'s row is bit-identical
    /// to `Linear::infer` on feature `i`. Under
    /// [`RoutePolicy::WeightAffinity`] every sample lands on one shard
    /// and coalesces into a single kernel call. This is how
    /// `onesa_nn::models::{SmallCnn, TinyBert}` batch inference routes
    /// through the pool (see their `pooled_features` / `classifier`
    /// accessors and `examples/sharded_serving.rs`).
    ///
    /// The engine must be running (not paused): this method submits the
    /// whole batch and then waits for it.
    ///
    /// Each sample is a separate serving request, which is the point of
    /// the demonstration — the pool, not the caller, does the
    /// coalescing. That also means `weights` is cloned per sample; for
    /// very large batches against a big classifier, pre-stack the
    /// features into one `[B, channels]` [`Request::gemm`] instead (the
    /// row-stacking is exactly what the engine would do).
    ///
    /// # Errors
    ///
    /// Submission and execution errors as in [`ServeClient::submit`] and
    /// [`Ticket::wait`].
    pub fn classify_batch(
        &self,
        features: &[Tensor],
        weights: &Tensor,
        bias: &[f32],
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        let tickets: Vec<Ticket> = features
            .iter()
            .map(|f| self.submit(Request::gemm(f.clone(), weights.clone())))
            .collect::<Result<_, _>>()?;
        tickets
            .into_iter()
            .map(|t| {
                let served = t.wait()?;
                let mut row = served.output.into_vec();
                for (v, b) in row.iter_mut().zip(bias) {
                    *v += *b;
                }
                Ok(row)
            })
            .collect()
    }

    /// Closes the queue, dispatches the backlog, joins every worker and
    /// aggregates the run. Unwaited tickets stay valid — their outcomes
    /// are buffered. A paused gate is opened first, so a pre-loaded
    /// engine can be finished directly.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerLost`] if a worker thread panicked.
    pub fn finish(mut self) -> Result<ServeSummary, ServeError> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> Result<ServeSummary, ServeError> {
        let admitter = self.admitter.take().ok_or(ServeError::QueueClosed)?;
        self.gate.open();
        // Ask the admitter to dispatch whatever is queued and stop; if it
        // is already gone the join below reports it.
        let _ = self.client.tx.send(Msg::Drain);
        let admitted = admitter.join().map_err(|_| ServeError::WorkerLost)?;
        let mut outs: Vec<ShardOut> = Vec::with_capacity(self.workers.len());
        for handle in self.workers.drain(..) {
            outs.push(handle.join().map_err(|_| ServeError::WorkerLost)?);
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();

        let n_windows = admitted.power_log.len();
        let mut records: Vec<ReqRecord> = Vec::new();
        let mut shards: Vec<ShardStats> = Vec::with_capacity(outs.len());
        // Per (shard, window) modeled batch seconds and MACs, for the
        // energy accounting below.
        let mut exec: Vec<Vec<(f64, u64)>> = vec![vec![(0.0, 0); n_windows]; outs.len()];
        for mut out in outs {
            for rec in &out.window_records {
                if rec.window < n_windows {
                    let slot = &mut exec[out.stats.shard][rec.window];
                    slot.0 += rec.seconds;
                    slot.1 += rec.macs;
                }
            }
            records.append(&mut out.records);
            out.stats.occupancy = if wall_seconds > 0.0 {
                out.stats.busy_seconds / wall_seconds
            } else {
                0.0
            };
            shards.push(out.stats);
        }
        records.sort_by_key(|r| r.ticket);

        // Modeled pool energy: each window lasts as long as its longest
        // shard batch; executing shards pay utilization-scaled power for
        // their batch plus idle power for the remainder, powered idle
        // shards pay idle power throughout, Off shards pay nothing.
        let mut power = PowerSummary {
            power_ups: admitted.power_ups,
            power_downs: admitted.power_downs,
            ..PowerSummary::default()
        };
        for (w, states) in admitted.power_log.iter().enumerate() {
            let window_seconds = (0..states.len())
                .map(|s| exec[s][w].0)
                .fold(0.0f64, f64::max);
            for (s, state) in states.iter().enumerate() {
                let spec = &self.power_specs[s];
                match state {
                    ShardPower::Off => power.off_shard_windows += 1,
                    ShardPower::Active | ShardPower::Idle => {
                        if *state == ShardPower::Active {
                            power.active_shard_windows += 1;
                        } else {
                            power.idle_shard_windows += 1;
                        }
                        let (seconds, macs) = exec[s][w];
                        if seconds > 0.0 {
                            let utilization = macs as f64 / (seconds * spec.peak_macs_per_second);
                            power.modeled_joules +=
                                spec.model.energy_joules(&spec.cost, seconds, utilization);
                            power.modeled_joules +=
                                spec.idle_watts() * (window_seconds - seconds).max(0.0);
                        } else {
                            power.modeled_joules += spec.idle_watts() * window_seconds;
                        }
                    }
                }
            }
        }

        let mut prefill = PhaseStats::default();
        let mut decode = PhaseStats::default();
        for r in &records {
            let bucket = match r.phase {
                Some(Phase::Prefill) => &mut prefill,
                Some(Phase::Decode) => &mut decode,
                None => continue,
            };
            bucket.requests += 1;
            bucket.tokens += r.tokens;
            bucket.latencies.push(r.seconds);
        }

        let mut opt = OptTotals::default();
        let mut wire_cache = WeightCacheStats::default();
        let mut failovers = 0usize;
        for s in &shards {
            opt.merge(&s.opt);
            wire_cache.merge(&s.wire_cache);
            failovers += usize::from(s.worker_lost);
        }
        let report = ServingReport {
            requests: records.len(),
            wall_seconds,
            batched_seconds: shards.iter().map(|s| s.array_seconds).fold(0.0, f64::max),
            unbatched_seconds: records.iter().map(|r| r.seconds).sum(),
            total_macs: records.iter().map(|r| r.macs).sum(),
            total_nonlinear_evals: records.iter().map(|r| r.nonlinear_evals).sum(),
            gemm_groups: shards.iter().map(|s| s.gemm_groups).sum(),
            nonlinear_groups: shards.iter().map(|s| s.nonlinear_groups).sum(),
            latencies: records.iter().map(|r| r.seconds).collect(),
            opt,
            blocks_skipped: shards.iter().map(|s| s.blocks_skipped).sum(),
            blocks_total: shards.iter().map(|s| s.blocks_total).sum(),
        };
        Ok(ServeSummary {
            report,
            shards,
            windows: admitted.windows,
            expired: admitted.expired,
            degraded: admitted.degraded,
            power,
            peak_queue_depth: self.client.depth.peak(),
            failovers,
            wire_cache,
            prefill,
            decode,
            sessions: self.sessions.summary(),
        })
    }
}

impl Drop for ServeEngine {
    /// Tears the pool down if [`ServeEngine::finish`] was never called;
    /// in-flight tickets resolve, the summary is discarded.
    fn drop(&mut self) {
        if self.admitter.is_some() {
            let _ = self.shutdown();
        }
    }
}

// ---------------------------------------------------------------------
// worker threads
// ---------------------------------------------------------------------

struct AdmitterCtx {
    rx: Receiver<Msg>,
    shard_txs: Vec<SyncSender<ShardBatch>>,
    shard_depths: Vec<Arc<DepthGauge>>,
    loads: Vec<Arc<AtomicU64>>,
    admission: AdmissionPolicy,
    routing: RoutePolicy,
    interleave: InterleavePolicy,
    degrade: Option<DegradePolicy>,
    pool: PoolPolicy,
    /// Per-shard modeled joules per MAC at full activity
    /// ([`RoutePolicy::EnergyAware`]'s weight).
    energy_per_mac: Vec<f64>,
    /// Per-shard granularity specialization ([`ShardSpec::granularity`]).
    specialization: Vec<Option<f32>>,
    /// Memo of degrade recompiles, keyed on the coarser mode + the
    /// source program's fingerprint: each (program, rung) pair is
    /// re-compiled at most once per engine lifetime.
    recompile: CompileCache,
    gate: Arc<Gate>,
    queue_depth: Arc<DepthGauge>,
    /// Validation template (same table set as every shard).
    validator: BatchEngine,
    /// Epoch of the drop-on-expiry deadline clock.
    epoch: Instant,
    sessions: Arc<SessionTable>,
}

/// Re-compiles a queued CPWL program request one ladder rung coarser
/// (or, for the expiry rescue, at the coarsest rung), swapping the
/// recompiled program into the submission so every later consumer — the
/// size-capped window budget, least-loaded/energy-aware routing, the
/// shard — sees the *degraded* request's modeled MACs. Returns whether
/// the request changed; plain GEMM/nonlinear requests, exact-mode
/// programs and requests already at (or past) the target rung are left
/// untouched.
fn degrade_submission(
    sub: &mut Submission,
    policy: &DegradePolicy,
    recompile: &CompileCache,
    to_coarsest: bool,
) -> bool {
    let Request::Program { program, .. } = &mut sub.request else {
        return false;
    };
    let EvalMode::Cpwl {
        granularity: current,
        quantize,
    } = program.mode()
    else {
        return false;
    };
    let target = if to_coarsest {
        policy.ladder.last().copied()
    } else {
        policy.ladder.iter().copied().find(|&g| g > current)
    };
    let Some(target) = target else { return false };
    if target <= current {
        return false;
    }
    let mode = EvalMode::Cpwl {
        granularity: target,
        quantize,
    };
    let Ok(recompiled) = recompile.get_or_compile(mode, &[], program.fingerprint(), || {
        program.with_granularity(target)
    }) else {
        return false; // undegradable (should not happen past start validation)
    };
    let requested = sub.degrade.map_or(current, |d| d.requested);
    let rungs = policy
        .ladder
        .iter()
        .filter(|&&g| g > requested && g <= target)
        .count();
    **program = (*recompiled).clone();
    sub.degrade = Some(DegradeInfo {
        requested,
        served: target,
        rungs,
    });
    true
}

/// The [`ShardSpec::granularity`] routing preference: the lowest-index
/// powered shard specialized for this request's CPWL granularity.
fn specialized_shard(
    request: &Request,
    specialization: &[Option<f32>],
    power: &[ShardPower],
) -> Option<usize> {
    let Request::Program { program, .. } = request else {
        return None;
    };
    let g = program.mode().granularity()?;
    specialization
        .iter()
        .zip(power)
        .position(|(spec, p)| *p == ShardPower::Active && *spec == Some(g))
}

/// Returns the windows dispatched, requests expired/degraded and the
/// power-state log.
fn admitter_loop(ctx: AdmitterCtx) -> AdmitOut {
    ctx.gate.wait_open();
    let n = ctx.shard_txs.len();
    let mut windows = 0usize;
    let mut expired = 0usize;
    let mut degraded = 0usize;
    let mut rr = 0usize;
    let mut dispatch_seq = 0u64;
    let mut draining = false;
    // Shard power states, driven per window by the pool policy. Under
    // `AlwaysOn` every shard is routable for the whole run; `Elastic`
    // parks everything past `min_active` until queue pressure (or a
    // pinned session) powers it up.
    let mut power: Vec<ShardPower> = match ctx.pool {
        PoolPolicy::AlwaysOn => vec![ShardPower::Active; n],
        PoolPolicy::Elastic { min_active, .. } => {
            let min_active = min_active.clamp(1, n);
            (0..n)
                .map(|i| {
                    if i < min_active {
                        ShardPower::Active
                    } else {
                        ShardPower::Off
                    }
                })
                .collect()
        }
    };
    let mut surplus = vec![0usize; n];
    let mut power_log: Vec<Vec<ShardPower>> = Vec::new();
    let mut power_ups = 0u64;
    let mut power_downs = 0u64;
    // Reject a malformed request at admission: its ticket resolves with
    // the validation error and it never reaches a shard.
    let admit = |sub: Submission| -> Option<Submission> {
        match ctx.validator.validate(&sub.request) {
            Ok(()) => Some(sub),
            Err(e) => {
                if let Some(tag) = sub.session {
                    ctx.sessions.release(tag.id);
                }
                let _ = sub.reply.send(Err(ServeError::Exec(e)));
                None
            }
        }
    };
    // Window-fill pressure degrade: under queue-depth or deadline-slack
    // pressure, a CPWL program request admits one rung coarser. Runs
    // *before* the window budget accounting below, so a size-capped
    // window's `work` counts the recompiled program's modeled MACs.
    let pressure_degrade = |sub: &mut Submission| {
        let Some(policy) = &ctx.degrade else { return };
        let deep = ctx.queue_depth.current() >= policy.depth_threshold;
        let tight = policy.slack_us > 0
            && sub.deadline.is_some_and(|d| {
                d.saturating_sub(ctx.epoch.elapsed().as_micros() as u64) < policy.slack_us
            });
        if deep || tight {
            let _ = degrade_submission(sub, policy, &ctx.recompile, false);
        }
    };
    loop {
        // Window head: block for it normally; after a Drain marker only
        // the backlog is served.
        let head = if draining {
            match ctx.rx.try_recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        } else {
            match ctx.rx.recv() {
                Ok(m) => m,
                Err(_) => break, // every client dropped
            }
        };
        let head = match head {
            Msg::Work(sub) => sub,
            Msg::Drain => {
                draining = true;
                continue;
            }
        };
        ctx.queue_depth.dec();
        // A paused gate holds the window here, head in hand, until the
        // client finishes staging its wave (see [`ServeEngine::pause`]).
        ctx.gate.wait_open();
        // Only *admitted* requests consume the window budget — a
        // rejected request must not close a size-capped window early
        // and split the valid requests' coalescing opportunity.
        let mut work = 0u64;
        let mut window: Vec<Submission> = Vec::new();
        if let Some(mut sub) = admit(head) {
            pressure_degrade(&mut sub);
            work += sub.request.modeled_macs();
            window.push(sub);
        }
        // Fill greedily from what has already arrived — never wait for
        // stragglers (they catch the next window).
        while !window_full(ctx.admission, window.len(), work) {
            match ctx.rx.try_recv() {
                Ok(Msg::Work(sub)) => {
                    ctx.queue_depth.dec();
                    if let Some(mut sub) = admit(sub) {
                        pressure_degrade(&mut sub);
                        work += sub.request.modeled_macs();
                        window.push(sub);
                    }
                }
                Ok(Msg::Drain) => draining = true,
                Err(_) => break,
            }
        }
        if window.is_empty() {
            continue; // everything was rejected at validation
        }
        windows += 1;
        if let AdmissionPolicy::Deadline { drop_expired, .. } = ctx.admission {
            if drop_expired {
                // Drop-on-expiry: anything already past its deadline at
                // window close resolves as expired instead of running —
                // unless the degrade ladder can rescue it at the
                // coarsest rung (degrade-don't-drop): a late answer at
                // reduced accuracy beats no answer, and the session's
                // KV cache survives.
                let now_us = ctx.epoch.elapsed().as_micros() as u64;
                window.retain_mut(|s| match s.deadline {
                    Some(d) if d < now_us => {
                        if let Some(policy) = &ctx.degrade {
                            if degrade_submission(s, policy, &ctx.recompile, true) {
                                return true;
                            }
                        }
                        expired += 1;
                        // An expired step takes its whole session with
                        // it: the KV cache is useless once the stream
                        // misses its deadline, so evict rather than
                        // strand the tensors until overflow pressure.
                        if let Some(tag) = s.session {
                            ctx.sessions.evict_deadline(tag.id);
                        }
                        let _ = s.reply.send(Err(ServeError::DeadlineExpired {
                            deadline_us: d,
                            now_us,
                        }));
                        false
                    }
                    _ => true,
                });
            }
            // Stable: equal deadlines (and the no-deadline tail) keep
            // arrival order.
            window.sort_by_key(|s| s.deadline.unwrap_or(u64::MAX));
        }
        interleave_window(ctx.interleave, &mut window);

        // Elastic scale-up: a backlog still queued behind this window
        // powers one more shard up before routing sees the window.
        if let PoolPolicy::Elastic { scale_up_depth, .. } = ctx.pool {
            if ctx.queue_depth.current() >= scale_up_depth.max(1) {
                if let Some(s) = power.iter().position(|p| *p != ShardPower::Active) {
                    if power[s] == ShardPower::Off {
                        power_ups += 1;
                    }
                    power[s] = ShardPower::Active;
                }
            }
        }

        let mut per_shard: Vec<ShardBatch> = (0..n).map(|_| Vec::new()).collect();
        for sub in window {
            // A session is pinned to the shard that served its prefill:
            // later steps must land where the policy first put it, or
            // WeightAffinity-per-context-length would scatter one
            // stream's steps (and its write-back ordering) across the
            // pool.
            let pinned = sub.session.and_then(|t| ctx.sessions.pin_of(t.id));
            if let Some(p) = pinned {
                // Pinning wins over power management: a parked shard
                // re-powers rather than scattering a session's steps.
                if power[p] != ShardPower::Active {
                    if power[p] == ShardPower::Off {
                        power_ups += 1;
                    }
                    power[p] = ShardPower::Active;
                }
            }
            let shard = pinned
                .or_else(|| specialized_shard(&sub.request, &ctx.specialization, &power))
                .unwrap_or_else(|| {
                    // The general policies route over the *powered*
                    // shards only (there is always at least one).
                    let active: Vec<usize> = power
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| **p == ShardPower::Active)
                        .map(|(i, _)| i)
                        .collect();
                    match ctx.routing {
                        RoutePolicy::RoundRobin => {
                            let s = active[rr % active.len()];
                            rr += 1;
                            s
                        }
                        RoutePolicy::LeastLoaded => active
                            .iter()
                            .copied()
                            .min_by_key(|&i| (ctx.loads[i].load(Ordering::Relaxed), i))
                            .unwrap_or(0),
                        RoutePolicy::WeightAffinity => {
                            active[(sub.request.affinity_key() % active.len() as u64) as usize]
                        }
                        RoutePolicy::EnergyAware => {
                            let macs = sub.request.modeled_macs();
                            let joules = |i: usize| {
                                ctx.energy_per_mac[i]
                                    * (ctx.loads[i].load(Ordering::Relaxed) + macs) as f64
                            };
                            active
                                .iter()
                                .copied()
                                .min_by(|&a, &b| joules(a).total_cmp(&joules(b)))
                                .unwrap_or(0)
                        }
                    }
                });
            if let Some(tag) = sub.session {
                ctx.sessions.set_pin(tag.id, shard);
            }
            degraded += usize::from(sub.degrade.is_some());
            ctx.loads[shard].fetch_add(sub.request.modeled_macs(), Ordering::Relaxed);
            per_shard[shard].push(WorkItem {
                ticket: sub.ticket,
                dispatch_seq,
                window: windows - 1,
                submitted_at: sub.submitted_at,
                request: sub.request,
                degrade: sub.degrade,
                reply: sub.reply,
                session: sub.session,
            });
            dispatch_seq += 1;
        }

        // Elastic scale-down, drain-before-power-down: an Active shard
        // that routed nothing and holds no outstanding work ages toward
        // Idle (unroutable, still powered); an Idle shard powers off
        // only once its channel and modeled load are both empty, so no
        // admitted window is ever lost to a power transition.
        if let PoolPolicy::Elastic {
            min_active,
            idle_windows,
            ..
        } = ctx.pool
        {
            let min_active = min_active.clamp(1, n);
            for s in 0..n {
                let drained =
                    ctx.loads[s].load(Ordering::Relaxed) == 0 && ctx.shard_depths[s].current() == 0;
                match power[s] {
                    ShardPower::Idle if drained => {
                        power[s] = ShardPower::Off;
                        power_downs += 1;
                    }
                    ShardPower::Active => {
                        if per_shard[s].is_empty() && drained {
                            surplus[s] += 1;
                        } else {
                            surplus[s] = 0;
                        }
                        let routable = power.iter().filter(|p| **p == ShardPower::Active).count();
                        if surplus[s] >= idle_windows.max(1) && routable > min_active {
                            power[s] = ShardPower::Idle;
                            surplus[s] = 0;
                        }
                    }
                    _ => surplus[s] = 0,
                }
            }
        }
        power_log.push(power.clone());

        for (i, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                ctx.shard_depths[i].inc();
                // A full shard channel blocks admission here — bounded
                // backpressure toward the submission queue.
                let _ = ctx.shard_txs[i].send(batch);
            }
        }
    }
    // A submit() racing with finish() can slip a request into the
    // channel buffer after the drain pass above decided to stop. Reject
    // such stragglers explicitly so their tickets resolve as QueueClosed
    // rather than a silent drop.
    while let Ok(msg) = ctx.rx.try_recv() {
        if let Msg::Work(sub) = msg {
            ctx.queue_depth.dec();
            if let Some(tag) = sub.session {
                ctx.sessions.release(tag.id);
            }
            let _ = sub.reply.send(Err(ServeError::QueueClosed));
        }
    }
    AdmitOut {
        windows,
        expired,
        degraded,
        power_log,
        power_ups,
        power_downs,
    }
}

/// Reorders an admission window by phase class. Stable sorts keep
/// deadline (or arrival) order within a class, so the policy only
/// decides which phase's requests front the window — with it, prefill
/// bursts can't starve in-flight decode streams (or vice versa).
/// Sessionless requests sort with prefill.
fn interleave_window(policy: InterleavePolicy, window: &mut [Submission]) {
    let is_decode = |s: &Submission| matches!(s.session.map(|t| t.phase), Some(Phase::Decode));
    match policy {
        InterleavePolicy::Mixed => {}
        InterleavePolicy::PrefillFirst => window.sort_by_key(|s| u8::from(is_decode(s))),
        InterleavePolicy::DecodeFirst => window.sort_by_key(|s| u8::from(!is_decode(s))),
    }
}

fn window_full(policy: AdmissionPolicy, len: usize, work: u64) -> bool {
    match policy {
        AdmissionPolicy::Fifo { window } | AdmissionPolicy::Deadline { window, .. } => {
            len >= window.max(1)
        }
        AdmissionPolicy::SizeCapped { max_macs } => work >= max_macs.max(1),
    }
}

fn shard_loop(
    shard: usize,
    rx: Receiver<ShardBatch>,
    mut engine: BatchEngine,
    load: Arc<AtomicU64>,
    depth: Arc<DepthGauge>,
    sessions: Arc<SessionTable>,
) -> ShardOut {
    struct PendingReply {
        ticket: TicketId,
        dispatch_seq: u64,
        queue_seconds: f64,
        degrade: Option<DegradeInfo>,
        reply: Sender<Result<ServedOutcome, ServeError>>,
        session: Option<SessionTag>,
    }

    let mut out = ShardOut {
        stats: ShardStats {
            shard,
            requests: 0,
            batches: 0,
            gemm_groups: 0,
            nonlinear_groups: 0,
            macs: 0,
            array_seconds: 0.0,
            busy_seconds: 0.0,
            occupancy: 0.0,
            peak_queue_depth: 0,
            opt: OptTotals::default(),
            blocks_skipped: 0,
            blocks_total: 0,
            worker_lost: false,
            requeued: 0,
            wire_cache: WeightCacheStats::default(),
        },
        records: Vec::new(),
        window_records: Vec::new(),
    };
    while let Ok(batch) = rx.recv() {
        depth.dec();
        let batch_macs: u64 = batch.iter().map(|w| w.request.modeled_macs()).sum();
        let batch_window = batch.first().map_or(0, |w| w.window);
        let t0 = Instant::now();
        let mut pending: Vec<PendingReply> = Vec::with_capacity(batch.len());
        for item in batch {
            // The admitter already ran the full validation walk against
            // a same-granularity engine, so the shard enqueues with the
            // validated marker instead of re-walking every request (for
            // whole-network programs that walk is a per-request graph
            // validation + shape inference). The queue-intact-on-error
            // contract holds: `run` still pre-builds table sets, and a
            // batch-level failure is recovered below without replaying
            // the queue.
            engine.submit_validated(item.request);
            pending.push(PendingReply {
                ticket: item.ticket,
                dispatch_seq: item.dispatch_seq,
                queue_seconds: item.submitted_at.elapsed().as_secs_f64(),
                degrade: item.degrade,
                reply: item.reply,
                session: item.session,
            });
        }
        match engine.run() {
            Ok(run) => {
                out.stats.batches += 1;
                out.stats.requests += run.report.requests;
                out.stats.gemm_groups += run.report.gemm_groups;
                out.stats.nonlinear_groups += run.report.nonlinear_groups;
                out.stats.macs += run.report.total_macs;
                out.stats.array_seconds += run.report.batched_seconds;
                out.stats.opt.merge(&run.report.opt);
                out.stats.blocks_skipped += run.report.blocks_skipped;
                out.stats.blocks_total += run.report.blocks_total;
                out.window_records.push(WindowRecord {
                    window: batch_window,
                    seconds: run.report.batched_seconds,
                    macs: run.report.total_macs,
                });
                for (p, mut outcome) in pending.into_iter().zip(run.outcomes) {
                    // Write the grown KV cache back *before* the ticket
                    // resolves, so a caller chaining decode steps on the
                    // ticket's completion always reads the new context.
                    if let Some(tag) = p.session {
                        let kv = std::mem::take(&mut outcome.session_outputs);
                        sessions.writeback(tag.id, kv, tag.phase);
                    }
                    out.records.push(ReqRecord {
                        ticket: p.ticket,
                        seconds: outcome.stats.seconds(),
                        macs: outcome.stats.macs,
                        nonlinear_evals: outcome.stats.nonlinear_evals,
                        phase: p.session.map(|t| t.phase),
                        tokens: p.session.map_or(0, |t| t.tokens),
                    });
                    let _ = p.reply.send(Ok(ServedOutcome {
                        ticket: p.ticket,
                        shard,
                        dispatch_seq: p.dispatch_seq,
                        output: outcome.output,
                        stats: outcome.stats,
                        op_stats: outcome.op_stats,
                        queue_seconds: p.queue_seconds,
                        degrade: p.degrade,
                    }));
                }
            }
            Err(e) => {
                // Pre-validation should make this unreachable; recover
                // anyway: fail the batch, leave the shard serviceable.
                engine.clear();
                for p in pending {
                    if let Some(tag) = p.session {
                        sessions.release(tag.id);
                    }
                    let _ = p.reply.send(Err(ServeError::Exec(e.clone())));
                }
            }
        }
        out.stats.busy_seconds += t0.elapsed().as_secs_f64();
        load.fetch_sub(batch_macs, Ordering::Relaxed);
        out.stats.peak_queue_depth = depth.peak();
    }
    out.stats.peak_queue_depth = depth.peak();
    out
}

/// Plumbing of one process-backend shard proxy. Every proxy sees every
/// worker connection (each behind its own mutex) so a proxy whose
/// worker dies can re-execute its in-flight window on a survivor
/// without routing back through the admitter.
struct RemoteShardCtx {
    shard: usize,
    rx: Receiver<ShardBatch>,
    conns: Vec<Arc<Mutex<Option<net::WorkerHandle>>>>,
    alive: Vec<Arc<AtomicBool>>,
    loads: Vec<Arc<AtomicU64>>,
    depth: Arc<DepthGauge>,
    sessions: Arc<SessionTable>,
}

/// The process-backend counterpart of [`shard_loop`]: receives batches
/// from the admitter, ships them to this shard's worker process over
/// the wire, and replies tickets from the decoded outcomes.
///
/// **Failover.** Execution is pure (no side effects beyond the reply),
/// so a window that was in flight to a worker that died — EOF, `EPIPE`,
/// a failed handshake frame — simply re-runs on the next alive shard's
/// worker, in ring order from this shard. The dead worker is marked so
/// every proxy routes around it; the batch counts into
/// [`ShardStats::requeued`] and the shard's own death into
/// [`ShardStats::worker_lost`] → [`ServeSummary::failovers`]. Only if
/// *no* worker survives do the tickets resolve
/// [`ServeError::WorkerLost`].
fn remote_shard_loop(ctx: RemoteShardCtx) -> ShardOut {
    let n = ctx.conns.len();
    let mut out = ShardOut {
        stats: ShardStats {
            shard: ctx.shard,
            requests: 0,
            batches: 0,
            gemm_groups: 0,
            nonlinear_groups: 0,
            macs: 0,
            array_seconds: 0.0,
            busy_seconds: 0.0,
            occupancy: 0.0,
            peak_queue_depth: 0,
            opt: OptTotals::default(),
            blocks_skipped: 0,
            blocks_total: 0,
            worker_lost: false,
            requeued: 0,
            wire_cache: WeightCacheStats::default(),
        },
        records: Vec::new(),
        window_records: Vec::new(),
    };
    while let Ok(batch) = ctx.rx.recv() {
        ctx.depth.dec();
        let batch_macs: u64 = batch.iter().map(|w| w.request.modeled_macs()).sum();
        let batch_window = batch.first().map_or(0, |w| w.window);
        let t0 = Instant::now();
        // Queueing delay ends when the proxy starts shipping the window
        // (the wire round trip is the execution, as `BatchEngine::run`
        // is for an in-process shard).
        let queue_seconds: Vec<f64> = batch
            .iter()
            .map(|w| w.submitted_at.elapsed().as_secs_f64())
            .collect();
        let mut served = false;
        for k in 0..n {
            let target = (ctx.shard + k) % n;
            if !ctx.alive[target].load(Ordering::SeqCst) {
                continue;
            }
            let mut slot = ctx.conns[target].lock().expect("worker conn lock");
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            let items: Vec<(TicketId, &Request)> =
                batch.iter().map(|w| (w.ticket, &w.request)).collect();
            match conn.run_window(&items) {
                Ok(net::WindowReply::Done(result)) => {
                    out.stats.batches += 1;
                    out.stats.requests += batch.len();
                    out.stats.gemm_groups += result.gemm_groups;
                    out.stats.nonlinear_groups += result.nonlinear_groups;
                    out.stats.macs += result.total_macs;
                    out.stats.array_seconds += result.batched_seconds;
                    out.stats.opt.merge(&result.opt);
                    out.stats.blocks_skipped += result.blocks_skipped;
                    out.stats.blocks_total += result.blocks_total;
                    // Energy is attributed to this proxy's shard even
                    // after a failover — the window was admitted and
                    // powered here; which surviving worker's process
                    // hosted the re-execution is a host detail the
                    // modeled accounting deliberately ignores.
                    out.window_records.push(WindowRecord {
                        window: batch_window,
                        seconds: result.batched_seconds,
                        macs: result.total_macs,
                    });
                    if k > 0 {
                        out.stats.requeued += batch.len();
                    }
                    for ((item, o), qs) in batch.iter().zip(result.outcomes).zip(&queue_seconds) {
                        debug_assert_eq!(item.ticket, o.ticket, "worker echoed tickets in order");
                        // As in `shard_loop`: the session sees its grown
                        // cache before the ticket resolves. The KV lives
                        // host-side, so a worker death between steps
                        // loses nothing a survivor can't recompute from
                        // the same inputs.
                        if let Some(tag) = item.session {
                            ctx.sessions.writeback(tag.id, o.session_outputs, tag.phase);
                        }
                        out.records.push(ReqRecord {
                            ticket: item.ticket,
                            seconds: o.stats.seconds(),
                            macs: o.stats.macs,
                            nonlinear_evals: o.stats.nonlinear_evals,
                            phase: item.session.map(|t| t.phase),
                            tokens: item.session.map_or(0, |t| t.tokens),
                        });
                        let _ = item.reply.send(Ok(ServedOutcome {
                            ticket: item.ticket,
                            shard: target,
                            dispatch_seq: item.dispatch_seq,
                            output: o.output,
                            stats: o.stats,
                            op_stats: o.op_stats,
                            queue_seconds: *qs,
                            degrade: item.degrade,
                        }));
                    }
                    served = true;
                    break;
                }
                Ok(net::WindowReply::Failed(msg)) => {
                    // The worker's engine rejected the batch and
                    // recovered — deterministic, so re-running elsewhere
                    // would fail identically. Pre-validation at
                    // admission makes this near-unreachable; surface it
                    // without killing the worker.
                    eprintln!("onesa-serve: shard {target} batch failed remotely: {msg}");
                    for item in &batch {
                        if let Some(tag) = item.session {
                            ctx.sessions.release(tag.id);
                        }
                        let _ =
                            item.reply
                                .send(Err(ServeError::Exec(TensorError::InvalidArgument(
                                    "worker reported a batch execution error (see stderr)",
                                ))));
                    }
                    served = true;
                    break;
                }
                Err(_) => {
                    // Dead worker: mark it, reap the process (dropping
                    // the handle kills it if needed) and try the next
                    // shard in the ring with the same batch.
                    ctx.alive[target].store(false, Ordering::SeqCst);
                    *slot = None;
                }
            }
        }
        if !served {
            for item in &batch {
                if let Some(tag) = item.session {
                    ctx.sessions.release(tag.id);
                }
                let _ = item.reply.send(Err(ServeError::WorkerLost));
            }
        }
        out.stats.busy_seconds += t0.elapsed().as_secs_f64();
        ctx.loads[ctx.shard].fetch_sub(batch_macs, Ordering::Relaxed);
        out.stats.peak_queue_depth = ctx.depth.peak();
    }
    // Channel closed: the admitter is gone. Retire this shard's worker
    // (if it survived) and keep its weight-cache accounting.
    if let Some(conn) = ctx.conns[ctx.shard]
        .lock()
        .expect("worker conn lock")
        .take()
    {
        out.stats.wire_cache = conn.cache;
        conn.shutdown();
    }
    out.stats.worker_lost = !ctx.alive[ctx.shard].load(Ordering::SeqCst);
    out.stats.peak_queue_depth = ctx.depth.peak();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_cpwl::NonlinearFn;
    use onesa_tensor::gemm;
    use onesa_tensor::rng::Pcg32;

    fn pool(shards: usize) -> ServeEngine {
        ServeEngine::start(ServeConfig::uniform(
            shards,
            ArrayConfig::new(8, 16),
            Parallelism::Sequential,
        ))
        .unwrap()
    }

    #[test]
    fn single_request_round_trip() {
        let mut rng = Pcg32::seed_from_u64(1);
        let a = rng.randn(&[3, 10], 1.0);
        let b = rng.randn(&[10, 4], 1.0);
        let engine = pool(2);
        let ticket = engine.submit(Request::gemm(a.clone(), b.clone())).unwrap();
        assert_eq!(ticket.id(), 0);
        let served = ticket.wait().unwrap();
        assert_eq!(served.ticket, 0);
        assert!(served.shard < 2);
        assert_eq!(served.output, gemm::matmul(&a, &b).unwrap());
        assert!(served.queue_seconds >= 0.0);
        let summary = engine.finish().unwrap();
        assert_eq!(summary.report.requests, 1);
        assert_eq!(summary.shards.len(), 2);
        assert!(summary.windows >= 1);
    }

    #[test]
    fn nonlinear_round_trip_and_try_wait() {
        let mut rng = Pcg32::seed_from_u64(2);
        let x = rng.randn(&[4, 6], 1.5);
        let engine = pool(1);
        let ticket = engine
            .submit(Request::nonlinear(NonlinearFn::Gelu, x.clone()))
            .unwrap();
        // Poll until served (single shard, tiny request).
        let served = loop {
            if let Some(r) = ticket.try_wait() {
                break r.unwrap();
            }
            thread::yield_now();
        };
        let tables = onesa_cpwl::ops::TableSet::for_granularity(0.25).unwrap();
        assert_eq!(served.output, tables.gelu(&x).unwrap());
        let _ = engine.finish().unwrap();
    }

    #[test]
    fn program_tickets_round_trip_with_per_op_stats() {
        use onesa_plan::{EvalMode, Op, Program};
        let mut rng = Pcg32::seed_from_u64(31);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        let mut b = Program::builder(
            "mlp",
            EvalMode::Cpwl {
                granularity: 0.25,
                quantize: false,
            },
        );
        let x = b.input(&[2, 6]);
        let (c1, c2) = (b.constant(w1.clone()), b.constant(w2.clone()));
        let h = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, c1],
        );
        let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[h]);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[g, c2],
        );
        let program = b.finish().unwrap();

        let engine = pool(2);
        let xs: Vec<_> = (0..4).map(|_| rng.randn(&[2, 6], 1.0)).collect();
        let tickets: Vec<Ticket> = xs
            .iter()
            .map(|x| {
                engine
                    .submit_program(program.clone(), vec![x.clone()])
                    .unwrap()
            })
            .collect();
        let mut executed_macs = 0u64;
        for (t, x) in tickets.into_iter().zip(&xs) {
            let served = t.wait().unwrap();
            let solo = program
                .run(
                    std::slice::from_ref(x),
                    Parallelism::Sequential,
                    &mut onesa_plan::TableCache::new(),
                )
                .unwrap();
            assert_eq!(served.output, solo.output);
            assert_eq!(served.op_stats.len(), 3);
            assert_eq!(
                served.stats.macs,
                solo.op_stats.iter().map(|s| s.macs).sum::<u64>()
            );
            executed_macs += served.stats.macs;
        }
        let summary = engine.finish().unwrap();
        assert_eq!(summary.report.requests, 4);
        assert_eq!(summary.expired, 0);
        assert_eq!(summary.report.total_macs, executed_macs);
    }

    #[test]
    fn malformed_request_is_rejected_at_admission() {
        // The shard never sees the bad request: the admitter's validator
        // rejects it, so the shard's batch count stays clean.
        let mut rng = Pcg32::seed_from_u64(32);
        let engine = pool(1);
        let bad = Request::gemm(rng.randn(&[2, 8], 1.0), rng.randn(&[9, 3], 1.0));
        let t = engine.submit(bad).unwrap();
        match t.wait() {
            Err(ServeError::Exec(TensorError::ShapeMismatch { .. })) => {}
            other => panic!("expected shape mismatch, got {other:?}"),
        }
        let summary = engine.finish().unwrap();
        assert_eq!(summary.report.requests, 0);
        assert_eq!(summary.shards[0].batches, 0, "shard saw the bad request");
    }

    #[test]
    fn expired_deadlines_drop_instead_of_dispatching() {
        let mut rng = Pcg32::seed_from_u64(33);
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Deadline {
                    window: 8,
                    drop_expired: true,
                })
                .start_paused(),
        )
        .unwrap();
        // Deadline 0 µs is in the past by the time the gate opens; a
        // far-future deadline and a no-deadline request both survive.
        let doomed = engine
            .submit_with_deadline(
                Request::gemm(rng.randn(&[2, 4], 1.0), rng.randn(&[4, 2], 1.0)),
                0,
            )
            .unwrap();
        let urgent_ok = engine
            .submit_with_deadline(
                Request::gemm(rng.randn(&[2, 4], 1.0), rng.randn(&[4, 2], 1.0)),
                u64::MAX - 1,
            )
            .unwrap();
        let no_deadline = engine
            .submit(Request::gemm(
                rng.randn(&[2, 4], 1.0),
                rng.randn(&[4, 2], 1.0),
            ))
            .unwrap();
        // Make sure the admission clock has advanced past deadline 0.
        thread::sleep(std::time::Duration::from_millis(2));
        engine.resume();
        match doomed.wait() {
            Err(ServeError::DeadlineExpired {
                deadline_us: 0,
                now_us,
            }) => assert!(now_us > 0),
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        assert!(urgent_ok.wait().is_ok());
        assert!(no_deadline.wait().is_ok());
        let summary = engine.finish().unwrap();
        assert_eq!(summary.expired, 1);
        assert_eq!(summary.report.requests, 2);
        assert!(format!("{summary}").contains("expired 1"));
    }

    #[test]
    fn rejected_requests_do_not_consume_the_size_capped_window_budget() {
        let mut rng = Pcg32::seed_from_u64(35);
        // Budget fits all three valid requests (3 x 16 = 48 MACs); the
        // malformed request's 720k modeled MACs must not close the
        // window early and split them.
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::SizeCapped { max_macs: 100 })
                .start_paused(),
        )
        .unwrap();
        let valid =
            |rng: &mut Pcg32| Request::gemm(rng.randn(&[2, 4], 1.0), rng.randn(&[4, 2], 1.0));
        let t1 = engine.submit(valid(&mut rng)).unwrap();
        let bad = engine
            .submit(Request::gemm(
                rng.randn(&[100, 80], 1.0),
                rng.randn(&[81, 90], 1.0),
            ))
            .unwrap();
        let t2 = engine.submit(valid(&mut rng)).unwrap();
        let t3 = engine.submit(valid(&mut rng)).unwrap();
        engine.resume();
        assert!(matches!(bad.wait(), Err(ServeError::Exec(_))));
        for t in [t1, t2, t3] {
            assert!(t.wait().is_ok());
        }
        let summary = engine.finish().unwrap();
        assert_eq!(summary.report.requests, 3);
        // All three valid requests shared ONE window — before the fix
        // the rejected request's MACs closed the first window early.
        assert_eq!(summary.windows, 1);
    }

    #[test]
    fn deadline_without_drop_keeps_priority_only_semantics() {
        let mut rng = Pcg32::seed_from_u64(34);
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Deadline {
                    window: 4,
                    drop_expired: false,
                })
                .start_paused(),
        )
        .unwrap();
        // Deadline 0 would be expired under drop_expired — without it,
        // the request is merely dispatched first.
        let t = engine
            .submit_with_deadline(
                Request::gemm(rng.randn(&[2, 4], 1.0), rng.randn(&[4, 2], 1.0)),
                0,
            )
            .unwrap();
        engine.resume();
        assert!(t.wait().is_ok());
        let summary = engine.finish().unwrap();
        assert_eq!((summary.expired, summary.report.requests), (0, 1));
    }

    #[test]
    fn malformed_request_fails_only_its_ticket() {
        let mut rng = Pcg32::seed_from_u64(3);
        let engine = pool(1);
        let good = Request::gemm(rng.randn(&[2, 8], 1.0), rng.randn(&[8, 3], 1.0));
        let bad = Request::gemm(rng.randn(&[2, 8], 1.0), rng.randn(&[9, 3], 1.0));
        let t_good = engine.submit(good).unwrap();
        let t_bad = engine.submit(bad).unwrap();
        assert!(t_good.wait().is_ok());
        match t_bad.wait() {
            Err(ServeError::Exec(TensorError::ShapeMismatch { .. })) => {}
            other => panic!("expected shape mismatch, got {other:?}"),
        }
        // The shard survived the rejection.
        let again = engine
            .submit(Request::gemm(
                rng.randn(&[2, 8], 1.0),
                rng.randn(&[8, 3], 1.0),
            ))
            .unwrap();
        assert!(again.wait().is_ok());
        let summary = engine.finish().unwrap();
        assert_eq!(summary.report.requests, 2); // the bad one never served
    }

    #[test]
    fn submit_after_finish_is_rejected() {
        let engine = pool(1);
        let client = engine.client();
        let _ = engine.finish().unwrap();
        let mut rng = Pcg32::seed_from_u64(4);
        let req = Request::gemm(rng.randn(&[2, 4], 1.0), rng.randn(&[4, 2], 1.0));
        assert_eq!(
            client.submit(req.clone()).unwrap_err(),
            ServeError::QueueClosed
        );
        match client.try_submit(req) {
            Err(TrySubmitError::Closed(_)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn empty_pool_rejected_and_empty_run_sane() {
        let bad = ServeConfig {
            shards: vec![],
            granularity: 0.25,
            queue_capacity: 4,
            admission: AdmissionPolicy::default(),
            routing: RoutePolicy::default(),
            interleave: InterleavePolicy::default(),
            session_capacity: 64,
            paused: false,
            backend: ShardBackend::InProcess,
            degrade: None,
            pool: PoolPolicy::AlwaysOn,
        };
        assert!(ServeEngine::start(bad).is_err());
        let engine = pool(3);
        let summary = engine.finish().unwrap();
        assert_eq!(summary.report.requests, 0);
        assert_eq!(summary.modeled_speedup(), 1.0);
        assert!(summary.report.wall_rps().is_finite());
        assert!(!format!("{summary}").contains("NaN"));
    }

    #[test]
    fn display_and_errors_format() {
        assert!(ServeError::QueueClosed.to_string().contains("closed"));
        assert!(ServeError::WorkerLost.to_string().contains("worker"));
        let mut rng = Pcg32::seed_from_u64(5);
        let req = Request::gemm(rng.randn(&[1, 2], 1.0), rng.randn(&[2, 1], 1.0));
        assert!(TrySubmitError::Full(req.clone())
            .to_string()
            .contains("full"));
        assert!(TrySubmitError::Closed(req).to_string().contains("closed"));
    }

    // -- decoding sessions ------------------------------------------------

    /// Minimal session-bearing prefill: scales the prompt rows by 2 and
    /// declares the result as the cache.
    fn cache_prefill(rows: usize, d: usize) -> crate::Program {
        use onesa_plan::{EvalMode, Op, Program};
        let mut b = Program::builder("cache-prefill", EvalMode::Exact);
        let x = b.input(&[rows, d]);
        let cache = b.push(Op::Scale(2.0), &[x]);
        b.mark_session_output(cache);
        b.finish().unwrap()
    }

    /// Matching decode step at context `ctx`: appends one scaled row to
    /// the session cache.
    fn cache_decode(ctx: usize, d: usize) -> crate::Program {
        use onesa_plan::{EvalMode, Op, Program};
        let mut b = Program::builder("cache-decode", EvalMode::Exact);
        let x = b.input(&[1, d]);
        let cache = b.session_input(&[ctx, d]);
        let scaled = b.push(Op::Scale(2.0), &[x]);
        let grown = b.push(Op::ConcatRows, &[cache, scaled]);
        b.mark_session_output(grown);
        b.finish().unwrap()
    }

    #[test]
    fn session_decode_steps_grow_the_cache_and_count_tokens() {
        let mut rng = Pcg32::seed_from_u64(41);
        let d = 4usize;
        let prompt = rng.randn(&[3, d], 1.0);
        let engine = pool(2);

        let id = engine.open_session();
        assert_eq!(engine.live_sessions(), 1);
        assert_eq!(engine.session_context_rows(id), Some(0));
        engine
            .submit_prefill(id, cache_prefill(3, d), vec![prompt.clone()], 3)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(engine.session_context_rows(id), Some(3));
        assert_eq!(engine.session_tokens(id), Some(0));

        let mut expect: Vec<f32> = prompt.as_slice().iter().map(|v| 2.0 * v).collect();
        for step in 0..2 {
            let x = rng.randn(&[1, d], 1.0);
            engine
                .submit_decode(id, cache_decode(3 + step, d), vec![x.clone()])
                .unwrap()
                .wait()
                .unwrap();
            expect.extend(x.as_slice().iter().map(|v| 2.0 * v));
            assert_eq!(engine.session_context_rows(id), Some(4 + step));
        }
        assert_eq!(engine.session_tokens(id), Some(2));
        let kv = engine.session_kv(id).unwrap();
        assert_eq!(kv.len(), 1);
        assert_eq!(kv[0].shape().dims(), &[5, d]);
        assert_eq!(kv[0].as_slice(), &expect[..]);

        assert!(engine.close_session(id));
        assert!(!engine.close_session(id));
        assert_eq!(engine.live_sessions(), 0);

        let summary = engine.finish().unwrap();
        assert_eq!(summary.sessions.opened, 1);
        assert_eq!(summary.sessions.closed, 1);
        assert_eq!(summary.sessions.live, 0);
        assert_eq!(summary.prefill.requests, 1);
        assert_eq!(summary.prefill.tokens, 3);
        assert_eq!(summary.decode.requests, 2);
        assert_eq!(summary.decode.tokens, 2);
        assert_eq!(summary.decode.latencies.len(), 2);
        assert!(summary.decode.latency_percentile(50.0) > 0.0);
        assert!(summary.decode_tokens_per_second().is_finite());
        assert!(format!("{summary}").contains("sessions"));
    }

    /// Satellite regression: under drop-on-expiry, an expired step must
    /// evict the *whole session* — KV tensors freed, no orphaned table
    /// entry — not just the in-flight step.
    #[test]
    fn deadline_expiry_evicts_the_whole_session() {
        let mut rng = Pcg32::seed_from_u64(42);
        let d = 4usize;
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Deadline {
                    window: 1,
                    drop_expired: true,
                }),
        )
        .unwrap();

        let id = engine.open_session();
        engine
            .submit_prefill(id, cache_prefill(2, d), vec![rng.randn(&[2, d], 1.0)], 2)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(engine.session_context_rows(id), Some(2));

        // Deadline 0 µs is already past when the window closes.
        let t = engine
            .client()
            .submit_decode_with_deadline(
                id,
                cache_decode(2, d),
                vec![rng.randn(&[1, d], 1.0)],
                Some(0),
            )
            .unwrap();
        match t.wait() {
            Err(ServeError::DeadlineExpired { .. }) => {}
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        assert!(engine.session_kv(id).is_none(), "session must be evicted");
        assert_eq!(engine.live_sessions(), 0);
        match engine.submit_decode(id, cache_decode(2, d), vec![rng.randn(&[1, d], 1.0)]) {
            Err(ServeError::SessionUnknown(evicted)) => assert_eq!(evicted, id),
            other => panic!("expected SessionUnknown, got {other:?}"),
        }

        let summary = engine.finish().unwrap();
        assert_eq!(summary.expired, 1);
        assert_eq!(summary.sessions.opened, 1);
        assert_eq!(summary.sessions.evicted_deadline, 1);
        assert_eq!(summary.sessions.closed, 0);
        assert_eq!(summary.sessions.live, 0);
        // No orphaned cache entries: every opened session is accounted
        // for by close/eviction/live.
        assert_eq!(
            summary.sessions.opened,
            summary.sessions.closed
                + summary.sessions.evicted_deadline
                + summary.sessions.evicted_overflow
                + summary.sessions.live
        );
        // The expired step never ran, so it counts into no phase.
        assert_eq!(summary.decode.requests, 0);
    }

    #[test]
    fn session_overflow_evicts_least_recently_used_idle() {
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_session_capacity(2),
        )
        .unwrap();
        let a = engine.open_session();
        let b = engine.open_session();
        let c = engine.open_session();
        assert_eq!(engine.live_sessions(), 2);
        assert!(
            engine.session_kv(a).is_none(),
            "oldest idle session evicted"
        );
        assert!(engine.session_kv(b).is_some());
        assert!(engine.session_kv(c).is_some());
        let summary = engine.finish().unwrap();
        assert_eq!(summary.sessions.opened, 3);
        assert_eq!(summary.sessions.evicted_overflow, 1);
        assert_eq!(summary.sessions.live, 2);
    }

    #[test]
    fn busy_and_unknown_sessions_are_rejected() {
        let mut rng = Pcg32::seed_from_u64(43);
        let d = 4usize;
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .start_paused(),
        )
        .unwrap();
        match engine.submit_prefill(7, cache_prefill(2, d), vec![rng.randn(&[2, d], 1.0)], 2) {
            Err(ServeError::SessionUnknown(7)) => {}
            other => panic!("expected SessionUnknown, got {other:?}"),
        }
        let id = engine.open_session();
        let t = engine
            .submit_prefill(id, cache_prefill(2, d), vec![rng.randn(&[2, d], 1.0)], 2)
            .unwrap();
        // The first step is still queued behind the paused gate: the
        // session admits one step at a time.
        match engine.submit_prefill(id, cache_prefill(2, d), vec![rng.randn(&[2, d], 1.0)], 2) {
            Err(ServeError::SessionBusy(busy)) => assert_eq!(busy, id),
            other => panic!("expected SessionBusy, got {other:?}"),
        }
        engine.resume();
        t.wait().unwrap();
        assert_eq!(engine.session_context_rows(id), Some(2));
        let _ = engine.finish().unwrap();
    }

    #[test]
    fn interleave_window_orders_phases() {
        let mk = |ticket: u64, phase: Option<Phase>| -> Submission {
            let (reply, _rx) = mpsc::channel();
            let mut rng = Pcg32::seed_from_u64(ticket);
            Submission {
                ticket,
                deadline: None,
                submitted_at: Instant::now(),
                request: Request::gemm(rng.randn(&[1, 2], 1.0), rng.randn(&[2, 1], 1.0)),
                session: phase.map(|p| SessionTag {
                    id: ticket,
                    phase: p,
                    tokens: 1,
                }),
                degrade: None,
                reply,
            }
        };
        let order = |w: &[Submission]| w.iter().map(|s| s.ticket).collect::<Vec<_>>();
        let fresh = || {
            vec![
                mk(0, Some(Phase::Decode)),
                mk(1, None),
                mk(2, Some(Phase::Prefill)),
                mk(3, Some(Phase::Decode)),
            ]
        };

        let mut w = fresh();
        interleave_window(InterleavePolicy::Mixed, &mut w);
        assert_eq!(order(&w), [0, 1, 2, 3]);

        // Stable within each class: arrival order is preserved.
        let mut w = fresh();
        interleave_window(InterleavePolicy::PrefillFirst, &mut w);
        assert_eq!(order(&w), [1, 2, 0, 3]);

        let mut w = fresh();
        interleave_window(InterleavePolicy::DecodeFirst, &mut w);
        assert_eq!(order(&w), [0, 3, 1, 2]);
    }

    #[test]
    fn pause_stages_a_mid_run_wave_into_one_window() {
        // Two waves of two shared-weight GEMMs, each staged behind a
        // mid-run pause: every wave must land in a single admission
        // window and coalesce to one GEMM group, even though the second
        // wave is only submitted after the first completes (the
        // continuous-batching round structure).
        let mut rng = Pcg32::seed_from_u64(41);
        let w = rng.randn(&[4, 3], 1.0);
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(4, 4), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Fifo { window: 8 }),
        )
        .unwrap();
        for _ in 0..2 {
            engine.pause();
            let tickets: Vec<Ticket> = (0..2)
                .map(|_| {
                    engine
                        .submit(Request::gemm(rng.randn(&[2, 4], 1.0), w.clone()))
                        .unwrap()
                })
                .collect();
            engine.resume();
            for t in tickets {
                t.wait().unwrap();
            }
        }
        let summary = engine.finish().unwrap();
        assert_eq!(summary.windows, 2, "one window per staged wave");
        assert_eq!(
            summary.report.gemm_groups, 2,
            "each wave's shared-weight GEMMs coalesce into one group"
        );
    }

    /// A tiny CPWL MLP (GEMM → Gelu → GEMM) for the degrade tests, plus
    /// one input batch. Deterministic for a given seed.
    fn mlp(granularity: f32, seed: u64) -> (crate::Program, Tensor) {
        use onesa_plan::{EvalMode, Op, Program};
        let mut rng = Pcg32::seed_from_u64(seed);
        let w1 = rng.randn(&[6, 4], 1.0);
        let w2 = rng.randn(&[4, 3], 1.0);
        let mut b = Program::builder(
            "mlp",
            EvalMode::Cpwl {
                granularity,
                quantize: false,
            },
        );
        let x = b.input(&[2, 6]);
        let (c1, c2) = (b.constant(w1), b.constant(w2));
        let h = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, c1],
        );
        let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[h]);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[g, c2],
        );
        (b.finish().unwrap(), rng.randn(&[2, 6], 1.0))
    }

    #[test]
    fn degrade_ladder_rescues_expired_program_request() {
        // Degrade-don't-drop: a CPWL program request already past its
        // deadline jumps to the coarsest rung and serves, bit-identical
        // to a solo run compiled directly at that rung.
        let (program, x) = mlp(0.25, 50);
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Deadline {
                    window: 8,
                    drop_expired: true,
                })
                .with_degrade(DegradePolicy::new(vec![0.5, 1.0]))
                .start_paused(),
        )
        .unwrap();
        let doomed = engine
            .submit_with_deadline(Request::program(program.clone(), vec![x.clone()]), 0)
            .unwrap();
        thread::sleep(std::time::Duration::from_millis(2));
        engine.resume();
        let served = doomed.wait().expect("rescued, not expired");
        assert_eq!(
            served.degrade,
            Some(DegradeInfo {
                requested: 0.25,
                served: 1.0,
                rungs: 2
            })
        );
        let solo = program
            .with_granularity(1.0)
            .unwrap()
            .run(
                std::slice::from_ref(&x),
                Parallelism::Sequential,
                &mut onesa_plan::TableCache::new(),
            )
            .unwrap();
        assert_eq!(served.output, solo.output, "bit-identical to coarse solo");
        let summary = engine.finish().unwrap();
        assert_eq!(summary.expired, 0);
        assert_eq!(summary.degraded, 1);
        assert!(summary.degraded_fraction() > 0.0);
        assert!(format!("{summary}").contains("degraded 1"));
    }

    #[test]
    fn size_capped_window_budget_counts_recompiled_macs() {
        // Regression: the window-fill degrade runs *before* budget
        // accounting, so a size-capped window is charged the degraded
        // program's modeled MACs. Budget = one fine program: both
        // degraded (cheaper) requests must share the single window.
        let (program, x) = mlp(0.25, 51);
        let coarse_macs = program.with_granularity(0.5).unwrap().modeled_macs();
        assert!(
            coarse_macs < program.modeled_macs(),
            "coarser rung must model strictly less work"
        );
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::SizeCapped {
                    max_macs: program.modeled_macs(),
                })
                .with_degrade(DegradePolicy::new(vec![0.5]).with_depth_threshold(0))
                .start_paused(),
        )
        .unwrap();
        let t1 = engine
            .submit_program(program.clone(), vec![x.clone()])
            .unwrap();
        let t2 = engine
            .submit_program(program.clone(), vec![x.clone()])
            .unwrap();
        engine.resume();
        let oracle = program
            .with_granularity(0.5)
            .unwrap()
            .run(
                std::slice::from_ref(&x),
                Parallelism::Sequential,
                &mut onesa_plan::TableCache::new(),
            )
            .unwrap();
        for t in [t1, t2] {
            let served = t.wait().unwrap();
            assert_eq!(
                served.degrade,
                Some(DegradeInfo {
                    requested: 0.25,
                    served: 0.5,
                    rungs: 1
                })
            );
            assert_eq!(served.output, oracle.output);
        }
        let summary = engine.finish().unwrap();
        assert_eq!(
            summary.windows, 1,
            "recompiled MACs fit both requests in one size-capped window"
        );
        assert_eq!(summary.degraded, 2);
        assert_eq!(summary.expired, 0);
    }

    #[test]
    fn non_degradable_requests_still_expire_under_ladder() {
        // The ladder only rescues CPWL programs: plain GEMMs and
        // exact-mode programs past their deadline still expire.
        use onesa_plan::{EvalMode, Op, Program};
        let mut rng = Pcg32::seed_from_u64(52);
        let mut b = Program::builder("exact", EvalMode::Exact);
        let x = b.input(&[2, 4]);
        let c = b.constant(rng.randn(&[4, 2], 1.0));
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, c],
        );
        let exact = b.finish().unwrap();
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Deadline {
                    window: 8,
                    drop_expired: true,
                })
                .with_degrade(DegradePolicy::new(vec![0.5, 1.0]))
                .start_paused(),
        )
        .unwrap();
        let gemm = engine
            .submit_with_deadline(
                Request::gemm(rng.randn(&[2, 4], 1.0), rng.randn(&[4, 2], 1.0)),
                0,
            )
            .unwrap();
        let prog = engine
            .submit_with_deadline(Request::program(exact, vec![rng.randn(&[2, 4], 1.0)]), 0)
            .unwrap();
        thread::sleep(std::time::Duration::from_millis(2));
        engine.resume();
        for t in [gemm, prog] {
            match t.wait() {
                Err(ServeError::DeadlineExpired { .. }) => {}
                other => panic!("expected DeadlineExpired, got {other:?}"),
            }
        }
        let summary = engine.finish().unwrap();
        assert_eq!(summary.expired, 2);
        assert_eq!(summary.degraded, 0);
    }

    #[test]
    fn degrade_ladder_validated_at_start() {
        let cfg = || ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential);
        for ladder in [
            vec![],
            vec![0.5, 0.5],
            vec![0.5, 0.25],
            vec![-0.25],
            vec![0.0],
            vec![f32::NAN],
        ] {
            assert!(
                ServeEngine::start(cfg().with_degrade(DegradePolicy::new(ladder.clone()))).is_err(),
                "ladder {ladder:?} must be rejected"
            );
        }
        let ok =
            ServeEngine::start(cfg().with_degrade(DegradePolicy::new(vec![0.5, 1.0]))).unwrap();
        let _ = ok.finish().unwrap();
    }

    #[test]
    fn elastic_pool_powers_shards_up_and_down() {
        let mut rng = Pcg32::seed_from_u64(53);
        let engine = ServeEngine::start(
            ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Fifo { window: 2 })
                .with_pool(PoolPolicy::Elastic {
                    min_active: 1,
                    scale_up_depth: 1,
                    idle_windows: 1,
                })
                .start_paused(),
        )
        .unwrap();
        let req = |rng: &mut Pcg32| {
            let a = rng.randn(&[2, 4], 1.0);
            let b = rng.randn(&[4, 2], 1.0);
            let want = gemm::matmul(&a, &b).unwrap();
            (Request::gemm(a, b), want)
        };
        // Burst: a deep backlog behind the first window powers the
        // parked shard up.
        let burst: Vec<_> = (0..6)
            .map(|_| {
                let (r, want) = req(&mut rng);
                (engine.submit(r).unwrap(), want)
            })
            .collect();
        engine.resume();
        for (t, want) in burst {
            assert_eq!(t.wait().unwrap().output, want);
        }
        // Trickle: serial single-request windows leave one shard unused;
        // it drains to Idle and then powers Off.
        for _ in 0..6 {
            let (r, want) = req(&mut rng);
            let t = engine.submit(r).unwrap();
            assert_eq!(t.wait().unwrap().output, want);
        }
        let summary = engine.finish().unwrap();
        assert_eq!(summary.expired, 0);
        assert_eq!(summary.report.requests, 12);
        let p = summary.power;
        assert!(p.power_ups >= 1, "backlog must power the parked shard up");
        assert!(p.power_downs >= 1, "idle shard must drain and power off");
        assert!(p.off_shard_windows >= 1);
        assert!(p.active_shard_windows >= 1);
        assert!(p.modeled_joules > 0.0);
        assert!(format!("{summary}").contains("power-down"));
    }

    #[test]
    fn always_on_pool_accounts_every_shard_window() {
        let mut rng = Pcg32::seed_from_u64(54);
        let engine = pool(2);
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| {
                engine
                    .submit(Request::gemm(
                        rng.randn(&[2, 4], 1.0),
                        rng.randn(&[4, 2], 1.0),
                    ))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let summary = engine.finish().unwrap();
        let p = summary.power;
        assert_eq!(
            p.active_shard_windows,
            2 * summary.windows as u64,
            "always-on: every shard is active for every window"
        );
        assert_eq!(p.idle_shard_windows, 0);
        assert_eq!(p.off_shard_windows, 0);
        assert_eq!(p.power_ups, 0);
        assert_eq!(p.power_downs, 0);
        assert!(p.modeled_joules > 0.0);
        assert!(summary.modeled_joules_per_request() > 0.0);
        assert!(format!("{summary}").contains("power:"));
    }

    #[test]
    fn energy_aware_routing_splits_a_homogeneous_pool() {
        // On identical shards the energy weight degenerates to least
        // loaded: equal-size requests alternate deterministically.
        let mut rng = Pcg32::seed_from_u64(55);
        let engine = ServeEngine::start(
            ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_routing(RoutePolicy::EnergyAware)
                .start_paused(),
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| {
                engine
                    .submit(Request::gemm(
                        rng.randn(&[2, 4], 1.0),
                        rng.randn(&[4, 2], 1.0),
                    ))
                    .unwrap()
            })
            .collect();
        engine.resume();
        let shards: Vec<usize> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().shard)
            .collect();
        assert_eq!(shards, vec![0, 1, 0, 1]);
        let _ = engine.finish().unwrap();
    }

    /// A one-GEMM exact program over a `[32, 4·PRUNE_BLOCK_COLS]`
    /// weight; `pruned` zeroes the upper half of the columns so
    /// `OptLevel::Standard`'s prune-pack pass attaches the sparsity
    /// attribute (2 of 4 blocks skipped).
    fn credit_program(pruned: bool, seed: u64) -> onesa_plan::Program {
        use onesa_plan::{EvalMode, Op, OptLevel, Program, PRUNE_BLOCK_COLS};
        let (k, n) = (32, 4 * PRUNE_BLOCK_COLS);
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut w = rng.randn(&[k, n], 1.0);
        if pruned {
            for r in 0..k {
                for c in n / 2..n {
                    w.as_mut_slice()[r * n + c] = 0.0;
                }
            }
        }
        let mut b = Program::builder(if pruned { "pruned" } else { "dense" }, EvalMode::Exact);
        let x = b.input(&[4, k]);
        let c = b.constant(w);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, c],
        );
        b.finish().unwrap().optimize(OptLevel::Standard).unwrap()
    }

    #[test]
    fn sparse_credit_reaches_admission_and_energy_routing() {
        // One source of truth: `Request::modeled_macs` delegates to
        // `Program::modeled_macs`, whose GEMM cost credits skipped
        // column blocks — size-capped windows and energy-aware routing
        // must both see a pruned program as the cheaper work it is.
        let dense = credit_program(false, 57);
        let sparse = credit_program(true, 57);
        assert_eq!(sparse.sparse_blocks(), (2, 4));
        assert_eq!(sparse.modeled_macs() * 2, dense.modeled_macs());
        let x = Pcg32::seed_from_u64(58).randn(&[4, 32], 1.0);
        assert_eq!(
            Request::program(sparse.clone(), vec![x.clone()]).modeled_macs(),
            sparse.modeled_macs(),
            "admission and routing weigh the credited program cost"
        );

        // Size-capped admission: the budget fits exactly two *credited*
        // programs per window (dense-costed accounting would close the
        // window after one), and the summary surfaces the skip totals.
        let engine = ServeEngine::start(
            ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::SizeCapped {
                    max_macs: 2 * sparse.modeled_macs(),
                })
                .start_paused(),
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..3)
            .map(|_| {
                engine
                    .submit_program(sparse.clone(), vec![x.clone()])
                    .unwrap()
            })
            .collect();
        engine.resume();
        for t in tickets {
            t.wait().unwrap();
        }
        let summary = engine.finish().unwrap();
        assert_eq!(
            summary.windows, 2,
            "sparse credit packs two pruned programs per window"
        );
        assert_eq!(
            (summary.report.blocks_skipped, summary.report.blocks_total),
            (6, 12)
        );
        assert!(format!("{}", summary.report).contains("sparsity: skipped 6 of 12"));

        // Energy-aware routing: after the dense program lands on shard
        // 0, both pruned programs prefer shard 1 — its outstanding
        // credited work stays below the dense shard's. Without the
        // credit the third request would tie (2 programs each) and fall
        // back to shard 0.
        let engine = ServeEngine::start(
            ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_routing(RoutePolicy::EnergyAware)
                .start_paused(),
        )
        .unwrap();
        let d = engine.submit_program(dense, vec![x.clone()]).unwrap();
        let s1 = engine
            .submit_program(sparse.clone(), vec![x.clone()])
            .unwrap();
        let s2 = engine.submit_program(sparse, vec![x]).unwrap();
        engine.resume();
        let shards = [d, s1, s2].map(|t| t.wait().unwrap().shard);
        assert_eq!(shards, [0, 1, 1]);
        let _ = engine.finish().unwrap();
    }

    #[test]
    fn granularity_specialized_shard_attracts_matching_programs() {
        // Specialization is a pure routing hint: programs at the
        // specialized granularity cluster on that shard, and their
        // outputs stay bit-identical to a solo run.
        let (program, x) = mlp(0.25, 56);
        let engine = ServeEngine::start(
            ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_shard_granularity(1, 0.25)
                .start_paused(),
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..3)
            .map(|_| {
                engine
                    .submit_program(program.clone(), vec![x.clone()])
                    .unwrap()
            })
            .collect();
        engine.resume();
        let solo = program
            .run(
                std::slice::from_ref(&x),
                Parallelism::Sequential,
                &mut onesa_plan::TableCache::new(),
            )
            .unwrap();
        for t in tickets {
            let served = t.wait().unwrap();
            assert_eq!(served.shard, 1, "programs cluster on the specialized shard");
            assert_eq!(served.output, solo.output);
            assert_eq!(served.degrade, None);
        }
        let _ = engine.finish().unwrap();
    }
}
