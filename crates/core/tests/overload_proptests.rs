//! Saturation property tests for degrade-don't-drop overload serving:
//! random request mixes (CPWL programs and plain GEMMs, with missing,
//! already-expired and far-future deadlines) thrown at random pool
//! shapes (shard count, routing policy, power policy, pressure
//! threshold), all under drop-on-expiry deadline admission with a
//! two-rung degrade ladder. Invariants checked on every case:
//!
//! * **no degradable request is ever dropped** — every CPWL program
//!   ticket resolves `Ok` while the ladder has a coarser rung, even
//!   when submitted with a deadline that is already in the past;
//! * **served == exact + degraded** — the finish summary's request
//!   count splits exactly into undegraded outcomes plus outcomes
//!   carrying [`DegradeInfo`], and [`ServeSummary::degraded`] agrees;
//! * **opened == closed + evicted + live** — the session lifetime
//!   identity holds alongside the overload machinery;
//! * **degraded results are bit-identical** to a solo run of the same
//!   program compiled directly at the served coarser granularity, and
//!   their `DegradeInfo` is internally consistent (served is a ladder
//!   rung, `rungs` counts the ladder entries in `(requested, served]`);
//! * only non-degradable requests (plain GEMMs here) expire, and the
//!   summary's expired count matches exactly.
//!
//! The 32 cases are pinned (`ProptestConfig::with_cases(32)`) so the
//! suite's cost stays flat in CI.

use std::collections::HashMap;

use onesa_core::serve::{
    AdmissionPolicy, DegradePolicy, PoolPolicy, RoutePolicy, ServeConfig, ServeEngine, ServeError,
    Ticket,
};
use onesa_core::{Parallelism, Program, Request};
use onesa_cpwl::NonlinearFn;
use onesa_plan::{EvalMode, Op, TableCache};
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;
use proptest::prelude::*;

const REQUESTED_G: f32 = 0.25;
const LADDER: [f32; 2] = [0.5, 1.0];

/// A tiny CPWL MLP (GEMM → Gelu → GEMM) compiled at the requested
/// granularity; weights are fixed so every case shares one program.
fn mlp() -> Program {
    let mut rng = Pcg32::seed_from_u64(7);
    let w1 = rng.randn(&[6, 4], 1.0);
    let w2 = rng.randn(&[4, 3], 1.0);
    let mut b = Program::builder(
        "overload-mlp",
        EvalMode::Cpwl {
            granularity: REQUESTED_G,
            quantize: false,
        },
    );
    let x = b.input(&[2, 6]);
    let (c1, c2) = (b.constant(w1), b.constant(w2));
    let h = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[x, c1],
    );
    let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[h]);
    b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[g, c2],
    );
    b.finish().unwrap()
}

/// Pass-through prefill used to exercise the session identity.
fn prefill_program() -> Program {
    let mut b = Program::builder("overload-prefill", EvalMode::Exact);
    let x = b.input(&[1, 3]);
    let y = b.push(Op::Scale(1.0), &[x]);
    b.mark_session_output(y);
    b.finish().unwrap()
}

/// One randomly generated submission: a CPWL program (degradable) or a
/// plain GEMM (not), with no deadline, an already-expired one, or a
/// far-future one.
#[derive(Debug, Clone, Copy)]
struct Req {
    degradable: bool,
    deadline: Option<u64>,
}

fn req_strategy() -> impl Strategy<Value = Req> {
    let degradable = prop_oneof![Just(true), Just(false)];
    let deadline = prop_oneof![Just(None), Just(Some(0u64)), Just(Some(u64::MAX - 1))];
    (degradable, deadline).prop_map(|(degradable, deadline)| Req {
        degradable,
        deadline,
    })
}

fn pool_strategy() -> impl Strategy<Value = PoolPolicy> {
    prop_oneof![
        Just(PoolPolicy::AlwaysOn),
        Just(PoolPolicy::Elastic {
            min_active: 1,
            scale_up_depth: 2,
            idle_windows: 1,
        }),
    ]
}

fn routing_strategy() -> impl Strategy<Value = RoutePolicy> {
    prop_oneof![
        Just(RoutePolicy::RoundRobin),
        Just(RoutePolicy::LeastLoaded),
        Just(RoutePolicy::WeightAffinity),
        Just(RoutePolicy::EnergyAware),
    ]
}

fn run_case(
    reqs: Vec<Req>,
    shards: usize,
    window: usize,
    depth_threshold: usize,
    routing: RoutePolicy,
    pool: PoolPolicy,
    sessions: usize,
) {
    let program = mlp();
    let x = Pcg32::seed_from_u64(11).randn(&[2, 6], 1.0);
    let engine = ServeEngine::start(
        ServeConfig::uniform(shards, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Deadline {
                window,
                drop_expired: true,
            })
            .with_routing(routing)
            .with_pool(pool)
            .with_degrade(DegradePolicy::new(LADDER.to_vec()).with_depth_threshold(depth_threshold))
            .start_paused(),
    )
    .unwrap();

    // Stage the whole mix behind the closed gate, then open it in one
    // motion — saturation by construction, independent of host timing.
    let mut rng = Pcg32::seed_from_u64(13);
    let tickets: Vec<(Req, Ticket, Option<Tensor>)> = reqs
        .iter()
        .map(|&r| {
            let (request, want) = if r.degradable {
                (Request::program(program.clone(), vec![x.clone()]), None)
            } else {
                let a = rng.randn(&[2, 4], 1.0);
                let b = rng.randn(&[4, 2], 1.0);
                let want = onesa_tensor::gemm::matmul(&a, &b).unwrap();
                (Request::gemm(a, b), Some(want))
            };
            let t = match r.deadline {
                Some(d) => engine.submit_with_deadline(request, d).unwrap(),
                None => engine.submit(request).unwrap(),
            };
            (r, t, want)
        })
        .collect();
    // Make the admission clock strictly positive so `deadline: 0` is in
    // the past at every window close.
    std::thread::sleep(std::time::Duration::from_millis(2));
    engine.resume();

    // Session lifecycle alongside the overload traffic: open a few,
    // close every other one, leave the rest live.
    let mut opened = 0u64;
    let mut closed = 0u64;
    let mut session_requests = 0usize;
    for i in 0..sessions {
        let id = engine.open_session();
        opened += 1;
        let row = Tensor::from_vec(vec![id as f32; 3], &[1, 3]).unwrap();
        engine
            .submit_prefill(id, prefill_program(), vec![row], 1)
            .unwrap()
            .wait()
            .unwrap();
        session_requests += 1;
        if i % 2 == 0 {
            assert!(engine.close_session(id));
            closed += 1;
        }
    }

    // Solo oracles per served granularity, compiled directly (not via
    // the ladder) — the bit-identicality reference.
    let mut oracles: HashMap<u32, Tensor> = HashMap::new();
    let mut oracle = |g: f32| -> Tensor {
        oracles
            .entry(g.to_bits())
            .or_insert_with(|| {
                let p = if g == REQUESTED_G {
                    program.clone()
                } else {
                    program.with_granularity(g).unwrap()
                };
                p.run(
                    std::slice::from_ref(&x),
                    Parallelism::Sequential,
                    &mut TableCache::new(),
                )
                .unwrap()
                .output
            })
            .clone()
    };

    let mut served_exact = 0usize;
    let mut served_degraded = 0usize;
    let mut expected_expired = 0usize;
    for (r, t, want) in tickets {
        match (r.degradable, t.wait()) {
            (true, Ok(outcome)) => {
                // Invariant: a degradable request never drops.
                match outcome.degrade {
                    Some(d) => {
                        assert_eq!(d.requested, REQUESTED_G);
                        assert!(
                            LADDER.contains(&d.served),
                            "served granularity {} must be a ladder rung",
                            d.served
                        );
                        assert_eq!(
                            d.rungs,
                            LADDER
                                .iter()
                                .filter(|&&g| g > d.requested && g <= d.served)
                                .count(),
                            "rung count must match the ladder walk {d:?}"
                        );
                        if r.deadline == Some(0) {
                            assert_eq!(
                                d.served,
                                *LADDER.last().unwrap(),
                                "expiry rescue jumps to the coarsest rung"
                            );
                        }
                        assert_eq!(
                            outcome.output,
                            oracle(d.served),
                            "degraded output must be bit-identical to the solo \
                             oracle at granularity {}",
                            d.served
                        );
                        served_degraded += 1;
                    }
                    None => {
                        assert_ne!(r.deadline, Some(0), "an expired program must degrade");
                        assert_eq!(outcome.output, oracle(REQUESTED_G));
                        served_exact += 1;
                    }
                }
            }
            (true, Err(e)) => panic!("degradable request dropped: {e:?}"),
            (false, Ok(outcome)) => {
                assert_eq!(outcome.degrade, None, "plain GEMMs never degrade");
                assert_eq!(outcome.output, want.unwrap());
                served_exact += 1;
            }
            (false, Err(ServeError::DeadlineExpired { .. })) => {
                assert_eq!(r.deadline, Some(0), "only past-deadline GEMMs expire");
                expected_expired += 1;
            }
            (false, Err(e)) => panic!("unexpected GEMM error: {e:?}"),
        }
    }

    let summary = engine.finish().unwrap();
    assert_eq!(summary.expired, expected_expired);
    assert_eq!(summary.degraded, served_degraded);
    assert_eq!(
        summary.report.requests,
        served_exact + served_degraded + session_requests,
        "served == exact + degraded"
    );
    assert_eq!(
        summary.sessions.opened,
        summary.sessions.closed
            + summary.sessions.evicted_deadline
            + summary.sessions.evicted_overflow
            + summary.sessions.live,
        "opened == closed + evicted + live: {:?}",
        summary.sessions
    );
    assert_eq!(summary.sessions.opened, opened);
    assert_eq!(summary.sessions.closed, closed);
    assert_eq!(summary.failovers, 0);
    // Power accounting is exhaustive: every (shard, window) pair lands
    // in exactly one state bucket.
    let p = summary.power;
    assert_eq!(
        p.active_shard_windows + p.idle_shard_windows + p.off_shard_windows,
        (shards * summary.windows) as u64,
        "every shard-window accounted: {p:?}"
    );
    if summary.report.requests > 0 {
        assert!(p.modeled_joules > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn saturated_pool_degrades_instead_of_dropping(
        reqs in proptest::collection::vec(req_strategy(), 1..24),
        shards in 1usize..=3,
        window in 2usize..=5,
        depth_threshold in prop_oneof![Just(0usize), Just(2), Just(usize::MAX)],
        routing in routing_strategy(),
        pool in pool_strategy(),
        sessions in 0usize..=3,
    ) {
        run_case(reqs, shards, window, depth_threshold, routing, pool, sessions);
    }
}
