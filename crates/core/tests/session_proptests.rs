//! Property tests for the session lifecycle under continuous batching:
//! random interleavings of open / step / burst-step / close against a
//! live [`ServeEngine`] with a deliberately tiny session table, checked
//! against a plain in-test model of what every session's KV cache must
//! contain.
//!
//! Each session's cache rows carry a **marker value** (`id * 1000 +
//! step`), so the three core invariants are bit-checkable:
//!
//! * **no ticket is ever lost** — every submitted prefill/decode wait
//!   resolves (`Ok` here; the typed-error paths are covered by the unit
//!   tests in `serve.rs`), and the finish summary's per-phase request
//!   counts equal exactly what the driver submitted;
//! * **KV rows never mix across sessions** — a row written by session
//!   `a` landing in session `b`'s cache would carry `a`'s marker and
//!   fail the bit compare;
//! * **cache length == tokens generated** — `session_context_rows` is
//!   always `1 + steps` and `session_tokens` is always `steps`, even
//!   across LRU overflow evictions forced by opening more sessions than
//!   `session_capacity`.
//!
//! The 48 cases are pinned (`ProptestConfig::with_cases(48)`) so the
//! suite's cost stays flat in CI.

use std::collections::HashMap;

use onesa_core::serve::{AdmissionPolicy, InterleavePolicy, ServeConfig, ServeEngine, SessionId};
use onesa_core::{Parallelism, Program};
use onesa_plan::{EvalMode, Op};
use onesa_sim::ArrayConfig;
use onesa_tensor::Tensor;
use proptest::prelude::*;

/// Slots the action sequence addresses; one more than
/// `SESSION_CAPACITY` so opens force LRU overflow evictions.
const SLOTS: usize = 4;
const SESSION_CAPACITY: usize = 3;
const D: usize = 3;

#[derive(Debug, Clone, Copy)]
enum Action {
    /// Open a session in this slot (closing any previous occupant) and
    /// run its prefill, seeding the cache with marker row 0.
    Open(usize),
    /// One decode step for this slot's session: append the next marker
    /// row through `ConcatRows` and verify the whole cache.
    Step(usize),
    /// One decode step for *every* live slot, submitted before any is
    /// waited — a true continuous-batching window with steps from many
    /// sessions in flight at once.
    Burst,
    /// Close this slot's session.
    Close(usize),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..SLOTS).prop_map(Action::Open),
        (0..SLOTS).prop_map(Action::Step),
        (0..SLOTS).prop_map(Action::Step),
        Just(Action::Burst),
        (0..SLOTS).prop_map(Action::Close),
    ]
}

/// The marker row session `id` appends at `step`: every element is
/// `id * 1000 + step`, exactly representable in `f32` at these scales.
fn marker(id: SessionId, step: usize) -> f32 {
    (id * 1000 + step as u64) as f32
}

fn marker_row(id: SessionId, step: usize) -> Tensor {
    Tensor::from_vec(vec![marker(id, step); D], &[1, D]).unwrap()
}

/// Prefill: the marker row passes through unchanged and becomes the
/// session's first cache row.
fn prefill_program() -> Program {
    let mut b = Program::builder("sess-prop-prefill", EvalMode::Exact);
    let x = b.input(&[1, D]);
    let y = b.push(Op::Scale(1.0), &[x]);
    b.mark_session_output(y);
    b.finish().unwrap()
}

/// Decode at context `ctx`: append the step's marker row to the
/// session-resident cache.
fn decode_program(ctx: usize) -> Program {
    let mut b = Program::builder("sess-prop-decode", EvalMode::Exact);
    let x = b.input(&[1, D]);
    let cache = b.session_input(&[ctx, D]);
    let s = b.push(Op::Scale(1.0), &[x]);
    let grown = b.push(Op::ConcatRows, &[cache, s]);
    b.mark_session_output(grown);
    b.finish().unwrap()
}

/// Bit-compares a session's resident KV against the rows the model says
/// it must hold — the no-mixing and length invariants in one check.
fn check_kv(engine: &ServeEngine, id: SessionId, rows: &[f32]) {
    let kv = engine
        .session_kv(id)
        .unwrap_or_else(|| panic!("session {id} should be resident"));
    assert_eq!(kv.len(), 1, "one cache tensor per session program");
    assert_eq!(kv[0].shape().dims(), &[rows.len(), D]);
    for (r, want) in rows.iter().enumerate() {
        for (c, got) in kv[0].as_slice()[r * D..(r + 1) * D].iter().enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "session {id} cache row {r} col {c}: {got} vs {want} — foreign row?"
            );
        }
    }
    assert_eq!(engine.session_context_rows(id), Some(rows.len()));
    assert_eq!(engine.session_tokens(id), Some(rows.len() as u64 - 1));
}

struct Driver {
    engine: ServeEngine,
    /// Slot → live session id (as far as the model knows).
    slots: [Option<SessionId>; SLOTS],
    /// Session id → marker value of every cache row it must hold.
    expected: HashMap<SessionId, Vec<f32>>,
    opened: u64,
    closed: u64,
    prefills: usize,
    steps: usize,
}

impl Driver {
    /// Drops model entries for sessions the table evicted (LRU overflow
    /// triggered by `open`). The model never predicts the victim — it
    /// observes evictions through `session_context_rows` turning `None`.
    fn prune_evicted(&mut self) {
        for slot in 0..SLOTS {
            if let Some(id) = self.slots[slot] {
                if self.engine.session_context_rows(id).is_none() {
                    self.slots[slot] = None;
                    self.expected.remove(&id);
                }
            }
        }
    }

    fn open(&mut self, slot: usize) {
        if let Some(id) = self.slots[slot].take() {
            assert!(self.engine.close_session(id), "tracked session closes");
            self.expected.remove(&id);
            self.closed += 1;
        }
        let id = self.engine.open_session();
        self.opened += 1;
        self.slots[slot] = Some(id);
        self.prune_evicted();
        let ticket = self
            .engine
            .submit_prefill(id, prefill_program(), vec![marker_row(id, 0)], 1)
            .expect("prefill submits on a fresh session");
        ticket.wait().expect("prefill ticket resolves");
        self.prefills += 1;
        self.expected.insert(id, vec![marker(id, 0)]);
        check_kv(&self.engine, id, &self.expected[&id]);
    }

    fn step(&mut self, slot: usize) {
        let Some(id) = self.slots[slot] else { return };
        let rows = self.expected.get_mut(&id).expect("tracked session");
        let ctx = rows.len();
        assert_eq!(self.engine.session_context_rows(id), Some(ctx));
        let ticket = self
            .engine
            .submit_decode(id, decode_program(ctx), vec![marker_row(id, ctx)])
            .expect("decode submits on an idle live session");
        let outcome = ticket.wait().expect("decode ticket resolves");
        assert_eq!(outcome.output.dims(), &[ctx + 1, D]);
        rows.push(marker(id, ctx));
        self.steps += 1;
        check_kv(&self.engine, id, &self.expected[&id]);
    }

    fn burst(&mut self) {
        let live: Vec<(usize, SessionId)> = (0..SLOTS)
            .filter_map(|s| self.slots[s].map(|id| (s, id)))
            .collect();
        let tickets: Vec<_> = live
            .iter()
            .map(|&(_, id)| {
                let ctx = self.expected[&id].len();
                let t = self
                    .engine
                    .submit_decode(id, decode_program(ctx), vec![marker_row(id, ctx)])
                    .expect("burst decode submits");
                (id, ctx, t)
            })
            .collect();
        for (id, ctx, t) in tickets {
            let outcome = t.wait().expect("burst decode ticket resolves");
            assert_eq!(outcome.output.dims(), &[ctx + 1, D]);
            self.expected.get_mut(&id).unwrap().push(marker(id, ctx));
            self.steps += 1;
        }
        for &(_, id) in &live {
            check_kv(&self.engine, id, &self.expected[&id]);
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(id) = self.slots[slot].take() {
            assert!(self.engine.close_session(id), "tracked session closes");
            self.expected.remove(&id);
            self.closed += 1;
        }
    }
}

fn run_scenario(actions: Vec<Action>, shards: usize, interleave: InterleavePolicy) {
    let cfg = ServeConfig::uniform(shards, ArrayConfig::new(8, 16), Parallelism::Sequential)
        .with_admission(AdmissionPolicy::Fifo { window: 3 })
        .with_interleave(interleave)
        .with_session_capacity(SESSION_CAPACITY);
    let mut d = Driver {
        engine: ServeEngine::start(cfg).unwrap(),
        slots: [None; SLOTS],
        expected: HashMap::new(),
        opened: 0,
        closed: 0,
        prefills: 0,
        steps: 0,
    };
    for a in actions {
        match a {
            Action::Open(s) => d.open(s),
            Action::Step(s) => d.step(s),
            Action::Burst => d.burst(),
            Action::Close(s) => d.close(s),
        }
    }
    // Final audit of every still-live session, then the lifetime
    // accounting: nothing orphaned, nothing double-counted.
    let live = d.expected.len() as u64;
    for (&id, rows) in &d.expected {
        check_kv(&d.engine, id, rows);
    }
    let Driver {
        engine,
        opened,
        closed,
        prefills,
        steps,
        ..
    } = d;
    let summary = engine.finish().unwrap();
    assert_eq!(summary.sessions.opened, opened);
    assert_eq!(summary.sessions.closed, closed);
    assert_eq!(summary.sessions.evicted_deadline, 0);
    assert_eq!(summary.sessions.live, live);
    assert_eq!(
        summary.sessions.opened,
        summary.sessions.closed
            + summary.sessions.evicted_deadline
            + summary.sessions.evicted_overflow
            + summary.sessions.live,
        "no session unaccounted for: {:?}",
        summary.sessions
    );
    assert_eq!(summary.prefill.requests, prefills, "lost prefill tickets");
    assert_eq!(summary.prefill.tokens, prefills as u64);
    assert_eq!(summary.decode.requests, steps, "lost decode tickets");
    assert_eq!(summary.decode.tokens, steps as u64);
    assert_eq!(summary.expired, 0);
    assert_eq!(summary.failovers, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn session_lifecycle_holds_its_invariants(
        actions in proptest::collection::vec(action_strategy(), 1..40),
        shards in 1usize..=3,
        interleave in prop_oneof![
            Just(InterleavePolicy::Mixed),
            Just(InterleavePolicy::PrefillFirst),
            Just(InterleavePolicy::DecodeFirst),
        ],
    ) {
        run_scenario(actions, shards, interleave);
    }
}
