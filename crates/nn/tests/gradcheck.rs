//! Numerical gradient checks for every backward pass.
//!
//! Each check perturbs one parameter (or input) element by ±ε, measures
//! the loss change and compares with the analytic gradient.

use onesa_nn::layers::{
    softmax_cross_entropy, BatchNorm2d, Conv2d, Embedding, Gelu, LayerNorm, Linear,
    MultiHeadAttention, Relu,
};
use onesa_tensor::im2col::Conv2dGeometry;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

const EPS: f32 = 1e-3;
const TOL: f32 = 2e-2;

/// Scalar loss used by all checks: 0.5·Σ y².
fn loss_of(y: &Tensor) -> f32 {
    0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
}

/// dLoss/dy = y.
fn dloss(y: &Tensor) -> Tensor {
    y.clone()
}

fn check_close(analytic: f32, numeric: f32, what: &str) {
    let denom = analytic.abs().max(numeric.abs()).max(1e-2);
    let rel = (analytic - numeric).abs() / denom;
    assert!(
        rel < TOL,
        "{what}: analytic {analytic} vs numeric {numeric} (rel {rel})"
    );
}

#[test]
fn linear_gradients() {
    let mut rng = Pcg32::seed_from_u64(1);
    let x = rng.randn(&[3, 4], 1.0);
    let mut layer = Linear::new(&mut rng, 4, 5);

    let y = layer.forward(&x);
    let dx = layer.backward(&dloss(&y));

    // Weight gradient.
    for idx in [0usize, 7, 19] {
        let analytic = layer.w.grad.as_slice()[idx];
        let orig = layer.w.value.as_slice()[idx];
        layer.w.value.as_mut_slice()[idx] = orig + EPS;
        let lp = loss_of(&layer.infer(&x));
        layer.w.value.as_mut_slice()[idx] = orig - EPS;
        let lm = loss_of(&layer.infer(&x));
        layer.w.value.as_mut_slice()[idx] = orig;
        check_close(
            analytic,
            (lp - lm) / (2.0 * EPS),
            &format!("linear w[{idx}]"),
        );
    }
    // Input gradient.
    for idx in [0usize, 5, 11] {
        let analytic = dx.as_slice()[idx];
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += EPS;
        let lp = loss_of(&layer.infer(&xp));
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= EPS;
        let lm = loss_of(&layer.infer(&xm));
        check_close(
            analytic,
            (lp - lm) / (2.0 * EPS),
            &format!("linear x[{idx}]"),
        );
    }
}

#[test]
fn conv2d_gradients() {
    let mut rng = Pcg32::seed_from_u64(2);
    let geo = Conv2dGeometry {
        in_channels: 2,
        out_channels: 3,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let mut layer = Conv2d::new(&mut rng, geo);
    let x = rng.randn(&[2, 5, 5], 1.0);

    let y = layer.forward(&x);
    let dx = layer.backward(&dloss(&y));

    for idx in [0usize, 13, 40] {
        let analytic = layer.w.grad.as_slice()[idx];
        let orig = layer.w.value.as_slice()[idx];
        layer.w.value.as_mut_slice()[idx] = orig + EPS;
        let lp = loss_of(&layer.infer(&x));
        layer.w.value.as_mut_slice()[idx] = orig - EPS;
        let lm = loss_of(&layer.infer(&x));
        layer.w.value.as_mut_slice()[idx] = orig;
        check_close(analytic, (lp - lm) / (2.0 * EPS), &format!("conv w[{idx}]"));
    }
    for idx in [0usize, 12, 33] {
        let analytic = dx.as_slice()[idx];
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += EPS;
        let lp = loss_of(&layer.infer(&xp));
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= EPS;
        let lm = loss_of(&layer.infer(&xm));
        check_close(analytic, (lp - lm) / (2.0 * EPS), &format!("conv x[{idx}]"));
    }
}

#[test]
fn layernorm_gradients() {
    let mut rng = Pcg32::seed_from_u64(3);
    let x = rng.randn(&[3, 6], 1.0);
    let mut ln = LayerNorm::new(6);
    // Non-trivial affine so γ gradients matter.
    ln.gamma.value = rng.randn(&[6], 0.2).map(|v| v + 1.0);
    ln.beta.value = rng.randn(&[6], 0.2);

    let y = ln.forward(&x);
    let dx = ln.backward(&dloss(&y));

    let eval = |ln: &mut LayerNorm, x: &Tensor| -> f32 {
        let y = ln.forward(x);
        ln.backward(&Tensor::zeros(y.dims())); // clear cache
        loss_of(&y)
    };
    for idx in [0usize, 3, 5] {
        let analytic_g = {
            // Re-derive: gradient was accumulated during backward above.
            ln.gamma.grad.as_slice()[idx]
        };
        let orig = ln.gamma.value.as_slice()[idx];
        ln.gamma.value.as_mut_slice()[idx] = orig + EPS;
        let lp = eval(&mut ln, &x);
        ln.gamma.value.as_mut_slice()[idx] = orig - EPS;
        let lm = eval(&mut ln, &x);
        ln.gamma.value.as_mut_slice()[idx] = orig;
        check_close(
            analytic_g,
            (lp - lm) / (2.0 * EPS),
            &format!("ln gamma[{idx}]"),
        );
    }
    for idx in [1usize, 8, 17] {
        let analytic = dx.as_slice()[idx];
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += EPS;
        let lp = eval(&mut ln, &xp);
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= EPS;
        let lm = eval(&mut ln, &xm);
        check_close(analytic, (lp - lm) / (2.0 * EPS), &format!("ln x[{idx}]"));
    }
}

#[test]
fn batchnorm_gradients() {
    let mut rng = Pcg32::seed_from_u64(4);
    let xs = vec![rng.randn(&[2, 3, 3], 1.0), rng.randn(&[2, 3, 3], 1.0)];
    let mut bn = BatchNorm2d::new(2);
    bn.gamma.value = Tensor::from_vec(vec![1.3, 0.7], &[2]).unwrap();

    let ys = bn.forward_train(&xs);
    let dys: Vec<Tensor> = ys.iter().map(dloss).collect();
    let dxs = bn.backward(&dys);

    let eval = |bn: &mut BatchNorm2d, xs: &[Tensor]| -> f32 {
        let ys = bn.forward_train(xs);
        let zero: Vec<Tensor> = ys.iter().map(|y| Tensor::zeros(y.dims())).collect();
        bn.backward(&zero);
        ys.iter().map(loss_of).sum()
    };
    for idx in [0usize, 10] {
        let analytic = dxs[0].as_slice()[idx];
        let mut xsp = xs.clone();
        xsp[0].as_mut_slice()[idx] += EPS;
        let lp = eval(&mut bn, &xsp);
        let mut xsm = xs.clone();
        xsm[0].as_mut_slice()[idx] -= EPS;
        let lm = eval(&mut bn, &xsm);
        check_close(analytic, (lp - lm) / (2.0 * EPS), &format!("bn x[{idx}]"));
    }
}

#[test]
fn activation_gradients() {
    let mut rng = Pcg32::seed_from_u64(5);
    let x = rng.randn(&[4, 4], 1.5);
    for (name, fwd, bwd) in [
        (
            "relu",
            Box::new(|x: &Tensor| Relu::new().forward(x)) as Box<dyn Fn(&Tensor) -> Tensor>,
            Box::new(|x: &Tensor, dy: &Tensor| {
                let mut r = Relu::new();
                let _ = r.forward(x);
                r.backward(dy)
            }) as Box<dyn Fn(&Tensor, &Tensor) -> Tensor>,
        ),
        (
            "gelu",
            Box::new(|x: &Tensor| Gelu::new().forward(x)),
            Box::new(|x: &Tensor, dy: &Tensor| {
                let mut g = Gelu::new();
                let _ = g.forward(x);
                g.backward(dy)
            }),
        ),
    ] {
        let y = fwd(&x);
        let dx = bwd(&x, &dloss(&y));
        for idx in [0usize, 7, 15] {
            // Skip ReLU kink neighbourhood.
            if x.as_slice()[idx].abs() < 0.05 {
                continue;
            }
            let analytic = dx.as_slice()[idx];
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += EPS;
            let lp = loss_of(&fwd(&xp));
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= EPS;
            let lm = loss_of(&fwd(&xm));
            check_close(
                analytic,
                (lp - lm) / (2.0 * EPS),
                &format!("{name} x[{idx}]"),
            );
        }
    }
}

#[test]
fn attention_gradients() {
    let mut rng = Pcg32::seed_from_u64(6);
    let x = rng.randn(&[4, 8], 0.8);
    let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
    let sm = |s: &Tensor| onesa_cpwl::ops::softmax_rows_exact(s).unwrap();

    let y = attn.forward_with(&x, &sm, true);
    let dx = attn.backward(&dloss(&y));

    let eval = |attn: &mut MultiHeadAttention, x: &Tensor| -> f32 {
        loss_of(&attn.forward_with(x, &sm, false))
    };
    for idx in [0usize, 9, 23, 31] {
        let analytic = dx.as_slice()[idx];
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += EPS;
        let lp = eval(&mut attn, &xp);
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= EPS;
        let lm = eval(&mut attn, &xm);
        check_close(analytic, (lp - lm) / (2.0 * EPS), &format!("attn x[{idx}]"));
    }
}

#[test]
fn embedding_gradients() {
    let mut rng = Pcg32::seed_from_u64(7);
    let mut emb = Embedding::new(&mut rng, 6, 4, 3);
    let ids = [2usize, 5, 2];
    let y = emb.forward(&ids);
    emb.backward(&dloss(&y));

    for (row, col) in [(2usize, 0usize), (5, 2)] {
        let idx = row * 3 + col;
        let analytic = emb.table.grad.as_slice()[idx];
        let orig = emb.table.value.as_slice()[idx];
        emb.table.value.as_mut_slice()[idx] = orig + EPS;
        let lp = loss_of(&emb.infer(&ids));
        emb.table.value.as_mut_slice()[idx] = orig - EPS;
        let lm = loss_of(&emb.infer(&ids));
        emb.table.value.as_mut_slice()[idx] = orig;
        check_close(
            analytic,
            (lp - lm) / (2.0 * EPS),
            &format!("emb[{row},{col}]"),
        );
    }
}

#[test]
fn cross_entropy_gradient_numeric() {
    let logits = Tensor::from_vec(vec![1.0, -0.5, 0.3, 2.0, 0.0, -1.0], &[2, 3]).unwrap();
    let labels = [2usize, 0];
    let (_, d) = softmax_cross_entropy(&logits, &labels);
    for idx in 0..6 {
        let mut lp = logits.clone();
        lp.as_mut_slice()[idx] += EPS;
        let (loss_p, _) = softmax_cross_entropy(&lp, &labels);
        let mut lm = logits.clone();
        lm.as_mut_slice()[idx] -= EPS;
        let (loss_m, _) = softmax_cross_entropy(&lm, &labels);
        check_close(
            d.as_slice()[idx],
            (loss_p - loss_m) / (2.0 * EPS),
            &format!("ce[{idx}]"),
        );
    }
}
