//! Property-based tests for the NN substrate's inference invariants.

use onesa_nn::workloads::{self, Phase};
use onesa_nn::InferenceMode;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, stats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CPWL softmax outputs are a valid distribution at any granularity:
    /// non-negative, rows summing close to one.
    #[test]
    fn cpwl_softmax_is_distribution(seed in 0u64..500, g in prop_oneof![
        Just(0.1f32), Just(0.25), Just(0.5), Just(1.0)
    ]) {
        let mode = InferenceMode::cpwl_unquantized(g).unwrap();
        let x = Pcg32::seed_from_u64(seed).randn(&[6, 12], 2.0);
        let y = mode.softmax_rows(&x);
        for &v in y.as_slice() {
            prop_assert!(v >= -1e-4, "negative probability {}", v);
        }
        for s in gemm::row_sums(&y).unwrap() {
            prop_assert!((s - 1.0).abs() < 0.25, "row sum {}", s);
        }
    }

    /// Finer granularity never evaluates GELU worse (in RMS) than
    /// coarser granularity on the same data.
    #[test]
    fn finer_granularity_no_worse(seed in 0u64..500) {
        let x = Pcg32::seed_from_u64(seed).randn(&[8, 8], 2.0);
        let exact = InferenceMode::Exact.gelu(&x);
        let fine = InferenceMode::cpwl_unquantized(0.125).unwrap().gelu(&x);
        let coarse = InferenceMode::cpwl_unquantized(1.0).unwrap().gelu(&x);
        let e_fine = stats::rms_diff(fine.as_slice(), exact.as_slice());
        let e_coarse = stats::rms_diff(coarse.as_slice(), exact.as_slice());
        prop_assert!(e_fine <= e_coarse + 1e-5, "{} vs {}", e_fine, e_coarse);
    }

    /// Layer norm under any mode produces near-normalized rows when the
    /// affine is identity.
    #[test]
    fn layernorm_normalizes(seed in 0u64..500, g in prop_oneof![
        Just(0.1f32), Just(0.25), Just(0.5)
    ]) {
        let mode = InferenceMode::cpwl_unquantized(g).unwrap();
        let x = Pcg32::seed_from_u64(seed).randn(&[4, 24], 2.0);
        let gamma = vec![1.0f32; 24];
        let beta = vec![0.0f32; 24];
        let y = mode.layernorm_rows(&x, &gamma, &beta, 1e-5);
        for i in 0..4 {
            let row = y.row(i).unwrap();
            let mean: f32 = row.iter().sum::<f32>() / 24.0;
            prop_assert!(mean.abs() < 0.1, "row {} mean {}", i, mean);
        }
    }

    /// Workload op accounting is internally consistent: total MACs equal
    /// the sum over GEMM phases, and every phase contributes.
    #[test]
    fn workload_accounting_consistent(seq in 8usize..64) {
        let w = workloads::bert_base(seq);
        let from_phases: u64 = w.phases.iter().map(|p| match *p {
            Phase::Gemm { m, k, n } => (m * k * n) as u64,
            _ => 0,
        }).sum();
        prop_assert_eq!(w.total_macs(), from_phases);
        prop_assert!(w.nonlinear_elems() > 0);
        // MACs grow monotonically with sequence length.
        let bigger = workloads::bert_base(seq + 8);
        prop_assert!(bigger.total_macs() > w.total_macs());
    }

    /// INT16 boundary quantization is idempotent (quantizing a
    /// quantized tensor changes nothing beyond float noise).
    #[test]
    fn boundary_idempotent(seed in 0u64..500) {
        let mode = InferenceMode::cpwl(0.25).unwrap();
        let x = Pcg32::seed_from_u64(seed).randn(&[5, 5], 3.0);
        let once = mode.boundary(&x);
        let twice = mode.boundary(&once);
        prop_assert!(stats::max_abs_diff(once.as_slice(), twice.as_slice()) < 1e-4);
    }
}
