//! Training configuration shared by the three model families.

/// Hyperparameters for the in-repo training runs.
///
/// The defaults are sized for the synthetic Table III datasets: small
/// models, a few hundred samples, seconds of wall-clock per task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size (CNN only; the transformer trains per sequence
    /// and the GCN full-batch).
    pub batch_size: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            lr: 3e-3,
            batch_size: 16,
            seed: 42,
        }
    }
}

impl TrainConfig {
    /// A faster configuration for CI/tests.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 4,
            lr: 5e-3,
            batch_size: 16,
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_shorter() {
        assert!(TrainConfig::quick().epochs < TrainConfig::default().epochs);
    }
}
