//! Real network layer shapes: the workload descriptors behind Fig 1 and
//! Table IV.
//!
//! Performance on the array depends only on layer *shapes*, so the
//! ResNet-50 / BERT-base / GCN workloads here carry the exact GEMM and
//! nonlinear-pass dimensions of the real models. Sequence length 64 for
//! BERT and the Reddit-scale GCN sizing are calibrated so total MACs
//! match the op counts implied by the paper's own CPU measurements
//! (latency × throughput): ≈ 4.0 G for ResNet-50, ≈ 5.5 G for BERT,
//! ≈ 1.2 G for the GCN.

use crate::profile::{ops_per_element, OpClass, OpCounts};

/// One phase of a network's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A general matrix multiply `M×K · K×N` (convolutions via im2col).
    Gemm {
        /// Rows of the left operand.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of the right operand.
        n: usize,
    },
    /// A pointwise pass over an `M×N` tensor (activation, elementwise
    /// multiply/add); one IPF + MHP on the array.
    Pointwise {
        /// Op class for Fig 1 accounting.
        class: OpClass,
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Whether the activation is GELU-like (8 ops/element) rather
        /// than ReLU-like (1 op/element).
        gelu_like: bool,
    },
    /// Row-wise softmax over `rows × cols`.
    Softmax {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Batch/layer normalization over `rows × cols`.
    Norm {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
}

/// The model family a workload belongs to (Table IV columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Convolutional networks (ResNet-50 column).
    Cnn,
    /// Transformer encoders (BERT-base column).
    Transformer,
    /// Graph convolutional networks (GCN column).
    Gnn,
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelFamily::Cnn => f.write_str("ResNet-50"),
            ModelFamily::Transformer => f.write_str("BERT-base"),
            ModelFamily::Gnn => f.write_str("GCN"),
        }
    }
}

/// A named sequence of phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Network name.
    pub name: String,
    /// Model family (used by the baseline processor models).
    pub family: ModelFamily,
    /// Execution phases in order.
    pub phases: Vec<Phase>,
}

impl Workload {
    /// Total multiply-accumulates in the GEMM phases.
    pub fn total_macs(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match *p {
                Phase::Gemm { m, k, n } => (m * k * n) as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total elements through nonlinear (non-GEMM) phases.
    pub fn nonlinear_elems(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match *p {
                Phase::Gemm { .. } => 0,
                Phase::Pointwise { m, n, .. } => (m * n) as u64,
                Phase::Softmax { rows, cols } => (rows * cols) as u64,
                Phase::Norm { rows, cols } => (rows * cols) as u64,
            })
            .sum()
    }

    /// Op counts by class (Fig 1 accounting).
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::new();
        for p in &self.phases {
            match *p {
                Phase::Gemm { m, k, n } => c.add(OpClass::Gemm, (m * k * n) as u64),
                Phase::Pointwise {
                    class,
                    m,
                    n,
                    gelu_like,
                } => c.add(class, (m * n) as u64 * ops_per_element(class, gelu_like)),
                Phase::Softmax { rows, cols } => c.add(
                    OpClass::Softmax,
                    (rows * cols) as u64 * ops_per_element(OpClass::Softmax, false),
                ),
                Phase::Norm { rows, cols } => c.add(
                    OpClass::Norm,
                    (rows * cols) as u64 * ops_per_element(OpClass::Norm, false),
                ),
            }
        }
        c
    }
}

fn conv(phases: &mut Vec<Phase>, hw: usize, cin: usize, cout: usize, k: usize, stride: usize) {
    let ohw = hw / stride;
    let m = ohw * ohw;
    phases.push(Phase::Gemm {
        m,
        k: cin * k * k,
        n: cout,
    });
    // BN + ReLU after every convolution.
    phases.push(Phase::Norm {
        rows: m,
        cols: cout,
    });
    phases.push(Phase::Pointwise {
        class: OpClass::Activation,
        m,
        n: cout,
        gelu_like: false,
    });
}

/// ResNet-50 as an im2col GEMM workload.
///
/// `input` is the square input resolution: 224 for the ImageNet-shape
/// model (Table IV) or 32 for the CIFAR-10 variant (Fig 1a; 3×3 stem,
/// no initial downsampling — the standard CIFAR adaptation).
pub fn resnet50(input: usize) -> Workload {
    let mut phases = Vec::new();
    let imagenet = input >= 112;
    let mut hw = if imagenet {
        conv(&mut phases, input, 3, 64, 7, 2); // stem 7×7/2
        input / 4 // stem stride + 3×3/2 max pool
    } else {
        conv(&mut phases, input, 3, 64, 3, 1); // CIFAR stem
        input
    };
    let stages: [(usize, usize, usize); 4] = [(64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2)];
    let mut cin = 64;
    for (c, blocks, first_stride) in stages {
        for b in 0..blocks {
            let stride = if b == 0 { first_stride } else { 1 };
            let out_hw = hw / stride;
            // Bottleneck: 1×1 reduce, 3×3, 1×1 expand.
            conv(&mut phases, hw, cin, c, 1, stride);
            conv(&mut phases, out_hw, c, c, 3, 1);
            conv(&mut phases, out_hw, c, 4 * c, 1, 1);
            if b == 0 {
                // Projection shortcut.
                conv(&mut phases, hw, cin, 4 * c, 1, stride);
            }
            // Residual add.
            phases.push(Phase::Pointwise {
                class: OpClass::Add,
                m: out_hw * out_hw,
                n: 4 * c,
                gelu_like: false,
            });
            cin = 4 * c;
            hw = out_hw;
        }
    }
    // Classifier.
    phases.push(Phase::Gemm {
        m: 1,
        k: 2048,
        n: 1000,
    });
    phases.push(Phase::Softmax {
        rows: 1,
        cols: 1000,
    });
    Workload {
        name: format!("resnet50-{input}"),
        family: ModelFamily::Cnn,
        phases,
    }
}

/// BERT-base encoder as a GEMM workload at sequence length `seq`
/// (12 layers, hidden 768, 12 heads, FFN 3072).
pub fn bert_base(seq: usize) -> Workload {
    let d = 768;
    let heads = 12;
    let dk = d / heads;
    let ff = 3072;
    let mut phases = Vec::new();
    for _layer in 0..12 {
        for _qkv in 0..3 {
            phases.push(Phase::Gemm { m: seq, k: d, n: d });
        }
        for _h in 0..heads {
            phases.push(Phase::Gemm {
                m: seq,
                k: dk,
                n: seq,
            }); // Q·Kᵀ
            phases.push(Phase::Softmax {
                rows: seq,
                cols: seq,
            });
            phases.push(Phase::Gemm {
                m: seq,
                k: seq,
                n: dk,
            }); // P·V
        }
        phases.push(Phase::Gemm { m: seq, k: d, n: d }); // output proj
        phases.push(Phase::Pointwise {
            class: OpClass::Add,
            m: seq,
            n: d,
            gelu_like: false,
        });
        phases.push(Phase::Norm { rows: seq, cols: d });
        phases.push(Phase::Gemm {
            m: seq,
            k: d,
            n: ff,
        });
        phases.push(Phase::Pointwise {
            class: OpClass::Activation,
            m: seq,
            n: ff,
            gelu_like: true,
        });
        phases.push(Phase::Gemm {
            m: seq,
            k: ff,
            n: d,
        });
        phases.push(Phase::Pointwise {
            class: OpClass::Add,
            m: seq,
            n: d,
            gelu_like: false,
        });
        phases.push(Phase::Norm { rows: seq, cols: d });
    }
    // Pooler + classifier head.
    phases.push(Phase::Gemm { m: 1, k: d, n: d });
    phases.push(Phase::Pointwise {
        class: OpClass::Activation,
        m: 1,
        n: d,
        gelu_like: true,
    });
    phases.push(Phase::Gemm { m: 1, k: d, n: 2 });
    phases.push(Phase::Softmax { rows: 1, cols: 2 });
    Workload {
        name: format!("bert-base-seq{seq}"),
        family: ModelFamily::Transformer,
        phases,
    }
}

/// A Reddit-scale two-layer GCN: the sparse `Â·H` products appear as
/// GEMMs with `k = average degree` per node (the MAC count of the SpMM).
pub fn gcn_reddit_like() -> Workload {
    let nodes = 24_576;
    let feats = 602;
    let hidden = 64;
    let classes = 41;
    let degree = 50;
    let phases = vec![
        Phase::Gemm {
            m: nodes,
            k: feats,
            n: hidden,
        }, // X·W1
        Phase::Gemm {
            m: nodes,
            k: degree,
            n: hidden,
        }, // Â·(XW1) as SpMM
        Phase::Pointwise {
            class: OpClass::Activation,
            m: nodes,
            n: hidden,
            gelu_like: false,
        },
        Phase::Gemm {
            m: nodes,
            k: hidden,
            n: classes,
        }, // H·W2
        Phase::Gemm {
            m: nodes,
            k: degree,
            n: classes,
        }, // Â·(HW2)
        Phase::Softmax {
            rows: nodes,
            cols: classes,
        },
    ];
    Workload {
        name: "gcn-reddit-like".to_string(),
        family: ModelFamily::Gnn,
        phases,
    }
}

/// The three Table IV workloads, in the paper's column order.
pub fn table4_workloads() -> Vec<Workload> {
    vec![resnet50(224), bert_base(64), gcn_reddit_like()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_macs_match_published_count() {
        // ResNet-50 at 224² is ≈ 4.1 GMACs.
        let w = resnet50(224);
        let g = w.total_macs() as f64 / 1e9;
        assert!((3.5..4.8).contains(&g), "got {g} GMACs");
    }

    #[test]
    fn bert_base_macs_match_calibration() {
        // Seq 64 ≈ 5.5 GMACs (the paper's measured op count).
        let w = bert_base(64);
        let g = w.total_macs() as f64 / 1e9;
        assert!((4.8..6.2).contains(&g), "got {g} GMACs");
    }

    #[test]
    fn gcn_macs_match_calibration() {
        let w = gcn_reddit_like();
        let g = w.total_macs() as f64 / 1e9;
        assert!((0.9..1.4).contains(&g), "got {g} GMACs");
    }

    #[test]
    fn fig1_shapes_resnet_cifar() {
        // Fig 1(a): GEMM dominates, Norm is the largest non-GEMM class,
        // activations next, softmax negligible.
        let c = resnet50(32).op_counts();
        assert!(c.share(OpClass::Gemm) > 50.0);
        assert!(c.share(OpClass::Norm) > c.share(OpClass::Activation));
        assert!(c.share(OpClass::Softmax) < 1.0);
    }

    #[test]
    fn fig1_shapes_bert() {
        // Fig 1(b) shape: GEMM dominates; among the nonlinear classes the
        // ordering is GELU > layer norm > softmax (the paper's absolute
        // percentages are larger than honest op counts give — see
        // EXPERIMENTS.md — but the ranking is preserved).
        let c = bert_base(64).op_counts();
        assert!(c.share(OpClass::Gemm) > 70.0);
        assert!(c.share(OpClass::Activation) > c.share(OpClass::Norm));
        assert!(c.share(OpClass::Norm) > c.share(OpClass::Softmax));
        assert!(c.share(OpClass::Softmax) > 0.0);
    }

    #[test]
    fn nonlinear_elems_positive() {
        for w in table4_workloads() {
            assert!(w.nonlinear_elems() > 0, "{}", w.name);
            assert!(w.total_macs() > 0, "{}", w.name);
        }
    }
}
