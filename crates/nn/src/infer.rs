//! Inference backends: exact arithmetic versus the CPWL path the array
//! executes.
//!
//! [`InferenceMode::Cpwl`] replaces every nonlinear operation with its
//! capped piecewise-linear lowering (exactly the IPF + MHP math from
//! `onesa-cpwl`) and, when `quantize` is set, round-trips activations
//! through symmetric INT16 at every layer boundary — the paper's
//! evaluation precision.

use onesa_cpwl::ops::{self, TableSet};
use onesa_cpwl::{CpwlError, NonlinearFn};
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::quant::QuantTensor;
use onesa_tensor::Tensor;
use std::sync::Arc;
use std::thread;

/// Runs an inference function over a batch of inputs, fanned out across
/// worker threads.
///
/// Inputs are split into contiguous chunks, one per worker, and results
/// are returned **in input order**. Each sample goes through exactly the
/// same computation as a solo call of `f`, so batched results are
/// bit-identical to `inputs.iter().map(f)` for every [`Parallelism`]
/// setting — the property `tests/integration_parallel.rs` locks in.
///
/// This is the batched-inference entry point the serving layer
/// (`onesa_core::BatchEngine`, the `serving_throughput` example) builds
/// on; models expose shaped wrappers over it
/// ([`SmallCnn::logits_batch`](crate::models::SmallCnn::logits_batch),
/// [`TinyBert::predict_batch`](crate::models::TinyBert::predict_batch)).
/// For asynchronous sharded serving, the models also split inference at
/// the classifier boundary
/// ([`SmallCnn::pooled_features`](crate::models::SmallCnn::pooled_features)
/// plus `classifier()`, likewise on `TinyBert`) so
/// `onesa_core::serve::ServeEngine::classify_batch` can route a whole
/// batch's final shared-weight GEMMs through the admission queue and
/// shard pool, coalescing them into one kernel call — see
/// `examples/sharded_serving.rs`.
///
/// # Example
///
/// ```
/// use onesa_nn::infer::infer_batch;
/// use onesa_tensor::parallel::Parallelism;
///
/// let inputs = vec![1.0f32, 2.0, 3.0, 4.0];
/// let squares = infer_batch(Parallelism::Threads(2), &inputs, |x| x * x);
/// assert_eq!(squares, vec![1.0, 4.0, 9.0, 16.0]);
/// ```
pub fn infer_batch<I, O, F>(par: Parallelism, inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = par.worker_count().min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let chunk = inputs.len().div_ceil(workers);
    let f = &f;
    let mut chunks: Vec<Vec<O>> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<O>>()))
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("inference worker panicked"))
            .collect();
    });
    chunks.into_iter().flatten().collect()
}

/// How a model evaluates its nonlinear operations at inference time.
#[derive(Debug, Clone, Default)]
pub enum InferenceMode {
    /// Reference floating-point arithmetic.
    #[default]
    Exact,
    /// CPWL tables at one granularity, optionally with INT16 activation
    /// quantization (the paper's configuration).
    Cpwl {
        /// Shared table set (`Arc`: cloning a mode — which every
        /// compiled-inference call used to do implicitly via table-cache
        /// seeding — is a refcount bump, never a copy of the tables).
        tables: Arc<TableSet>,
        /// Round-trip activations through INT16 at layer boundaries.
        quantize: bool,
    },
}

impl InferenceMode {
    /// Builds the paper-default CPWL mode (INT16 quantization on).
    ///
    /// # Errors
    ///
    /// Propagates table construction failures.
    pub fn cpwl(granularity: f32) -> Result<Self, CpwlError> {
        Ok(InferenceMode::Cpwl {
            tables: Arc::new(TableSet::for_granularity(granularity)?),
            quantize: true,
        })
    }

    /// CPWL without quantization (isolates the approximation error).
    ///
    /// # Errors
    ///
    /// Propagates table construction failures.
    pub fn cpwl_unquantized(granularity: f32) -> Result<Self, CpwlError> {
        Ok(InferenceMode::Cpwl {
            tables: Arc::new(TableSet::for_granularity(granularity)?),
            quantize: false,
        })
    }

    /// The compile-time image of this mode for the Program IR: what
    /// [`crate::compile`] stamps onto emitted `onesa_plan::Program`s.
    pub fn eval_mode(&self) -> onesa_plan::EvalMode {
        match self {
            InferenceMode::Exact => onesa_plan::EvalMode::Exact,
            InferenceMode::Cpwl { tables, quantize } => onesa_plan::EvalMode::Cpwl {
                granularity: tables.granularity(),
                quantize: *quantize,
            },
        }
    }

    /// The mode's CPWL table set (`None` for [`InferenceMode::Exact`]).
    /// Program executors seed their `onesa_plan::TableCache` from this
    /// so compiled inference reuses the tables the mode already built.
    pub fn table_set(&self) -> Option<&TableSet> {
        match self {
            InferenceMode::Exact => None,
            InferenceMode::Cpwl { tables, .. } => Some(tables),
        }
    }

    /// The mode's table set as a shared handle (`None` for
    /// [`InferenceMode::Exact`]): the zero-copy way to seed an
    /// `onesa_plan::TableCache` — a refcount bump instead of cloning
    /// every table.
    pub fn shared_table_set(&self) -> Option<Arc<TableSet>> {
        match self {
            InferenceMode::Exact => None,
            InferenceMode::Cpwl { tables, .. } => Some(Arc::clone(tables)),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            InferenceMode::Exact => "exact".to_string(),
            InferenceMode::Cpwl { tables, quantize } => {
                format!(
                    "cpwl(g={}{})",
                    tables.granularity(),
                    if *quantize { ",int16" } else { "" }
                )
            }
        }
    }

    /// INT16 round trip at a layer boundary (identity when disabled).
    pub fn boundary(&self, x: &Tensor) -> Tensor {
        match self {
            InferenceMode::Cpwl { quantize: true, .. } => QuantTensor::quantize(x).dequantize(),
            _ => x.clone(),
        }
    }

    /// ReLU under this mode.
    pub fn relu(&self, x: &Tensor) -> Tensor {
        match self {
            InferenceMode::Exact => x.map(|v| v.max(0.0)),
            InferenceMode::Cpwl { tables, .. } => tables.relu(x).expect("shape preserved"),
        }
    }

    /// GELU under this mode.
    pub fn gelu(&self, x: &Tensor) -> Tensor {
        match self {
            InferenceMode::Exact => x.map(|v| NonlinearFn::Gelu.eval(v)),
            InferenceMode::Cpwl { tables, .. } => tables.gelu(x).expect("shape preserved"),
        }
    }

    /// Row-wise softmax under this mode.
    pub fn softmax_rows(&self, x: &Tensor) -> Tensor {
        match self {
            InferenceMode::Exact => ops::softmax_rows_exact(x).expect("matrix"),
            InferenceMode::Cpwl { tables, .. } => tables.softmax_rows(x).expect("matrix"),
        }
    }

    /// Row-wise layer norm under this mode.
    pub fn layernorm_rows(&self, x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> Tensor {
        match self {
            InferenceMode::Exact => {
                ops::layernorm_rows_exact(x, gamma, beta, eps).expect("shapes agree")
            }
            InferenceMode::Cpwl { tables, .. } => tables
                .layernorm_rows(x, gamma, beta, eps)
                .expect("shapes agree"),
        }
    }

    /// Per-channel batch-norm folding coefficients `(k, b)` such that
    /// `y = k·x + b`. The `1/√(σ²+ε)` goes through the rsqrt table in
    /// CPWL mode — the only place inference-time batch norm is nonlinear.
    pub fn batchnorm_fold(
        &self,
        mean: &[f32],
        var: &[f32],
        gamma: &[f32],
        beta: &[f32],
        eps: f32,
    ) -> (Vec<f32>, Vec<f32>) {
        let inv_std = |v: f32| -> f32 {
            match self {
                InferenceMode::Exact => 1.0 / (v + eps).sqrt(),
                InferenceMode::Cpwl { tables, .. } => tables
                    .table(NonlinearFn::Rsqrt)
                    .expect("rsqrt is in the standard set")
                    .eval(v + eps),
            }
        };
        let k: Vec<f32> = (0..mean.len())
            .map(|c| gamma[c] * inv_std(var[c]))
            .collect();
        let b: Vec<f32> = (0..mean.len()).map(|c| beta[c] - mean[c] * k[c]).collect();
        (k, b)
    }

    /// Applies folded batch norm to a `[C, H, W]` sample (a single MHP on
    /// the array).
    pub fn batchnorm_apply(&self, x: &Tensor, k: &[f32], b: &[f32]) -> Tensor {
        let dims = x.dims();
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        let mut y = x.clone();
        for ch in 0..c {
            for v in &mut y.as_mut_slice()[ch * h * w..(ch + 1) * h * w] {
                *v = *v * k[ch] + b[ch];
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_tensor::rng::Pcg32;
    use onesa_tensor::stats;

    #[test]
    fn exact_and_fine_cpwl_agree() {
        let mode = InferenceMode::cpwl_unquantized(0.03125).unwrap();
        let x = Pcg32::seed_from_u64(1).randn(&[4, 16], 1.5);
        let exact = InferenceMode::Exact;
        assert!(stats::max_abs_diff(mode.gelu(&x).as_slice(), exact.gelu(&x).as_slice()) < 0.01);
        assert!(
            stats::max_abs_diff(
                mode.softmax_rows(&x).as_slice(),
                exact.softmax_rows(&x).as_slice()
            ) < 0.01
        );
    }

    #[test]
    fn boundary_quantization_only_when_enabled() {
        let x = Pcg32::seed_from_u64(2).randn(&[2, 8], 1.0);
        let exact = InferenceMode::Exact;
        assert_eq!(exact.boundary(&x), x);
        let unq = InferenceMode::cpwl_unquantized(0.25).unwrap();
        assert_eq!(unq.boundary(&x), x);
        let q = InferenceMode::cpwl(0.25).unwrap();
        let back = q.boundary(&x);
        assert_ne!(back, x);
        assert!(stats::max_abs_diff(back.as_slice(), x.as_slice()) < 1e-3);
    }

    #[test]
    fn batchnorm_fold_matches_direct_formula() {
        let exact = InferenceMode::Exact;
        let (k, b) = exact.batchnorm_fold(&[1.0], &[4.0], &[2.0], &[0.5], 0.0);
        assert!((k[0] - 1.0).abs() < 1e-6);
        assert!((b[0] - (-0.5)).abs() < 1e-6);
        let x = Tensor::from_vec(vec![3.0, 5.0], &[1, 1, 2]).unwrap();
        let y = exact.batchnorm_apply(&x, &k, &b);
        assert_eq!(y.as_slice(), &[2.5, 4.5]);
    }

    #[test]
    fn coarse_cpwl_batchnorm_differs() {
        let fine = InferenceMode::cpwl_unquantized(0.0625).unwrap();
        let coarse = InferenceMode::cpwl_unquantized(1.0).unwrap();
        let (kf, _) = fine.batchnorm_fold(&[0.0], &[2.7], &[1.0], &[0.0], 1e-5);
        let (kc, _) = coarse.batchnorm_fold(&[0.0], &[2.7], &[1.0], &[0.0], 1e-5);
        let exact = 1.0 / 2.7f32.sqrt();
        assert!((kf[0] - exact).abs() < (kc[0] - exact).abs());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(InferenceMode::Exact.label(), "exact");
        assert!(InferenceMode::cpwl(0.25).unwrap().label().contains("0.25"));
        assert!(InferenceMode::cpwl(0.25).unwrap().label().contains("int16"));
    }
}
