//! Compiling whole networks to `onesa_plan` operator-graph programs.
//!
//! Every model family implements [`Compile`]: it walks its own layers
//! and emits a [`Program`] that replays the inference math op for op —
//! im2col + GEMM + col2im for convolutions, folded batch-norm affines,
//! head-sliced attention with table-lowered softmax, CPWL nonlinears
//! and INT16 `Quantize` boundaries exactly where the chosen
//! [`InferenceMode`] applies them. Running the compiled program is
//! **bit-identical** to the model's `*_direct` layer-by-layer path for
//! every mode (locked in by `tests/integration_plan.rs`), which is what
//! lets `onesa_core`'s batch/serve engines schedule whole networks the
//! way they batch single GEMMs.
//!
//! The `Ctx` of each impl carries the per-request specialization:
//!
//! | model | `Ctx` | program input |
//! |---|---|---|
//! | [`SmallCnn`] | `(&InferenceMode, (h, w))` | one `[C, H, W]` image |
//! | [`TinyBert`] | `(&InferenceMode, seq_len)` | one `[1, L]` id row ([`TinyBert::ids_tensor`]) |
//! | [`Gcn`] | `(&InferenceMode, &GraphDataset)` | the `[N, F]` node features |
//!
//! # Example
//!
//! ```
//! use onesa_nn::models::SmallCnn;
//! use onesa_nn::InferenceMode;
//! use onesa_plan::{Compile, TableCache};
//! use onesa_tensor::parallel::Parallelism;
//! use onesa_tensor::rng::Pcg32;
//!
//! let cnn = SmallCnn::new(7, 1, 3);
//! let mode = InferenceMode::cpwl(0.25).expect("valid granularity");
//! let program = cnn.compile((&mode, (8, 8)))?;
//! let x = Pcg32::seed_from_u64(1).randn(&[1, 8, 8], 1.0);
//! let run = program.run(&[x.clone()], Parallelism::Sequential, &mut TableCache::new())?;
//! assert_eq!(run.output.into_vec(), cnn.logits(&x, &mode));
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

use crate::infer::InferenceMode;
use crate::layers::Linear;
use crate::models::{EncoderBlock, Gcn, SmallCnn, TinyBert, TinyCausalLm};
use onesa_cpwl::NonlinearFn;
use onesa_data::GraphDataset;
use onesa_plan::{
    Compile, Op, Operand, PoolKind, Precision, Program, ProgramBuilder, ProgramRun, TableCache,
};
use onesa_tensor::{Result, Tensor};

/// Runs a compiled program solo, seeding the executor's table cache
/// with the mode's own table set so nothing is rebuilt.
///
/// # Panics
///
/// Panics if the program fails to execute — compiled programs are
/// validated at build time, so this indicates a compiler bug.
pub fn run_compiled(program: &Program, inputs: &[Tensor], mode: &InferenceMode) -> Tensor {
    run_compiled_full(program, inputs, mode).output
}

/// As [`run_compiled`], but returns the whole [`ProgramRun`] — output
/// plus session-output tensors — for callers that thread a KV cache
/// between steps ([`TinyCausalLm::prefill`]/[`TinyCausalLm::decode_step`]).
///
/// # Panics
///
/// Panics if the program fails to execute — compiled programs are
/// validated at build time, so this indicates a compiler bug.
pub fn run_compiled_full(program: &Program, inputs: &[Tensor], mode: &InferenceMode) -> ProgramRun {
    let mut cache = TableCache::new();
    if let Some(tables) = mode.shared_table_set() {
        // Zero-copy: the mode's tables are Arc-shared into the cache.
        cache.seed_shared(tables);
    }
    program
        .run(
            inputs,
            onesa_tensor::parallel::Parallelism::Sequential,
            &mut cache,
        )
        .expect("compiled program executes")
}

/// Emits `Quantize` only when the mode round-trips layer boundaries
/// through INT16 (mirrors `InferenceMode::boundary`).
///
/// The compilers below emit this conservatively, **once per consumer**
/// of a boundary value where a value crosses into more than one array
/// pass (the residual skip of the CNN, a transformer block's Q/K/V
/// projections plus residual): each pass re-reads the INT16 scratchpad,
/// so the naive emission carries one load-side round trip per read.
/// Because the round trip is deterministic, the duplicates are
/// bit-identical to a single boundary — and the optimizer's
/// `quantize-elision` pass ([`onesa_plan::opt`]) collapses them, which
/// is why the serving wrappers run programs at
/// [`OptLevel::Standard`](onesa_plan::OptLevel).
fn boundary(b: &mut ProgramBuilder, mode: &InferenceMode, x: Operand) -> Operand {
    match mode.eval_mode() {
        onesa_plan::EvalMode::Cpwl { quantize: true, .. } => b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        ),
        _ => x,
    }
}

/// `x · W + bias` (mirrors `Linear::infer`).
fn linear(b: &mut ProgramBuilder, l: &Linear, x: Operand) -> Operand {
    let w = b.constant(l.w.value.clone());
    b.push(
        Op::Gemm {
            bias: Some(l.b.value.as_slice().to_vec()),
            sparsity: None,
        },
        &[x, w],
    )
}

impl SmallCnn {
    /// Compiles everything up to (and excluding) the classifier.
    pub(crate) fn features_program(
        &self,
        mode: &InferenceMode,
        h: usize,
        w: usize,
    ) -> Result<Program> {
        self.build_program(mode, h, w, false)
    }

    /// Compiles the whole network, classifier included.
    pub(crate) fn network_program(
        &self,
        mode: &InferenceMode,
        h: usize,
        w: usize,
    ) -> Result<Program> {
        self.build_program(mode, h, w, true)
    }

    fn build_program(
        &self,
        mode: &InferenceMode,
        h: usize,
        w: usize,
        with_classifier: bool,
    ) -> Result<Program> {
        // im2col + GEMM against the transposed flattened kernel + bias +
        // col2im (mirrors `Conv2d::infer`).
        let conv = |b: &mut ProgramBuilder,
                    layer: &crate::layers::Conv2d,
                    x: Operand,
                    h: usize,
                    w: usize|
         -> Result<Operand> {
            let (oh, ow) = layer.geo.output_hw(h, w)?;
            let cols = b.push(Op::Im2col(layer.geo), &[x]);
            let wt = b.constant(layer.w.value.transpose()?);
            let prod = b.push(
                Op::Gemm {
                    bias: Some(layer.b.value.as_slice().to_vec()),
                    sparsity: None,
                },
                &[cols, wt],
            );
            Ok(b.push(
                Op::Col2im {
                    channels: layer.geo.out_channels,
                    oh,
                    ow,
                },
                &[prod],
            ))
        };
        // Folded batch norm: per-channel (k, b) computed at compile time
        // under the mode (the rsqrt goes through the mode's table).
        let bn = |b: &mut ProgramBuilder, norm: &crate::layers::BatchNorm2d, x: Operand| {
            let (k, bias) = mode.batchnorm_fold(
                &norm.running_mean,
                &norm.running_var,
                norm.gamma.value.as_slice(),
                norm.beta.value.as_slice(),
                norm.eps(),
            );
            b.push(Op::Affine { k, b: bias }, &[x])
        };

        let mut b = Program::builder(
            if with_classifier {
                "small_cnn"
            } else {
                "small_cnn.features"
            },
            mode.eval_mode(),
        );
        let x0 = b.input(&[self.conv1.geo.in_channels, h, w]);
        let x = boundary(&mut b, mode, x0);
        let a = conv(&mut b, &self.conv1, x, h, w)?;
        let a = boundary(&mut b, mode, a);
        let r = bn(&mut b, &self.bn1, a);
        let r_pre = b.push(Op::Nonlinear(NonlinearFn::Relu), &[r]);
        // The stem's activation crosses an INT16 boundary into TWO
        // consumers — conv2 and the residual add — so the conservative
        // emission carries one load-side round trip per consumer (the
        // optimizer elides the duplicate; see `boundary`).
        let r = boundary(&mut b, mode, r_pre);
        let r_skip = boundary(&mut b, mode, r_pre);
        let (h1, w1) = self.conv1.geo.output_hw(h, w)?;
        let c2 = conv(&mut b, &self.conv2, r, h1, w1)?;
        let c2 = boundary(&mut b, mode, c2);
        let r2 = bn(&mut b, &self.bn2, c2);
        let r2 = b.push(Op::Nonlinear(NonlinearFn::Relu), &[r2]);
        let (h2, w2) = self.conv2.geo.output_hw(h1, w1)?;
        let c3 = conv(&mut b, &self.conv3, r2, h2, w2)?;
        let c3 = boundary(&mut b, mode, c3);
        let cb = bn(&mut b, &self.bn3, c3);
        let res = b.push(Op::Add, &[cb, r_skip]);
        let res = b.push(Op::Nonlinear(NonlinearFn::Relu), &[res]);
        let res = boundary(&mut b, mode, res);
        let pooled = b.push(Op::Pool(PoolKind::GlobalAvg), &[res]);
        if with_classifier {
            linear(&mut b, &self.fc, pooled);
        }
        b.finish()
    }
}

impl Compile<(&InferenceMode, (usize, usize))> for SmallCnn {
    fn compile(&self, (mode, (h, w)): (&InferenceMode, (usize, usize))) -> Result<Program> {
        self.network_program(mode, h, w)
    }
}

impl TinyBert {
    pub(crate) fn features_program(&self, mode: &InferenceMode, seq_len: usize) -> Result<Program> {
        self.build_program(mode, seq_len, false)
    }

    pub(crate) fn network_program(&self, mode: &InferenceMode, seq_len: usize) -> Result<Program> {
        self.build_program(mode, seq_len, true)
    }

    fn build_program(
        &self,
        mode: &InferenceMode,
        seq_len: usize,
        with_head: bool,
    ) -> Result<Program> {
        let mut b = Program::builder(
            if with_head {
                "tiny_bert"
            } else {
                "tiny_bert.features"
            },
            mode.eval_mode(),
        );
        let ids = b.input(&[1, seq_len]);
        let table = b.constant(self.emb.table.value.clone());
        let pos = b.constant(self.emb.pos.value.clone());
        let mut h = b.push(Op::Embed, &[ids, table, pos]);
        // The embedding output crosses an INT16 boundary into the first
        // block's four consumers (Q/K/V projections + residual add);
        // `compile_block` emits one load-side round trip per consumer
        // and the optimizer elides the duplicates (see `boundary`).
        let mut h_at_boundary = true;
        for block in &self.blocks {
            h = compile_block(&mut b, block, h, h_at_boundary, mode, self.d);
            h_at_boundary = false;
        }
        let pooled = b.push(Op::Pool(PoolKind::MeanRows), &[h]);
        let pooled = boundary(&mut b, mode, pooled);
        if with_head {
            linear(&mut b, &self.head, pooled);
        }
        b.finish()
    }
}

/// One post-norm encoder block (mirrors `EncoderBlock::infer`):
/// head-sliced attention with scaled table-lowered softmax, residual
/// adds with INT16 boundaries, layer norms, GELU feed-forward.
fn compile_block(
    b: &mut ProgramBuilder,
    blk: &EncoderBlock,
    x_pre: Operand,
    x_at_boundary: bool,
    mode: &InferenceMode,
    d: usize,
) -> Operand {
    // When the block input sits on an INT16 boundary, each of its four
    // consumers loads it through its own round trip (deterministic, so
    // bit-identical to one shared boundary; the optimizer dedups).
    let use_x = |b: &mut ProgramBuilder| -> Operand {
        if x_at_boundary {
            boundary(b, mode, x_pre)
        } else {
            x_pre
        }
    };
    let heads = blk.attn.heads();
    let dk = d / heads;
    let xq = use_x(b);
    let q = linear(b, &blk.attn.wq, xq);
    let xk = use_x(b);
    let k = linear(b, &blk.attn.wk, xk);
    let xv = use_x(b);
    let v = linear(b, &blk.attn.wv, xv);
    let mut ctxs = Vec::with_capacity(heads);
    for head in 0..heads {
        let start = head * dk;
        let qh = b.push(Op::SliceCols { start, len: dk }, &[q]);
        let kh = b.push(Op::SliceCols { start, len: dk }, &[k]);
        let vh = b.push(Op::SliceCols { start, len: dk }, &[v]);
        let kt = b.push(Op::Transpose, &[kh]);
        let scores = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[qh, kt],
        );
        let scaled = b.push(Op::Scale(1.0 / (dk as f32).sqrt()), &[scores]);
        let p = b.push(Op::Softmax, &[scaled]);
        ctxs.push(b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[p, vh],
        ));
    }
    let concat = b.push(Op::ConcatCols, &ctxs);
    let a = linear(b, &blk.attn.wo, concat);
    let x_res = use_x(b);
    let sum1 = b.push(Op::Add, &[x_res, a]);
    let sum1 = boundary(b, mode, sum1);
    let h = b.push(
        Op::LayerNorm {
            gamma: blk.ln1.gamma.value.as_slice().to_vec(),
            beta: blk.ln1.beta.value.as_slice().to_vec(),
            eps: blk.ln1.eps(),
        },
        &[sum1],
    );
    let f1 = linear(b, &blk.ff1, h);
    let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[f1]);
    let f = linear(b, &blk.ff2, g);
    let sum2 = b.push(Op::Add, &[h, f]);
    let sum2 = boundary(b, mode, sum2);
    b.push(
        Op::LayerNorm {
            gamma: blk.ln2.gamma.value.as_slice().to_vec(),
            beta: blk.ln2.beta.value.as_slice().to_vec(),
            eps: blk.ln2.eps(),
        },
        &[sum2],
    )
}

impl Compile<(&InferenceMode, usize)> for TinyBert {
    fn compile(&self, (mode, seq_len): (&InferenceMode, usize)) -> Result<Program> {
        self.network_program(mode, seq_len)
    }
}

/// Emits the causal decoder's INT16 boundary: a **row-wise**
/// `QuantizeRows` round trip (mirrors
/// [`crate::models::boundary_rows`]). The tensor-wide [`Op::Quantize`]
/// would couple every token's rounding to the whole activation's
/// maximum, breaking the bit-identicality of cached decoding against
/// the recompute-from-scratch oracle; the row-wise form is
/// row-decomposable, so prefill rows, decode rows and oracle rows all
/// agree exactly. Same per-consumer emission discipline as [`boundary`].
fn causal_boundary(b: &mut ProgramBuilder, mode: &InferenceMode, x: Operand) -> Operand {
    match mode.eval_mode() {
        onesa_plan::EvalMode::Cpwl { quantize: true, .. } => b.push(Op::QuantizeRows, &[x]),
        _ => x,
    }
}

/// What a causal block's attention attends over.
enum CausalAttn {
    /// Prefill: self-attention over the whole prompt under the causal
    /// prefix mask; the raw K/V projections become the session cache.
    Prefill,
    /// One decode step: the cached `[ctx, d]` K/V enter as session
    /// inputs, the new token's projections append via `ConcatRows`, and
    /// the single query row sees the full grown context with a plain
    /// softmax (the last causal row IS the full row).
    Decode {
        /// The layer's cached K rows.
        k_cache: Operand,
        /// The layer's cached V rows.
        v_cache: Operand,
    },
}

/// One causal decoder block (mirrors the causal arm of
/// `EncoderBlock::infer_with`): as [`compile_block`], but the softmax is
/// prefix-masked (prefill) or full-row over the grown context (decode),
/// K/V tensors are marked as session outputs — K then V, in block order
/// — and every INT16 boundary is the row-wise [`causal_boundary`].
fn compile_causal_block(
    b: &mut ProgramBuilder,
    blk: &EncoderBlock,
    x_pre: Operand,
    x_at_boundary: bool,
    mode: &InferenceMode,
    d: usize,
    attn: CausalAttn,
) -> Operand {
    let use_x = |b: &mut ProgramBuilder| -> Operand {
        if x_at_boundary {
            causal_boundary(b, mode, x_pre)
        } else {
            x_pre
        }
    };
    let heads = blk.attn.heads();
    let dk = d / heads;
    let xq = use_x(b);
    let q = linear(b, &blk.attn.wq, xq);
    let xk = use_x(b);
    let k = linear(b, &blk.attn.wk, xk);
    let xv = use_x(b);
    let v = linear(b, &blk.attn.wv, xv);
    let (k_full, v_full, causal) = match attn {
        CausalAttn::Prefill => {
            b.mark_session_output(k);
            b.mark_session_output(v);
            (k, v, true)
        }
        CausalAttn::Decode { k_cache, v_cache } => {
            let kf = b.push(Op::ConcatRows, &[k_cache, k]);
            let vf = b.push(Op::ConcatRows, &[v_cache, v]);
            b.mark_session_output(kf);
            b.mark_session_output(vf);
            (kf, vf, false)
        }
    };
    let mut ctxs = Vec::with_capacity(heads);
    for head in 0..heads {
        let start = head * dk;
        let qh = b.push(Op::SliceCols { start, len: dk }, &[q]);
        let kh = b.push(Op::SliceCols { start, len: dk }, &[k_full]);
        let vh = b.push(Op::SliceCols { start, len: dk }, &[v_full]);
        let kt = b.push(Op::Transpose, &[kh]);
        let scores = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[qh, kt],
        );
        let scaled = b.push(Op::Scale(1.0 / (dk as f32).sqrt()), &[scores]);
        let p = if causal {
            b.push(Op::CausalSoftmax { offset: 0 }, &[scaled])
        } else {
            b.push(Op::Softmax, &[scaled])
        };
        ctxs.push(b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[p, vh],
        ));
    }
    let concat = b.push(Op::ConcatCols, &ctxs);
    let a = linear(b, &blk.attn.wo, concat);
    let x_res = use_x(b);
    let sum1 = b.push(Op::Add, &[x_res, a]);
    let sum1 = causal_boundary(b, mode, sum1);
    let h = b.push(
        Op::LayerNorm {
            gamma: blk.ln1.gamma.value.as_slice().to_vec(),
            beta: blk.ln1.beta.value.as_slice().to_vec(),
            eps: blk.ln1.eps(),
        },
        &[sum1],
    );
    let f1 = linear(b, &blk.ff1, h);
    let g = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[f1]);
    let f = linear(b, &blk.ff2, g);
    let sum2 = b.push(Op::Add, &[h, f]);
    let sum2 = causal_boundary(b, mode, sum2);
    b.push(
        Op::LayerNorm {
            gamma: blk.ln2.gamma.value.as_slice().to_vec(),
            beta: blk.ln2.beta.value.as_slice().to_vec(),
            eps: blk.ln2.eps(),
        },
        &[sum2],
    )
}

impl TinyCausalLm {
    /// The LM head: a biased linear for the untied case, a bias-free
    /// GEMM against the transposed embedding table when tied.
    fn compile_head(&self, b: &mut ProgramBuilder, x: Operand) -> Result<Operand> {
        Ok(match &self.head {
            Some(l) => linear(b, l, x),
            None => {
                let wt = b.constant(self.emb.table.value.transpose()?);
                b.push(
                    Op::Gemm {
                        bias: None,
                        sparsity: None,
                    },
                    &[x, wt],
                )
            }
        })
    }

    /// Compiles the prefill pass over a `len`-token prompt: causal
    /// attention over the whole prompt, per-layer K/V projections marked
    /// as session outputs (K then V, block order), and the last row's
    /// next-token logits as the program output.
    pub(crate) fn prefill_program(&self, mode: &InferenceMode, len: usize) -> Result<Program> {
        assert!(len >= 1, "prefill needs at least one token");
        let mut b = Program::builder("tiny_causal_lm.prefill", mode.eval_mode());
        let ids = b.input(&[1, len]);
        let table = b.constant(self.emb.table.value.clone());
        let pos = b.constant(self.emb.pos.value.clone());
        let mut h = b.push(Op::Embed, &[ids, table, pos]);
        let mut h_at_boundary = true;
        for block in &self.blocks {
            h = compile_causal_block(
                &mut b,
                block,
                h,
                h_at_boundary,
                mode,
                self.d,
                CausalAttn::Prefill,
            );
            h_at_boundary = false;
        }
        // Last-row extraction (transpose → column slice → transpose):
        // only the final position's hidden state feeds the LM head.
        let ht = b.push(Op::Transpose, &[h]);
        let col = b.push(
            Op::SliceCols {
                start: len - 1,
                len: 1,
            },
            &[ht],
        );
        let last = b.push(Op::Transpose, &[col]);
        let last = causal_boundary(&mut b, mode, last);
        self.compile_head(&mut b, last)?;
        b.finish()
    }

    /// Compiles one decode step at context length `ctx`: inputs are the
    /// `[1, 1]` token id plus per-layer session K/V tensors (`[ctx, d]`,
    /// K then V per block, in block order — the order the serving layer
    /// binds and writes back). The step embeds the token at absolute
    /// position `ctx`, appends its K/V projections to each cache via
    /// `ConcatRows` (the grown tensors are the session outputs), and
    /// attends over the full context with a plain softmax.
    pub(crate) fn decode_program(&self, mode: &InferenceMode, ctx: usize) -> Result<Program> {
        assert!(ctx >= 1, "decode needs a non-empty context");
        let mut b = Program::builder("tiny_causal_lm.decode", mode.eval_mode());
        let ids = b.input(&[1, 1]);
        let kv: Vec<(Operand, Operand)> = self
            .blocks
            .iter()
            .map(|_| {
                (
                    b.session_input(&[ctx, self.d]),
                    b.session_input(&[ctx, self.d]),
                )
            })
            .collect();
        let table = b.constant(self.emb.table.value.clone());
        let pos = b.constant(self.emb.pos.value.clone());
        let mut h = b.push(Op::EmbedAt { offset: ctx }, &[ids, table, pos]);
        let mut h_at_boundary = true;
        for (block, (k_cache, v_cache)) in self.blocks.iter().zip(kv) {
            h = compile_causal_block(
                &mut b,
                block,
                h,
                h_at_boundary,
                mode,
                self.d,
                CausalAttn::Decode { k_cache, v_cache },
            );
            h_at_boundary = false;
        }
        let last = causal_boundary(&mut b, mode, h);
        self.compile_head(&mut b, last)?;
        b.finish()
    }
}

impl Compile<(&InferenceMode, usize)> for TinyCausalLm {
    /// Compiles the prefill program for a `seq_len`-token prompt (decode
    /// steps are per-context; see [`TinyCausalLm::compiled_decode`]).
    fn compile(&self, (mode, seq_len): (&InferenceMode, usize)) -> Result<Program> {
        self.prefill_program(mode, seq_len)
    }
}

impl Gcn {
    pub(crate) fn network_program(
        &self,
        mode: &InferenceMode,
        g: &GraphDataset,
    ) -> Result<Program> {
        let (n_nodes, feats) = g.x.shape().as_matrix()?;
        let mut b = Program::builder("gcn", mode.eval_mode());
        let x0 = b.input(&[n_nodes, feats]);
        let x = boundary(&mut b, mode, x0);
        let w1 = b.constant(self.w1.value.clone());
        let w2 = b.constant(self.w2.value.clone());
        let a_hat = b.constant(g.a_hat.clone());
        let xw = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, w1],
        );
        let z1 = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[a_hat, xw],
        );
        let z1 = boundary(&mut b, mode, z1);
        let h1 = b.push(Op::Nonlinear(NonlinearFn::Relu), &[z1]);
        let hw = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[h1, w2],
        );
        let z2 = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[a_hat, hw],
        );
        boundary(&mut b, mode, z2);
        b.finish()
    }
}

impl Compile<(&InferenceMode, &GraphDataset)> for Gcn {
    fn compile(&self, (mode, g): (&InferenceMode, &GraphDataset)) -> Result<Program> {
        self.network_program(mode, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_data::{Difficulty, ImageDataset, TextDataset};
    use onesa_tensor::rng::Pcg32;

    fn modes() -> Vec<InferenceMode> {
        vec![
            InferenceMode::Exact,
            InferenceMode::cpwl(0.25).unwrap(),
            InferenceMode::cpwl_unquantized(0.5).unwrap(),
        ]
    }

    #[test]
    fn cnn_program_bit_identical_to_direct() {
        let cnn = SmallCnn::new(11, 1, 3);
        let x = Pcg32::seed_from_u64(1).randn(&[1, 8, 8], 1.0);
        for mode in modes() {
            assert_eq!(
                cnn.logits(&x, &mode),
                cnn.logits_direct(&x, &mode),
                "{}",
                mode.label()
            );
            assert_eq!(
                cnn.pooled_features(&x, &mode),
                cnn.pooled_features_direct(&x, &mode),
                "{}",
                mode.label()
            );
        }
    }

    #[test]
    fn bert_program_bit_identical_to_direct() {
        let bert = TinyBert::new(5, 32, 12, 2, 2);
        let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        for mode in modes() {
            assert_eq!(
                bert.predict(&seq, &mode),
                bert.predict_direct(&seq, &mode),
                "{}",
                mode.label()
            );
            assert_eq!(
                bert.pooled_features(&seq, &mode),
                bert.pooled_features_direct(&seq, &mode),
                "{}",
                mode.label()
            );
        }
    }

    #[test]
    fn gcn_program_bit_identical_to_direct() {
        let g = onesa_data::GraphDataset::generate("t", 4, Difficulty::easy(3), 20, 6, 0.3);
        let gcn = Gcn::new(6, 6, 8, 3);
        for mode in modes() {
            assert_eq!(
                gcn.logits(&g, &mode),
                gcn.logits_direct(&g, &mode),
                "{}",
                mode.label()
            );
        }
    }

    #[test]
    fn trained_models_stay_bit_identical() {
        // Training perturbs every parameter (incl. batch-norm running
        // stats); the compiled path must track the direct one exactly.
        let data = ImageDataset::generate(
            "t",
            1,
            Difficulty {
                noise: 0.3,
                classes: 3,
            },
            (1, 8, 8),
            6,
        );
        let mut cnn = SmallCnn::new(7, 1, 3);
        cnn.fit(
            &data,
            &crate::train::TrainConfig {
                epochs: 2,
                lr: 5e-3,
                batch_size: 6,
                seed: 7,
            },
        );
        let mode = InferenceMode::cpwl(0.25).unwrap();
        for x in &data.test_x[..3.min(data.test_x.len())] {
            assert_eq!(cnn.logits(x, &mode), cnn.logits_direct(x, &mode));
        }

        let tdata = TextDataset::classification("t", 3, Difficulty::easy(2), 32, 8, 8);
        let mut bert = TinyBert::new(5, 32, 8, 2, 1);
        bert.fit(
            &tdata,
            &crate::train::TrainConfig {
                epochs: 1,
                lr: 2e-3,
                batch_size: 1,
                seed: 5,
            },
        );
        for seq in &tdata.test_x[..2.min(tdata.test_x.len())] {
            assert_eq!(bert.predict(seq, &mode), bert.predict_direct(seq, &mode));
        }
    }

    #[test]
    fn causal_lm_cached_generation_bit_identical_to_direct() {
        // The decode oracle recomputes the whole sequence from scratch
        // every step; the cached path reuses per-layer K/V session
        // tensors. Bit-identicality across every mode (incl. INT16
        // quantized CPWL) is the whole point of the row-wise boundary.
        for tied in [true, false] {
            let lm = TinyCausalLm::new(9, 24, 16, 2, tied);
            let prompt = [3usize, 1, 4, 1, 5];
            for mode in modes() {
                assert_eq!(
                    lm.generate(&prompt, 6, &mode),
                    lm.generate_direct(&prompt, 6, &mode),
                    "tied={tied} {}",
                    mode.label()
                );
            }
        }
    }

    #[test]
    fn causal_lm_stepwise_logits_match_oracle() {
        let lm = TinyCausalLm::new(4, 20, 12, 3, true);
        let prompt = [7usize, 0, 11, 2];
        for mode in modes() {
            let (logits, mut kv) = lm.prefill(&prompt, &mode);
            assert_eq!(
                logits,
                lm.next_logits_direct(&prompt, &mode),
                "{}",
                mode.label()
            );
            assert_eq!(kv.len(), 2 * lm.layer_count());
            let mut seq = prompt.to_vec();
            for _ in 0..4 {
                let next = onesa_tensor::stats::argmax(&logits).expect("non-empty vocabulary");
                seq.push(next);
                let (l, nkv) = lm.decode_step(next, &kv, &mode);
                assert_eq!(l, lm.next_logits_direct(&seq, &mode), "{}", mode.label());
                kv = nkv;
                // Cache length tracks the number of attended tokens.
                for t in &kv {
                    assert_eq!(t.dims(), &[seq.len(), lm.width()]);
                }
                let logits = l;
                let _ = &logits;
            }
        }
    }

    #[test]
    fn causal_prefill_program_marks_session_outputs() {
        let lm = TinyCausalLm::new(2, 16, 8, 2, false);
        let mode = InferenceMode::cpwl(0.25).unwrap();
        let prog = lm.compiled_prefill(&mode, 5);
        assert!(prog.is_session());
        assert!(prog.session_inputs().is_empty());
        assert_eq!(prog.session_outputs().len(), 2 * lm.layer_count());

        let dec = lm.compiled_decode(&mode, 5);
        assert!(dec.is_session());
        assert_eq!(dec.session_inputs().len(), 2 * lm.layer_count());
        assert_eq!(dec.session_outputs().len(), 2 * lm.layer_count());
    }

    #[test]
    fn causal_decode_programs_share_structure_across_contexts() {
        // Continuous batching relies on decode programs at different
        // context lengths having identical node sequences (so their
        // shared-weight GEMMs stage-align) while fingerprinting apart.
        let lm = TinyCausalLm::new(6, 16, 10, 1, true);
        let mode = InferenceMode::Exact;
        let a = lm.compiled_decode(&mode, 3);
        let b = lm.compiled_decode(&mode, 7);
        assert_eq!(a.nodes().len(), b.nodes().len());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
