//! Neural-network substrate for the ONE-SA reproduction.
//!
//! The paper's accuracy study (Table III) runs CNN, transformer and GCN
//! models whose nonlinear operations are replaced by capped
//! piecewise-linear approximations at several granularities. This crate
//! provides everything needed to repeat that study from scratch:
//!
//! * [`layers`] — trainable layers with hand-derived backward passes
//!   (linear, conv2d via im2col, batch norm, layer norm, embedding,
//!   multi-head attention, GCN propagation, activations, losses);
//! * [`models`] — the three model families: a residual CNN
//!   ([`models::SmallCnn`]), a BERT-style encoder ([`models::TinyBert`])
//!   and a two-layer GCN ([`models::Gcn`]);
//! * [`train`] — SGD/Adam training loops;
//! * [`infer`] — the inference backends: exact arithmetic, or CPWL
//!   tables (+ optional INT16 quantization) exactly as the array would
//!   compute;
//! * [`profile`] / [`workloads`] — op-class accounting and the real
//!   ResNet-50 / BERT-base / GCN layer shapes behind Fig 1 and Table IV.
//!
//! Batched inference for the serving layer goes through
//! [`infer::infer_batch`], which fans per-sample inference across worker
//! threads with results bit-identical to a sequential loop.
//!
//! Whole networks also compile to `onesa_plan::Program` operator graphs
//! (see [`compile`]): every model implements `onesa_plan::Compile`, and
//! the `logits`/`predict`/`pooled_features` entry points are thin
//! compile-and-run wrappers over the emitted programs (bit-identical to
//! the retained `*_direct` layer-by-layer reference paths).
//!
//! # Example
//!
//! ```
//! use onesa_nn::InferenceMode;
//! use onesa_tensor::Tensor;
//!
//! // Exact vs CPWL inference of the same activation tensor.
//! let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[1, 3])?;
//! let exact = InferenceMode::Exact.relu(&x);
//! let cpwl = InferenceMode::cpwl(0.25).expect("valid granularity").relu(&x);
//! assert_eq!(exact.as_slice(), &[0.0, 0.5, 2.0]);
//! assert_eq!(exact, cpwl); // ReLU is piecewise linear: CPWL is exact
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod infer;
pub mod layers;
pub mod models;
pub mod profile;
pub mod prune;
pub mod train;
pub mod workloads;

pub use infer::InferenceMode;
