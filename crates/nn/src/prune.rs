//! Magnitude-based structured pruning: zeroing whole weight column
//! blocks so the program optimizer's prune-pack pass
//! ([`onesa_plan::opt`]) can attach a sparsity attribute and the
//! sparse GEMM kernel ([`onesa_tensor::sparse`]) can skip the work.
//!
//! The pruning granularity is the same
//! [`PRUNE_BLOCK_COLS`]-column block the pass and the packed kernel
//! use: pruning at any other width would zero columns the pass cannot
//! credit. [`magnitude_prune_columns`] ranks a weight matrix's column
//! blocks by L2 norm and zeroes the weakest until only the requested
//! fraction survives — the classic magnitude heuristic, applied at
//! block rather than element granularity so the structured kernel
//! benefits.
//!
//! Pruning trades accuracy for speed. The bound is the caller's to
//! pick; `examples/pruned_sweep.rs` sweeps the keep fraction on a
//! trained [`Gcn`] and pins top-1 agreement against the unpruned
//! model.

use crate::models::Gcn;
use onesa_plan::PRUNE_BLOCK_COLS;
use onesa_tensor::{Result, Tensor, TensorError};

/// What one [`magnitude_prune_columns`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneReport {
    /// Block width the matrix was pruned at (columns per block).
    pub block_cols: usize,
    /// Column blocks zeroed by this call (blocks that were *already*
    /// all-zero count as zeroed: they are part of the pruned set the
    /// keep fraction describes).
    pub blocks_zeroed: usize,
    /// Total column blocks of the matrix (the last block may be
    /// narrower than `block_cols`).
    pub blocks_total: usize,
}

impl PruneReport {
    /// Fraction of column blocks still live after the call.
    pub fn kept_fraction(&self) -> f64 {
        if self.blocks_total == 0 {
            return 1.0;
        }
        (self.blocks_total - self.blocks_zeroed) as f64 / self.blocks_total as f64
    }
}

/// Zeroes the lowest-L2-norm column blocks of `w` in place until at
/// most `ceil(keep · total_blocks)` blocks survive, at `block_cols`
/// columns per block. Surviving blocks keep every bit; zeroed blocks
/// become `+0.0`, the bit pattern [`onesa_tensor::sparse`] classifies
/// as skippable. Ties in norm keep the lower-indexed block (the sort
/// is stable), so the result is deterministic.
///
/// # Errors
///
/// [`TensorError::NotAMatrix`] for non-2-D input;
/// [`TensorError::InvalidArgument`] for a zero block width or a `keep`
/// outside `(0, 1]` (keeping zero blocks would zero the whole matrix —
/// callers that want that can call [`Tensor::zeros`] honestly).
pub fn magnitude_prune_columns(
    w: &mut Tensor,
    block_cols: usize,
    keep: f32,
) -> Result<PruneReport> {
    let (rows, cols) = w.shape().as_matrix()?;
    if block_cols == 0 {
        return Err(TensorError::InvalidArgument(
            "prune block width must be positive",
        ));
    }
    if !(keep > 0.0 && keep <= 1.0) {
        return Err(TensorError::InvalidArgument(
            "keep fraction must be in (0, 1]",
        ));
    }
    let total = cols.div_ceil(block_cols);
    let survivors = ((keep as f64 * total as f64).ceil() as usize).clamp(1, total);
    // Rank blocks by squared L2 norm (f64 accumulation: the ranking
    // must not depend on summation noise for well-separated norms).
    let data = w.as_slice();
    let mut norms: Vec<(usize, f64)> = (0..total)
        .map(|b| {
            let j0 = b * block_cols;
            let width = block_cols.min(cols - j0);
            let sq = (0..rows)
                .flat_map(|i| &data[i * cols + j0..i * cols + j0 + width])
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>();
            (b, sq)
        })
        .collect();
    norms.sort_by(|a, b| b.1.total_cmp(&a.1));
    let doomed: Vec<usize> = norms[survivors..].iter().map(|&(b, _)| b).collect();
    let data = w.as_mut_slice();
    for &b in &doomed {
        let j0 = b * block_cols;
        let width = block_cols.min(cols - j0);
        for i in 0..rows {
            data[i * cols + j0..i * cols + j0 + width].fill(0.0);
        }
    }
    // Already-zero survivors still count as pruned structure: report
    // what the prune-pack pass will actually see.
    let (nnz, _, _) = onesa_tensor::sparse::column_block_stats(w, block_cols)?;
    Ok(PruneReport {
        block_cols,
        blocks_zeroed: total - nnz,
        blocks_total: total,
    })
}

impl Gcn {
    /// Magnitude-prunes the hidden-layer weight `W₁`'s column blocks at
    /// [`PRUNE_BLOCK_COLS`] so `keep` of them survive, and clears the
    /// compile cache (cached programs bake the old constants). Zeroing
    /// a `W₁` column block exactly disables those hidden units — the
    /// GCN has no bias, so `relu(0) = 0` contributes nothing through
    /// `W₂` — which is why recompiled logits stay bit-identical to
    /// [`Gcn::logits_direct`] on the pruned weights.
    ///
    /// # Errors
    ///
    /// As [`magnitude_prune_columns`] (a `keep` outside `(0, 1]`).
    pub fn prune_hidden(&mut self, keep: f32) -> Result<PruneReport> {
        let report = magnitude_prune_columns(&mut self.w1.value, PRUNE_BLOCK_COLS, keep)?;
        self.compile_cache().clear();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::InferenceMode;
    use crate::train::TrainConfig;
    use onesa_data::{Difficulty, GraphDataset};
    use onesa_plan::{Compile, Op, OptLevel};

    /// A [rows, 3·block] matrix whose blocks have norms 0 < b2 < b0:
    /// block 1 is all-zero, block 2 is small, block 0 is large.
    fn graded(rows: usize, block: usize) -> Tensor {
        let cols = 3 * block;
        let mut v = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..block {
                v[r * cols + c] = 2.0; // block 0: norm² = rows·block·4
                v[r * cols + 2 * block + c] = 0.5; // block 2: rows·block·0.25
            }
        }
        Tensor::from_vec(v, &[rows, cols]).unwrap()
    }

    #[test]
    fn weakest_blocks_go_first_and_survivors_keep_every_bit() {
        let mut w = graded(4, 8);
        let before = w.as_slice().to_vec();
        let report = magnitude_prune_columns(&mut w, 8, 0.4).unwrap();
        // ceil(0.4 · 3) = 2 survivors: the zero block goes, plus
        // nothing else — but it was already zero, so zeroed = 1 of 3.
        assert_eq!(
            report,
            PruneReport {
                block_cols: 8,
                blocks_zeroed: 1,
                blocks_total: 3
            }
        );
        assert_eq!(w.as_slice(), &before[..], "survivors untouched");
        // One survivor: only the strongest block remains.
        let report = magnitude_prune_columns(&mut w, 8, 0.1).unwrap();
        assert_eq!((report.blocks_zeroed, report.blocks_total), (2, 3));
        assert!((report.kept_fraction() - 1.0 / 3.0).abs() < 1e-12);
        for r in 0..4 {
            assert_eq!(
                &w.as_slice()[r * 24..r * 24 + 8],
                &before[r * 24..r * 24 + 8]
            );
            assert!(w.as_slice()[r * 24 + 8..r * 24 + 24]
                .iter()
                .all(|v| v.to_bits() == 0));
        }
    }

    #[test]
    fn keep_one_prunes_nothing_and_bad_arguments_fail_typed() {
        let mut w = graded(3, 4);
        let before = w.as_slice().to_vec();
        let report = magnitude_prune_columns(&mut w, 4, 1.0).unwrap();
        assert_eq!(report.blocks_zeroed, 1, "the all-zero block still counts");
        assert_eq!(w.as_slice(), &before[..]);
        for keep in [0.0, -0.5, 1.5, f32::NAN] {
            assert!(matches!(
                magnitude_prune_columns(&mut w, 4, keep),
                Err(TensorError::InvalidArgument(_))
            ));
        }
        assert!(matches!(
            magnitude_prune_columns(&mut w, 0, 0.5),
            Err(TensorError::InvalidArgument(_))
        ));
        let mut cube = Tensor::zeros(&[2, 2, 2]);
        assert!(matches!(
            magnitude_prune_columns(&mut cube, 4, 0.5),
            Err(TensorError::NotAMatrix { .. })
        ));
    }

    #[test]
    fn pruned_gcn_compiles_to_a_sparse_program_and_stays_bit_identical() {
        let g = GraphDataset::generate("t", 4, Difficulty::easy(3), 45, 8, 0.3);
        let mut model = Gcn::new(6, 8, 2 * PRUNE_BLOCK_COLS, 3);
        model.fit(
            &g,
            &TrainConfig {
                epochs: 2,
                lr: 1e-2,
                batch_size: 0,
                seed: 6,
            },
        );
        let mode = InferenceMode::Exact;
        let report = model.prune_hidden(0.5).unwrap();
        assert_eq!((report.blocks_zeroed, report.blocks_total), (1, 2));
        // The optimizer attaches the attribute and credits the cost...
        let program = model
            .compile((&mode, &g))
            .unwrap()
            .optimize(OptLevel::Standard)
            .unwrap();
        assert_eq!(program.opt_report().unwrap().totals.pruned, 1);
        assert_eq!(program.sparse_blocks(), (1, 2));
        let sparse_gemm = program
            .nodes()
            .iter()
            .find_map(|n| match &n.op {
                Op::Gemm {
                    sparsity: Some(s), ..
                } => Some(*s),
                _ => None,
            })
            .expect("W1 GEMM carries the attribute");
        assert_eq!(sparse_gemm.nnz_cols, PRUNE_BLOCK_COLS);
        // ...and the served path (logits → cached optimized program)
        // stays bit-identical to the direct layer-by-layer reference
        // on the pruned weights.
        assert_eq!(model.logits(&g, &mode), model.logits_direct(&g, &mode));
    }
}
