//! Trainable layers with hand-derived backward passes.
//!
//! Every layer caches what its backward pass needs during `forward` and
//! accumulates parameter gradients during `backward`; gradients are
//! consumed by per-layer Adam steps (see [`crate::train::TrainConfig`]
//! for the hyperparameters). Gradient correctness is
//! property-tested against numerical differentiation in
//! `tests/gradcheck.rs`.

use onesa_cpwl::NonlinearFn;
use onesa_tensor::im2col::{self, Conv2dGeometry};
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, Tensor};

/// A trainable parameter: value, gradient and Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient.
    pub grad: Tensor,
    m: Tensor,
    v: Tensor,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Tensor) -> Self {
        let dims = value.dims().to_vec();
        Param {
            value,
            grad: Tensor::zeros(&dims),
            m: Tensor::zeros(&dims),
            v: Tensor::zeros(&dims),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.grad.dims());
    }

    /// One Adam update with bias correction at step `t` (1-based).
    pub fn adam_step(&mut self, lr: f32, t: usize) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let t = t.max(1) as i32;
        let (vs, gs, ms, vs2) = (
            self.value.as_mut_slice(),
            self.grad.as_slice(),
            self.m.as_mut_slice(),
            self.v.as_mut_slice(),
        );
        let bc1 = 1.0 - B1.powi(t);
        let bc2 = 1.0 - B2.powi(t);
        for i in 0..vs.len() {
            ms[i] = B1 * ms[i] + (1.0 - B1) * gs[i];
            vs2[i] = B2 * vs2[i] + (1.0 - B2) * gs[i] * gs[i];
            let mhat = ms[i] / bc1;
            let vhat = vs2[i] / bc2;
            vs[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

/// Fully connected layer `y = x·W + b` for `x: [m, in]`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight `[in, out]`.
    pub w: Param,
    /// Bias `[out]`.
    pub b: Param,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Kaiming-style initialization.
    pub fn new(rng: &mut Pcg32, input: usize, output: usize) -> Self {
        let std = (2.0 / input as f32).sqrt();
        Linear {
            w: Param::new(rng.randn(&[input, output], std)),
            b: Param::new(Tensor::zeros(&[output])),
            cache_x: None,
        }
    }

    /// Forward pass, caching the input for backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = gemm::matmul(x, &self.w.value).expect("shape checked by caller");
        let (m, n) = y.shape().as_matrix().expect("matmul returns a matrix");
        for i in 0..m {
            let row = &mut y.as_mut_slice()[i * n..(i + 1) * n];
            for (j, v) in row.iter_mut().enumerate() {
                *v += self.b.value.as_slice()[j];
            }
        }
        self.cache_x = Some(x.clone());
        y
    }

    /// Inference-only forward (no caching).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut y = gemm::matmul(x, &self.w.value).expect("shape checked by caller");
        let (m, n) = y.shape().as_matrix().expect("matrix");
        for i in 0..m {
            let row = &mut y.as_mut_slice()[i * n..(i + 1) * n];
            for (j, v) in row.iter_mut().enumerate() {
                *v += self.b.value.as_slice()[j];
            }
        }
        y
    }

    /// Backward pass: accumulates `dW`, `db`, returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("forward before backward");
        let xt = x.transpose().expect("matrix");
        let dw = gemm::matmul(&xt, dy).expect("shapes agree");
        self.w.grad = self.w.grad.add(&dw).expect("same shape");
        let (m, n) = dy.shape().as_matrix().expect("matrix");
        for i in 0..m {
            for j in 0..n {
                self.b.grad.as_mut_slice()[j] += dy.as_slice()[i * n + j];
            }
        }
        let wt = self.w.value.transpose().expect("matrix");
        gemm::matmul(dy, &wt).expect("shapes agree")
    }

    /// Adam step on both parameters.
    pub fn step(&mut self, lr: f32, t: usize) {
        self.w.adam_step(lr, t);
        self.b.adam_step(lr, t);
        self.w.zero_grad();
        self.b.zero_grad();
    }
}

/// 2-D convolution via im2col, operating on one `[C, H, W]` sample.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Geometry (channels, kernel, stride, padding).
    pub geo: Conv2dGeometry,
    /// Flattened kernel `[out_channels, in_channels·k·k]`.
    pub w: Param,
    /// Per-output-channel bias.
    pub b: Param,
    cache: Vec<(Tensor, usize, usize)>, // (cols, oh, ow) per sample
    input_hw: (usize, usize),
}

impl Conv2d {
    /// Kaiming-style initialization.
    pub fn new(rng: &mut Pcg32, geo: Conv2dGeometry) -> Self {
        let fan_in = geo.patch_len();
        let std = (2.0 / fan_in as f32).sqrt();
        Conv2d {
            geo,
            w: Param::new(rng.randn(&[geo.out_channels, fan_in], std)),
            b: Param::new(Tensor::zeros(&[geo.out_channels])),
            cache: Vec::new(),
            input_hw: (0, 0),
        }
    }

    /// Forward for one sample; caches the im2col matrix.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let dims = x.dims();
        let (h, w) = (dims[1], dims[2]);
        self.input_hw = (h, w);
        let (oh, ow) = self.geo.output_hw(h, w).expect("valid geometry");
        let cols = im2col::im2col(x, &self.geo).expect("shape checked");
        let wt = self.w.value.transpose().expect("matrix");
        let mut prod = gemm::matmul(&cols, &wt).expect("shapes agree");
        let (m, n) = prod.shape().as_matrix().expect("matrix");
        for i in 0..m {
            for j in 0..n {
                prod.as_mut_slice()[i * n + j] += self.b.value.as_slice()[j];
            }
        }
        self.cache.push((cols, oh, ow));
        im2col::col2im_output(&prod, self.geo.out_channels, oh, ow).expect("consistent")
    }

    /// Inference-only forward (no caching).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let dims = x.dims();
        let (h, w) = (dims[1], dims[2]);
        let (oh, ow) = self.geo.output_hw(h, w).expect("valid geometry");
        let cols = im2col::im2col(x, &self.geo).expect("shape checked");
        let wt = self.w.value.transpose().expect("matrix");
        let mut prod = gemm::matmul(&cols, &wt).expect("shapes agree");
        let (m, n) = prod.shape().as_matrix().expect("matrix");
        for i in 0..m {
            for j in 0..n {
                prod.as_mut_slice()[i * n + j] += self.b.value.as_slice()[j];
            }
        }
        im2col::col2im_output(&prod, self.geo.out_channels, oh, ow).expect("consistent")
    }

    /// Backward for the most recent cached sample (LIFO); returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached forward.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (cols, oh, ow) = self.cache.pop().expect("forward before backward");
        let oc = self.geo.out_channels;
        // dy: [oc, oh, ow] → dprod: [oh·ow, oc]
        let mut dprod = Tensor::zeros(&[oh * ow, oc]);
        for ch in 0..oc {
            for p in 0..oh * ow {
                dprod.as_mut_slice()[p * oc + ch] = dy.as_slice()[ch * oh * ow + p];
            }
        }
        // dW = dprodᵀ · cols ;  db = colsum dprod ; dcols = dprod · W
        let dpt = dprod.transpose().expect("matrix");
        let dw = gemm::matmul(&dpt, &cols).expect("shapes agree");
        self.w.grad = self.w.grad.add(&dw).expect("same shape");
        for p in 0..oh * ow {
            for ch in 0..oc {
                self.b.grad.as_mut_slice()[ch] += dprod.as_slice()[p * oc + ch];
            }
        }
        let dcols = gemm::matmul(&dprod, &self.w.value).expect("shapes agree");
        // Scatter-add dcols back to the input layout (col2im backward).
        let (h, w) = self.input_hw;
        let c = self.geo.in_channels;
        let k = self.geo.kernel;
        let pad = self.geo.padding as isize;
        let mut dx = Tensor::zeros(&[c, h, w]);
        let patch = self.geo.patch_len();
        for oy in 0..oh {
            for ox in 0..ow {
                let row = oy * ow + ox;
                for ch in 0..c {
                    for ky in 0..k {
                        let iy = (oy * self.geo.stride) as isize - pad + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * self.geo.stride) as isize - pad + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = ch * k * k + ky * k + kx;
                            dx.as_mut_slice()[ch * h * w + iy as usize * w + ix as usize] +=
                                dcols.as_slice()[row * patch + col];
                        }
                    }
                }
            }
        }
        dx
    }

    /// Adam step; clears gradients and caches.
    pub fn step(&mut self, lr: f32, t: usize) {
        self.w.adam_step(lr, t);
        self.b.adam_step(lr, t);
        self.w.zero_grad();
        self.b.zero_grad();
        self.cache.clear();
    }
}

/// Batch normalization over `[C, H, W]` samples (statistics across the
/// batch and spatial dimensions, per channel).
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Scale γ per channel.
    pub gamma: Param,
    /// Shift β per channel.
    pub beta: Param,
    /// Running mean (inference).
    pub running_mean: Vec<f32>,
    /// Running variance (inference).
    pub running_var: Vec<f32>,
    eps: f32,
    momentum: f32,
    cache: Option<(Vec<Tensor>, Vec<f32>, Vec<f32>)>, // x̂ per sample, mean, var
}

impl BatchNorm2d {
    /// Identity-initialized batch norm for `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
        }
    }

    /// Epsilon used in normalization.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Training forward over a whole batch.
    pub fn forward_train(&mut self, xs: &[Tensor]) -> Vec<Tensor> {
        let c = self.running_mean.len();
        let dims = xs[0].dims();
        let (h, w) = (dims[1], dims[2]);
        let n = (xs.len() * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for x in xs {
            for (ch, m) in mean.iter_mut().enumerate() {
                for &v in &x.as_slice()[ch * h * w..(ch + 1) * h * w] {
                    *m += v;
                }
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        for x in xs {
            for ch in 0..c {
                for &v in &x.as_slice()[ch * h * w..(ch + 1) * h * w] {
                    var[ch] += (v - mean[ch]) * (v - mean[ch]);
                }
            }
        }
        for v in &mut var {
            *v /= n;
        }
        for ch in 0..c {
            self.running_mean[ch] =
                (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch];
            self.running_var[ch] =
                (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch];
        }
        let mut xhats = Vec::with_capacity(xs.len());
        let mut ys = Vec::with_capacity(xs.len());
        for x in xs {
            let mut xhat = x.clone();
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps).sqrt();
                for v in &mut xhat.as_mut_slice()[ch * h * w..(ch + 1) * h * w] {
                    *v = (*v - mean[ch]) * inv;
                }
            }
            let mut y = xhat.clone();
            for ch in 0..c {
                let g = self.gamma.value.as_slice()[ch];
                let b = self.beta.value.as_slice()[ch];
                for v in &mut y.as_mut_slice()[ch * h * w..(ch + 1) * h * w] {
                    *v = *v * g + b;
                }
            }
            xhats.push(xhat);
            ys.push(y);
        }
        self.cache = Some((xhats, mean, var));
        ys
    }

    /// Backward over the whole batch; returns per-sample `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward_train` was not called first.
    pub fn backward(&mut self, dys: &[Tensor]) -> Vec<Tensor> {
        let (xhats, _mean, var) = self.cache.take().expect("forward before backward");
        let c = self.running_mean.len();
        let dims = dys[0].dims();
        let (h, w) = (dims[1], dims[2]);
        let n = (dys.len() * h * w) as f32;
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        let mut sum_dxhat = vec![0.0f32; c];
        let mut sum_dxhat_xhat = vec![0.0f32; c];
        for (dy, xhat) in dys.iter().zip(&xhats) {
            for ch in 0..c {
                let g = self.gamma.value.as_slice()[ch];
                for (dv, xv) in dy.as_slice()[ch * h * w..(ch + 1) * h * w]
                    .iter()
                    .zip(&xhat.as_slice()[ch * h * w..(ch + 1) * h * w])
                {
                    dgamma[ch] += dv * xv;
                    dbeta[ch] += dv;
                    let dxh = dv * g;
                    sum_dxhat[ch] += dxh;
                    sum_dxhat_xhat[ch] += dxh * xv;
                }
            }
        }
        for ch in 0..c {
            self.gamma.grad.as_mut_slice()[ch] += dgamma[ch];
            self.beta.grad.as_mut_slice()[ch] += dbeta[ch];
        }
        dys.iter()
            .zip(&xhats)
            .map(|(dy, xhat)| {
                let mut dx = dy.clone();
                for ch in 0..c {
                    let g = self.gamma.value.as_slice()[ch];
                    let inv = 1.0 / (var[ch] + self.eps).sqrt();
                    for (dv, xv) in dx.as_mut_slice()[ch * h * w..(ch + 1) * h * w]
                        .iter_mut()
                        .zip(&xhat.as_slice()[ch * h * w..(ch + 1) * h * w])
                    {
                        let dxh = *dv * g;
                        *dv = inv * (dxh - sum_dxhat[ch] / n - xv * sum_dxhat_xhat[ch] / n);
                    }
                }
                dx
            })
            .collect()
    }

    /// Adam step on γ/β.
    pub fn step(&mut self, lr: f32, t: usize) {
        self.gamma.adam_step(lr, t);
        self.beta.adam_step(lr, t);
        self.gamma.zero_grad();
        self.beta.zero_grad();
    }
}

/// Row-wise layer normalization with learned affine.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale γ.
    pub gamma: Param,
    /// Shift β.
    pub beta: Param,
    eps: f32,
    cache: Option<(Tensor, Vec<f32>)>, // x̂, inv_std per row
}

impl LayerNorm {
    /// Identity-initialized layer norm over rows of width `n`.
    pub fn new(n: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Tensor::ones(&[n])),
            beta: Param::new(Tensor::zeros(&[n])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Epsilon used in normalization.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Forward over `[m, n]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (m, n) = x.shape().as_matrix().expect("matrix");
        let mut xhat = x.clone();
        let mut inv_stds = Vec::with_capacity(m);
        for i in 0..m {
            let row = &mut xhat.as_mut_slice()[i * n..(i + 1) * n];
            let mean: f32 = row.iter().sum::<f32>() / n as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            for v in row.iter_mut() {
                *v = (*v - mean) * inv;
            }
            inv_stds.push(inv);
        }
        let mut y = xhat.clone();
        for i in 0..m {
            let row = &mut y.as_mut_slice()[i * n..(i + 1) * n];
            for (j, v) in row.iter_mut().enumerate() {
                *v = *v * self.gamma.value.as_slice()[j] + self.beta.value.as_slice()[j];
            }
        }
        self.cache = Some((xhat, inv_stds));
        y
    }

    /// Backward; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, inv_stds) = self.cache.take().expect("forward before backward");
        let (m, n) = dy.shape().as_matrix().expect("matrix");
        let mut dx = dy.clone();
        assert_eq!(inv_stds.len(), m, "cached forward batch vs dy rows");
        for (i, &inv_std) in inv_stds.iter().enumerate() {
            let dyr = &dy.as_slice()[i * n..(i + 1) * n];
            let xr = &xhat.as_slice()[i * n..(i + 1) * n];
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for j in 0..n {
                self.gamma.grad.as_mut_slice()[j] += dyr[j] * xr[j];
                self.beta.grad.as_mut_slice()[j] += dyr[j];
                let dxh = dyr[j] * self.gamma.value.as_slice()[j];
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xr[j];
            }
            let row = &mut dx.as_mut_slice()[i * n..(i + 1) * n];
            for (j, v) in row.iter_mut().enumerate() {
                let dxh = dyr[j] * self.gamma.value.as_slice()[j];
                *v = inv_std * (dxh - sum_dxhat / n as f32 - xr[j] * sum_dxhat_xhat / n as f32);
            }
        }
        dx
    }

    /// Adam step on γ/β.
    pub fn step(&mut self, lr: f32, t: usize) {
        self.gamma.adam_step(lr, t);
        self.beta.adam_step(lr, t);
        self.gamma.zero_grad();
        self.beta.zero_grad();
    }
}

/// Token embedding table with additive learned positional embeddings.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Token table `[vocab, d]`.
    pub table: Param,
    /// Positional table `[max_len, d]`.
    pub pos: Param,
    cache_ids: Vec<usize>,
}

impl Embedding {
    /// Small-normal initialization.
    pub fn new(rng: &mut Pcg32, vocab: usize, max_len: usize, d: usize) -> Self {
        Embedding {
            table: Param::new(rng.randn(&[vocab, d], 0.05)),
            pos: Param::new(rng.randn(&[max_len, d], 0.05)),
            cache_ids: Vec::new(),
        }
    }

    /// Looks up a sequence: `[len, d]`.
    pub fn forward(&mut self, ids: &[usize]) -> Tensor {
        self.cache_ids = ids.to_vec();
        self.infer(ids)
    }

    /// Inference-only lookup.
    pub fn infer(&self, ids: &[usize]) -> Tensor {
        let d = self.table.value.dims()[1];
        let mut out = Tensor::zeros(&[ids.len(), d]);
        for (i, &id) in ids.iter().enumerate() {
            let tok = self.table.value.row(id).expect("id < vocab");
            let pos = self.pos.value.row(i).expect("i < max_len");
            let row = out.row_mut(i).expect("in bounds");
            for j in 0..d {
                row[j] = tok[j] + pos[j];
            }
        }
        out
    }

    /// Backward: scatter-adds into the tables.
    pub fn backward(&mut self, dy: &Tensor) {
        let d = self.table.value.dims()[1];
        for (i, &id) in self.cache_ids.iter().enumerate() {
            for j in 0..d {
                let g = dy.as_slice()[i * d + j];
                self.table.grad.as_mut_slice()[id * d + j] += g;
                self.pos.grad.as_mut_slice()[i * d + j] += g;
            }
        }
    }

    /// Adam step.
    pub fn step(&mut self, lr: f32, t: usize) {
        self.table.adam_step(lr, t);
        self.pos.adam_step(lr, t);
        self.table.zero_grad();
        self.pos.zero_grad();
    }
}

/// Multi-head self-attention (pre-softmax scaling, learned projections).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    heads: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Vec<Tensor>, // per head [L, L]
}

impl MultiHeadAttention {
    /// Builds attention with `heads` heads over model width `d`
    /// (must divide evenly).
    ///
    /// # Panics
    ///
    /// Panics if `d % heads != 0`.
    pub fn new(rng: &mut Pcg32, d: usize, heads: usize) -> Self {
        assert_eq!(d % heads, 0, "heads must divide model width");
        MultiHeadAttention {
            wq: Linear::new(rng, d, d),
            wk: Linear::new(rng, d, d),
            wv: Linear::new(rng, d, d),
            wo: Linear::new(rng, d, d),
            heads,
            cache: None,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn head_slice(x: &Tensor, head: usize, dk: usize) -> Tensor {
        let (l, _d) = x.shape().as_matrix().expect("matrix");
        let mut out = Tensor::zeros(&[l, dk]);
        for i in 0..l {
            for j in 0..dk {
                out.as_mut_slice()[i * dk + j] = x.as_slice()[i * x.dims()[1] + head * dk + j];
            }
        }
        out
    }

    fn head_write(x: &mut Tensor, head: usize, dk: usize, part: &Tensor) {
        let (l, d) = x.shape().as_matrix().expect("matrix");
        for i in 0..l {
            for j in 0..dk {
                x.as_mut_slice()[i * d + head * dk + j] += part.as_slice()[i * dk + j];
            }
        }
    }

    /// Forward with an optional pluggable softmax (the CPWL inference
    /// path passes the table-based one).
    pub fn forward_with(
        &mut self,
        x: &Tensor,
        softmax: &dyn Fn(&Tensor) -> Tensor,
        train: bool,
    ) -> Tensor {
        let (l, d) = x.shape().as_matrix().expect("matrix");
        let dk = d / self.heads;
        let (q, k, v) = if train {
            (self.wq.forward(x), self.wk.forward(x), self.wv.forward(x))
        } else {
            (self.wq.infer(x), self.wk.infer(x), self.wv.infer(x))
        };
        let mut concat = Tensor::zeros(&[l, d]);
        let mut probs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = Self::head_slice(&q, h, dk);
            let kh = Self::head_slice(&k, h, dk);
            let vh = Self::head_slice(&v, h, dk);
            let kt = kh.transpose().expect("matrix");
            let scores = gemm::matmul(&qh, &kt)
                .expect("shapes agree")
                .scale(1.0 / (dk as f32).sqrt());
            let p = softmax(&scores);
            let ctx = gemm::matmul(&p, &vh).expect("shapes agree");
            Self::head_write(&mut concat, h, dk, &ctx);
            probs.push(p);
        }
        if train {
            self.cache = Some(AttnCache { q, k, v, probs });
            self.wo.forward(&concat)
        } else {
            self.wo.infer(&concat)
        }
    }

    /// Backward; returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if the training forward was not called first.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let AttnCache { q, k, v, probs } = self.cache.take().expect("forward before backward");
        let (l, d) = dy.shape().as_matrix().expect("matrix");
        let dk = d / self.heads;
        let dconcat = self.wo.backward(dy);
        let mut dq = Tensor::zeros(&[l, d]);
        let mut dkt = Tensor::zeros(&[l, d]);
        let mut dv = Tensor::zeros(&[l, d]);
        assert_eq!(probs.len(), self.heads, "cached probs vs head count");
        for (h, p) in probs.iter().enumerate() {
            let dctx = Self::head_slice(&dconcat, h, dk);
            let vh = Self::head_slice(&v, h, dk);
            let qh = Self::head_slice(&q, h, dk);
            let kh = Self::head_slice(&k, h, dk);
            // dP = dctx·Vᵀ ; dV = Pᵀ·dctx
            let vt = vh.transpose().expect("matrix");
            let dp = gemm::matmul(&dctx, &vt).expect("shapes agree");
            let pt = p.transpose().expect("matrix");
            let dvh = gemm::matmul(&pt, &dctx).expect("shapes agree");
            // Softmax backward: dS = P ∘ (dP − rowsum(dP ∘ P))
            let mut ds = dp.clone();
            for i in 0..l {
                let pr = &p.as_slice()[i * l..(i + 1) * l];
                let dpr = &dp.as_slice()[i * l..(i + 1) * l];
                let dot: f32 = pr.iter().zip(dpr).map(|(&a, &b)| a * b).sum();
                let row = &mut ds.as_mut_slice()[i * l..(i + 1) * l];
                for (j, sv) in row.iter_mut().enumerate() {
                    *sv = pr[j] * (dpr[j] - dot);
                }
            }
            let scale = 1.0 / (dk as f32).sqrt();
            let ds = ds.scale(scale);
            // dQ = dS·K ; dK = dSᵀ·Q
            let dqh = gemm::matmul(&ds, &kh).expect("shapes agree");
            let dst = ds.transpose().expect("matrix");
            let dkh = gemm::matmul(&dst, &qh).expect("shapes agree");
            Self::head_write(&mut dq, h, dk, &dqh);
            Self::head_write(&mut dkt, h, dk, &dkh);
            Self::head_write(&mut dv, h, dk, &dvh);
        }
        let dx_q = self.wq.backward(&dq);
        let dx_k = self.wk.backward(&dkt);
        let dx_v = self.wv.backward(&dv);
        dx_q.add(&dx_k)
            .expect("same shape")
            .add(&dx_v)
            .expect("same shape")
    }

    /// Adam step on all projections.
    pub fn step(&mut self, lr: f32, t: usize) {
        self.wq.step(lr, t);
        self.wk.step(lr, t);
        self.wv.step(lr, t);
        self.wo.step(lr, t);
    }
}

/// ReLU with cached mask.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cache: Option<Tensor>,
}

impl Relu {
    /// New activation.
    pub fn new() -> Self {
        Relu { cache: None }
    }

    /// Forward (caches input).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    /// Backward.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache.take().expect("forward before backward");
        dy.zip(&x, |d, xv| if xv > 0.0 { d } else { 0.0 })
            .expect("same shape")
    }
}

/// GELU with cached input.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cache: Option<Tensor>,
}

impl Gelu {
    /// New activation.
    pub fn new() -> Self {
        Gelu { cache: None }
    }

    /// Forward (caches input).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache = Some(x.clone());
        x.map(|v| NonlinearFn::Gelu.eval(v))
    }

    /// Backward using `gelu'(x) = Φ(x) + x·φ(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache.take().expect("forward before backward");
        dy.zip(&x, |d, xv| {
            let phi_cdf = 0.5 * (1.0 + NonlinearFn::Erf.eval(xv / std::f32::consts::SQRT_2));
            let phi_pdf = (-0.5 * xv * xv).exp() / (2.0 * std::f32::consts::PI).sqrt();
            d * (phi_cdf + xv * phi_pdf)
        })
        .expect("same shape")
    }
}

/// Softmax cross-entropy from logits: returns `(mean loss, dlogits)`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (m, n) = logits.shape().as_matrix().expect("matrix");
    let probs = onesa_cpwl::ops::softmax_rows_exact(logits).expect("matrix");
    assert_eq!(labels.len(), m, "one label per logit row");
    let mut loss = 0.0f32;
    let mut dl = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.as_slice()[i * n + label].max(1e-12);
        loss -= p.ln();
        dl.as_mut_slice()[i * n + label] -= 1.0;
    }
    (loss / m as f32, dl.scale(1.0 / m as f32))
}

/// Mean-squared-error loss: returns `(loss, dpred)`.
pub fn mse(pred: &Tensor, target: &[f32]) -> (f32, Tensor) {
    let n = pred.len() as f32;
    let mut loss = 0.0f32;
    let mut d = pred.clone();
    for (i, v) in d.as_mut_slice().iter_mut().enumerate() {
        let e = *v - target[i];
        loss += e * e;
        *v = 2.0 * e / n;
    }
    (loss / n, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_known_values() {
        let mut rng = Pcg32::seed_from_u64(1);
        let mut l = Linear::new(&mut rng, 2, 2);
        l.w.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        l.b.value = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
        assert_eq!(l.infer(&x).as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        let y = r.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0]);
        let dx = r.backward(&Tensor::from_vec(vec![5.0, 5.0], &[2]).unwrap());
        assert_eq!(dx.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, 0.5, 0.1, 3.0, -1.0], &[2, 3]).unwrap();
        let (loss, d) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss > 0.0);
        for i in 0..2 {
            let s: f32 = d.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {i} grad sum {s}");
        }
    }

    #[test]
    fn mse_at_target_is_zero() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let (loss, d) = mse(&pred, &[1.0, 2.0]);
        assert_eq!(loss, 0.0);
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn layernorm_forward_normalizes() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let y = ln.forward(&x);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn batchnorm_train_normalizes_channel() {
        let mut bn = BatchNorm2d::new(1);
        let xs = vec![
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap(),
            Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[1, 2, 2]).unwrap(),
        ];
        let ys = bn.forward_train(&xs);
        let all: Vec<f32> = ys
            .iter()
            .flat_map(|t| t.as_slice().iter().copied())
            .collect();
        let mean: f32 = all.iter().sum::<f32>() / all.len() as f32;
        let var: f32 = all.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / all.len() as f32;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn embedding_lookup_and_backward() {
        let mut rng = Pcg32::seed_from_u64(2);
        let mut e = Embedding::new(&mut rng, 10, 8, 4);
        let y = e.forward(&[3, 3, 7]);
        assert_eq!(y.dims(), &[3, 4]);
        let dy = Tensor::ones(&[3, 4]);
        e.backward(&dy);
        // Token 3 appears twice → grad 2, token 7 once → grad 1.
        assert_eq!(e.table.grad.at(&[3, 0]).unwrap(), 2.0);
        assert_eq!(e.table.grad.at(&[7, 0]).unwrap(), 1.0);
        assert_eq!(e.table.grad.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn attention_output_shape_and_determinism() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut attn = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = Pcg32::seed_from_u64(4).randn(&[5, 8], 1.0);
        let sm = |s: &Tensor| onesa_cpwl::ops::softmax_rows_exact(s).unwrap();
        let y1 = attn.forward_with(&x, &sm, false);
        let y2 = attn.forward_with(&x, &sm, false);
        assert_eq!(y1, y2);
        assert_eq!(y1.dims(), &[5, 8]);
    }

    #[test]
    fn adam_reduces_simple_quadratic() {
        // Minimize ||w||² with Adam through the Param API.
        let mut p = Param::new(Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap());
        for t in 1..=500 {
            p.grad = p.value.scale(2.0);
            p.adam_step(0.05, t);
        }
        assert!(p.value.as_slice().iter().all(|v| v.abs() < 0.05));
    }
}
