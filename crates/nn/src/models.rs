//! The three model families of the paper's accuracy study.
//!
//! Each model trains in f32 with exact nonlinearities (using the manual
//! backprop layers) and then runs inference under any
//! [`InferenceMode`] — exact, or CPWL at a chosen granularity with INT16
//! quantization, matching how the array would execute it.

use crate::infer::InferenceMode;
use crate::layers::{
    mse, softmax_cross_entropy, BatchNorm2d, Conv2d, Embedding, Gelu, LayerNorm, Linear,
    MultiHeadAttention, Param,
};
use crate::train::TrainConfig;
use onesa_data::text::TextTask;
use onesa_data::{GraphDataset, ImageDataset, TextDataset};
use onesa_plan::{tensor_fingerprint, CompileCache, OptLevel, Program};
use onesa_tensor::im2col::Conv2dGeometry;
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::quant::QuantTensor;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, stats, Tensor};
use std::sync::Arc;

/// Compile-cache salts separating a model's whole-network and
/// feature-subgraph programs (they share the same mode + geometry key).
const SALT_NETWORK: u64 = 0;
const SALT_FEATURES: u64 = 1;
/// Salts separating a causal LM's prefill and per-context decode
/// programs (keyed on the same mode + length geometry).
const SALT_PREFILL: u64 = 2;
const SALT_DECODE: u64 = 3;

fn global_avg_pool(x: &Tensor) -> Vec<f32> {
    let dims = x.dims();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    (0..c)
        .map(|ch| {
            x.as_slice()[ch * h * w..(ch + 1) * h * w]
                .iter()
                .sum::<f32>()
                / (h * w) as f32
        })
        .collect()
}

/// A small residual CNN (the paper's "CNN-based ResNet" family scaled to
/// the synthetic tasks): conv–BN–ReLU stem, one residual block, global
/// average pooling and a linear classifier.
#[derive(Debug, Clone)]
pub struct SmallCnn {
    pub(crate) conv1: Conv2d,
    pub(crate) bn1: BatchNorm2d,
    pub(crate) conv2: Conv2d,
    pub(crate) bn2: BatchNorm2d,
    pub(crate) conv3: Conv2d,
    pub(crate) bn3: BatchNorm2d,
    pub(crate) fc: Linear,
    pub(crate) channels: usize,
    /// Memoized compiled programs, keyed on (mode, input geometry);
    /// cleared by [`SmallCnn::fit`] (training rewrites the weights the
    /// cached programs bake in).
    cache: CompileCache,
}

impl SmallCnn {
    /// Builds the model for `in_channels` input channels and `classes`
    /// outputs.
    pub fn new(seed: u64, in_channels: usize, classes: usize) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let ch = 8;
        let geo = |cin: usize| Conv2dGeometry {
            in_channels: cin,
            out_channels: ch,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        SmallCnn {
            conv1: Conv2d::new(&mut rng, geo(in_channels)),
            bn1: BatchNorm2d::new(ch),
            conv2: Conv2d::new(&mut rng, geo(ch)),
            bn2: BatchNorm2d::new(ch),
            conv3: Conv2d::new(&mut rng, geo(ch)),
            bn3: BatchNorm2d::new(ch),
            fc: Linear::new(&mut rng, ch, classes),
            channels: ch,
            cache: CompileCache::new(),
        }
    }

    /// The model's compile cache (hit/miss counters for tests and
    /// benches).
    pub fn compile_cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Trains with Adam on the dataset's train split; returns the final
    /// epoch's mean loss.
    pub fn fit(&mut self, data: &ImageDataset, cfg: &TrainConfig) -> f32 {
        // Training rewrites every parameter: cached compiled programs
        // would keep serving the old weights.
        self.cache.clear();
        let mut step = 0usize;
        let mut last_loss = f32::NAN;
        for _epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            let mut i = 0usize;
            while i < data.train_x.len() {
                let end = (i + cfg.batch_size).min(data.train_x.len());
                let xs = &data.train_x[i..end];
                let ys = &data.train_y[i..end];
                epoch_loss += self.train_batch(xs, ys, cfg.lr, {
                    step += 1;
                    step
                });
                batches += 1;
                i = end;
            }
            last_loss = epoch_loss / batches.max(1) as f32;
        }
        last_loss
    }

    fn train_batch(&mut self, xs: &[Tensor], ys: &[usize], lr: f32, t: usize) -> f32 {
        let n = xs.len();
        // Forward.
        let a: Vec<Tensor> = xs.iter().map(|x| self.conv1.forward(x)).collect();
        let a_bn = self.bn1.forward_train(&a);
        let mut relu1_mask = Vec::with_capacity(n);
        let r: Vec<Tensor> = a_bn
            .iter()
            .map(|t| {
                relu1_mask.push(t.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
                t.map(|v| v.max(0.0))
            })
            .collect();
        let b: Vec<Tensor> = r.iter().map(|x| self.conv2.forward(x)).collect();
        let b_bn = self.bn2.forward_train(&b);
        let mut relu2_mask = Vec::with_capacity(n);
        let r2: Vec<Tensor> = b_bn
            .iter()
            .map(|t| {
                relu2_mask.push(t.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
                t.map(|v| v.max(0.0))
            })
            .collect();
        let c: Vec<Tensor> = r2.iter().map(|x| self.conv3.forward(x)).collect();
        let c_bn = self.bn3.forward_train(&c);
        // Residual add + final ReLU.
        let mut relu3_mask = Vec::with_capacity(n);
        let res: Vec<Tensor> = c_bn
            .iter()
            .zip(&r)
            .map(|(cb, skip)| {
                let s = cb.add(skip).expect("same shape");
                relu3_mask.push(s.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
                s.map(|v| v.max(0.0))
            })
            .collect();
        // Pool → logits.
        let mut pooled = Tensor::zeros(&[n, self.channels]);
        for (i, t) in res.iter().enumerate() {
            pooled
                .row_mut(i)
                .expect("in bounds")
                .copy_from_slice(&global_avg_pool(t));
        }
        let logits = self.fc.forward(&pooled);
        let (loss, dlogits) = softmax_cross_entropy(&logits, ys);

        // Backward.
        let dpooled = self.fc.backward(&dlogits);
        let dims = res[0].dims();
        let (ch, h, w) = (dims[0], dims[1], dims[2]);
        let dres: Vec<Tensor> = (0..n)
            .map(|i| {
                let mut d = Tensor::zeros(&[ch, h, w]);
                for cc in 0..ch {
                    let g = dpooled.as_slice()[i * ch + cc] / (h * w) as f32;
                    for v in &mut d.as_mut_slice()[cc * h * w..(cc + 1) * h * w] {
                        *v = g;
                    }
                }
                d.mul(&relu3_mask[i]).expect("same shape")
            })
            .collect();
        // Residual split: d(c_bn) = dres ; d(skip r) += dres.
        let dc_bn = self.bn3.backward(&dres);
        let mut dr_extra: Vec<Tensor> = dres;
        // conv3 backward (reverse order to pop the LIFO caches).
        let mut dr2: Vec<Tensor> = vec![Tensor::zeros(&[ch, h, w]); n];
        for i in (0..n).rev() {
            dr2[i] = self.conv3.backward(&dc_bn[i]);
        }
        let dr2m: Vec<Tensor> = dr2
            .iter()
            .zip(&relu2_mask)
            .map(|(d, m)| d.mul(m).expect("same shape"))
            .collect();
        let db_bn = self.bn2.backward(&dr2m);
        for i in (0..n).rev() {
            let d = self.conv2.backward(&db_bn[i]);
            dr_extra[i] = dr_extra[i].add(&d).expect("same shape");
        }
        let dr_masked: Vec<Tensor> = dr_extra
            .iter()
            .zip(&relu1_mask)
            .map(|(d, m)| d.mul(m).expect("same shape"))
            .collect();
        let da_bn = self.bn1.backward(&dr_masked);
        for i in (0..n).rev() {
            let _ = self.conv1.backward(&da_bn[i]);
        }

        // Steps.
        self.conv1.step(lr, t);
        self.bn1.step(lr, t);
        self.conv2.step(lr, t);
        self.bn2.step(lr, t);
        self.conv3.step(lr, t);
        self.bn3.step(lr, t);
        self.fc.step(lr, t);
        loss
    }

    /// The pooled `[1, channels]` feature vector the classifier consumes:
    /// everything in [`SmallCnn::logits`] up to (but excluding) the final
    /// linear layer. Serving systems use this split to route the final
    /// shared-weight GEMM of a whole batch through one coalesced kernel
    /// call (`onesa_core::serve::ServeEngine::classify_batch`), with
    /// `features(x) · W + b` bit-identical to [`SmallCnn::logits`].
    ///
    /// Since the Program-IR refactor this compiles the feature subgraph
    /// to an `onesa_plan::Program` and runs it — bit-identical to
    /// [`SmallCnn::pooled_features_direct`] (locked by test).
    /// Compilation is memoized per (mode, geometry) and the program is
    /// optimized at the bit-identical default level, so repeated calls
    /// clone a cheap `Arc`-backed program instead of re-emitting the
    /// graph and re-copying the weights.
    pub fn pooled_features(&self, x: &Tensor, mode: &InferenceMode) -> Tensor {
        let dims = x.dims();
        let program = self
            .cache
            .get_or_compile(mode.eval_mode(), dims, SALT_FEATURES, || {
                self.features_program(mode, dims[1], dims[2])?
                    .optimize(OptLevel::default())
            })
            .expect("CNN feature graph compiles");
        crate::compile::run_compiled(&program, std::slice::from_ref(x), mode)
    }

    /// Layer-by-layer reference implementation of
    /// [`SmallCnn::pooled_features`] — the direct path the compiled
    /// program is tested bit-identical against.
    pub fn pooled_features_direct(&self, x: &Tensor, mode: &InferenceMode) -> Tensor {
        let x = mode.boundary(x);
        let a = mode.boundary(&self.conv1.infer(&x));
        let (k1, b1) = mode.batchnorm_fold(
            &self.bn1.running_mean,
            &self.bn1.running_var,
            self.bn1.gamma.value.as_slice(),
            self.bn1.beta.value.as_slice(),
            self.bn1.eps(),
        );
        let r = mode.relu(&mode.batchnorm_apply(&a, &k1, &b1));
        let r = mode.boundary(&r);
        let b = mode.boundary(&self.conv2.infer(&r));
        let (k2, b2) = mode.batchnorm_fold(
            &self.bn2.running_mean,
            &self.bn2.running_var,
            self.bn2.gamma.value.as_slice(),
            self.bn2.beta.value.as_slice(),
            self.bn2.eps(),
        );
        let r2 = mode.relu(&mode.batchnorm_apply(&b, &k2, &b2));
        let c = mode.boundary(&self.conv3.infer(&r2));
        let (k3, b3) = mode.batchnorm_fold(
            &self.bn3.running_mean,
            &self.bn3.running_var,
            self.bn3.gamma.value.as_slice(),
            self.bn3.beta.value.as_slice(),
            self.bn3.eps(),
        );
        let cb = mode.batchnorm_apply(&c, &k3, &b3);
        let res = mode.relu(&cb.add(&r).expect("same shape"));
        let pooled = global_avg_pool(&mode.boundary(&res));
        Tensor::from_vec(pooled, &[1, self.channels]).expect("length matches")
    }

    /// The final linear classifier (weights `[channels, classes]`, bias
    /// `[classes]`) applied to [`SmallCnn::pooled_features`].
    pub fn classifier(&self) -> &Linear {
        &self.fc
    }

    /// Logits for one sample under an inference mode: compiles the whole
    /// network (convolutions, folded batch norms, residual, pooling and
    /// classifier) to an `onesa_plan::Program` and runs it —
    /// bit-identical to [`SmallCnn::logits_direct`] (locked by test).
    /// Compilation is memoized per (mode, geometry) — see
    /// [`SmallCnn::compile_cache`].
    pub fn logits(&self, x: &Tensor, mode: &InferenceMode) -> Vec<f32> {
        let dims = x.dims();
        let program = self
            .cache
            .get_or_compile(mode.eval_mode(), dims, SALT_NETWORK, || {
                self.network_program(mode, dims[1], dims[2])?
                    .optimize(OptLevel::default())
            })
            .expect("CNN graph compiles");
        crate::compile::run_compiled(&program, std::slice::from_ref(x), mode).into_vec()
    }

    /// Layer-by-layer reference implementation of [`SmallCnn::logits`].
    pub fn logits_direct(&self, x: &Tensor, mode: &InferenceMode) -> Vec<f32> {
        self.fc
            .infer(&self.pooled_features_direct(x, mode))
            .into_vec()
    }

    /// Logits for a batch of samples, fanned out across worker threads
    /// via [`infer::infer_batch`](crate::infer::infer_batch); results are
    /// in input order and bit-identical to per-sample [`SmallCnn::logits`]
    /// calls.
    pub fn logits_batch(
        &self,
        xs: &[Tensor],
        mode: &InferenceMode,
        par: Parallelism,
    ) -> Vec<Vec<f32>> {
        crate::infer::infer_batch(par, xs, |x| self.logits(x, mode))
    }

    /// Test-set accuracy under an inference mode.
    pub fn evaluate(&self, data: &ImageDataset, mode: &InferenceMode) -> f32 {
        let mut correct = 0usize;
        for (x, &y) in data.test_x.iter().zip(&data.test_y) {
            let logits = self.logits(x, mode);
            if stats::argmax(&logits) == Some(y) {
                correct += 1;
            }
        }
        correct as f32 / data.test_y.len().max(1) as f32
    }
}

/// One transformer encoder block (post-norm, GELU feed-forward).
#[derive(Debug, Clone)]
pub(crate) struct EncoderBlock {
    pub(crate) attn: MultiHeadAttention,
    pub(crate) ln1: LayerNorm,
    pub(crate) ff1: Linear,
    pub(crate) gelu: Gelu,
    pub(crate) ff2: Linear,
    pub(crate) ln2: LayerNorm,
}

impl EncoderBlock {
    fn new(rng: &mut Pcg32, d: usize, heads: usize, ff: usize) -> Self {
        EncoderBlock {
            attn: MultiHeadAttention::new(rng, d, heads),
            ln1: LayerNorm::new(d),
            ff1: Linear::new(rng, d, ff),
            gelu: Gelu::new(),
            ff2: Linear::new(rng, ff, d),
            ln2: LayerNorm::new(d),
        }
    }

    fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let sm = |s: &Tensor| onesa_cpwl::ops::softmax_rows_exact(s).expect("matrix");
        let a = self.attn.forward_with(x, &sm, true);
        let h = self.ln1.forward(&x.add(&a).expect("same shape"));
        let f = self.ff2.forward(&self.gelu.forward(&self.ff1.forward(&h)));
        self.ln2.forward(&h.add(&f).expect("same shape"))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d_sum2 = self.ln2.backward(dy);
        let d_f = self.ff2.backward(&d_sum2);
        let d_g = self.gelu.backward(&d_f);
        let d_h_ff = self.ff1.backward(&d_g);
        let d_h = d_sum2.add(&d_h_ff).expect("same shape");
        let d_sum1 = self.ln1.backward(&d_h);
        let d_attn_in = self.attn.backward(&d_sum1);
        d_sum1.add(&d_attn_in).expect("same shape")
    }

    fn infer(&self, x: &Tensor, mode: &InferenceMode) -> Tensor {
        self.infer_with(x, mode, &|s| mode.softmax_rows(s), &|t| mode.boundary(t))
    }

    /// Inference with pluggable softmax and INT16-boundary routines: the
    /// encoder passes the full-row softmax and the tensor-wide boundary;
    /// the causal decoder passes the prefix-masked softmax and the
    /// row-wise boundary (see [`TinyCausalLm`]).
    fn infer_with(
        &self,
        x: &Tensor,
        mode: &InferenceMode,
        sm: &dyn Fn(&Tensor) -> Tensor,
        boundary: &dyn Fn(&Tensor) -> Tensor,
    ) -> Tensor {
        // The pluggable-softmax forward needs &mut for caching; clone the
        // attention (cheap at these sizes) to keep `infer` immutable.
        let mut attn = self.attn.clone();
        let a = attn.forward_with(x, sm, false);
        let sum1 = boundary(&x.add(&a).expect("same shape"));
        let h = mode.layernorm_rows(
            &sum1,
            self.ln1.gamma.value.as_slice(),
            self.ln1.beta.value.as_slice(),
            self.ln1.eps(),
        );
        let f1 = self.ff1.infer(&h);
        let g = mode.gelu(&f1);
        let f = self.ff2.infer(&g);
        let sum2 = boundary(&h.add(&f).expect("same shape"));
        mode.layernorm_rows(
            &sum2,
            self.ln2.gamma.value.as_slice(),
            self.ln2.beta.value.as_slice(),
            self.ln2.eps(),
        )
    }

    fn step(&mut self, lr: f32, t: usize) {
        self.attn.step(lr, t);
        self.ln1.step(lr, t);
        self.ff1.step(lr, t);
        self.ff2.step(lr, t);
        self.ln2.step(lr, t);
    }
}

/// A BERT-style encoder classifier/regressor (the paper's
/// "transformer-based BERT" family scaled to the synthetic tasks).
#[derive(Debug, Clone)]
pub struct TinyBert {
    pub(crate) emb: Embedding,
    pub(crate) blocks: Vec<EncoderBlock>,
    pub(crate) head: Linear,
    pub(crate) d: usize,
    outputs: usize,
    /// Memoized compiled programs keyed on (mode, sequence length);
    /// cleared by [`TinyBert::fit`].
    cache: CompileCache,
}

impl TinyBert {
    /// Builds the model: embedding → `layers` encoder blocks → mean-pool
    /// → linear head with `outputs` outputs (1 for regression).
    pub fn new(seed: u64, vocab: usize, max_len: usize, outputs: usize, layers: usize) -> Self {
        let d = 32;
        let heads = 2;
        let ff = 64;
        let mut rng = Pcg32::seed_from_u64(seed);
        TinyBert {
            emb: Embedding::new(&mut rng, vocab, max_len, d),
            blocks: (0..layers)
                .map(|_| EncoderBlock::new(&mut rng, d, heads, ff))
                .collect(),
            head: Linear::new(&mut rng, d, outputs),
            d,
            outputs,
            cache: CompileCache::new(),
        }
    }

    /// The model's compile cache (hit/miss counters for tests and
    /// benches).
    pub fn compile_cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Trains on the dataset's train split; returns the final mean loss.
    pub fn fit(&mut self, data: &TextDataset, cfg: &TrainConfig) -> f32 {
        self.cache.clear();
        let mut step = 0usize;
        let mut last = f32::NAN;
        for _epoch in 0..cfg.epochs {
            let mut total = 0.0f32;
            for (seq, &label) in data.train_x.iter().zip(&data.train_y) {
                step += 1;
                total += self.train_one(seq, label, data.task, cfg.lr, step);
            }
            last = total / data.train_x.len().max(1) as f32;
        }
        last
    }

    fn train_one(&mut self, seq: &[usize], label: f32, task: TextTask, lr: f32, t: usize) -> f32 {
        let mut h = self.emb.forward(seq);
        for b in &mut self.blocks {
            h = b.forward_train(&h);
        }
        let l = seq.len();
        // Mean pool.
        let mut pooled = Tensor::zeros(&[1, self.d]);
        for i in 0..l {
            for j in 0..self.d {
                pooled.as_mut_slice()[j] += h.as_slice()[i * self.d + j] / l as f32;
            }
        }
        let out = self.head.forward(&pooled);
        let (loss, dout) = match task {
            TextTask::Classification => softmax_cross_entropy(&out, &[label as usize]),
            TextTask::Regression => mse(&out, &[label]),
        };
        let dpooled = self.head.backward(&dout);
        let mut dh = Tensor::zeros(&[l, self.d]);
        for i in 0..l {
            for j in 0..self.d {
                dh.as_mut_slice()[i * self.d + j] = dpooled.as_slice()[j] / l as f32;
            }
        }
        for b in self.blocks.iter_mut().rev() {
            dh = b.backward(&dh);
        }
        self.emb.backward(&dh);
        for b in &mut self.blocks {
            b.step(lr, t);
        }
        self.head.step(lr, t);
        self.emb.step(lr, t);
        loss
    }

    /// The mean-pooled `[1, d]` encoder output the head consumes:
    /// everything in [`TinyBert::predict`] up to (but excluding) the
    /// final linear head, including the INT16 boundary round-trip. As
    /// with [`SmallCnn::pooled_features`](crate::models::SmallCnn::pooled_features),
    /// serving systems split here so a batch's head GEMMs coalesce into
    /// one kernel call against the shared head weights.
    ///
    /// Since the Program-IR refactor this compiles the encoder subgraph
    /// to an `onesa_plan::Program` and runs it — bit-identical to
    /// [`TinyBert::pooled_features_direct`] (locked by test).
    /// Compilation is memoized per (mode, sequence length) — see
    /// [`TinyBert::compile_cache`].
    pub fn pooled_features(&self, seq: &[usize], mode: &InferenceMode) -> Tensor {
        let program = self
            .cache
            .get_or_compile(mode.eval_mode(), &[seq.len()], SALT_FEATURES, || {
                self.features_program(mode, seq.len())?
                    .optimize(OptLevel::default())
            })
            .expect("encoder graph compiles");
        crate::compile::run_compiled(&program, &[Self::ids_tensor(seq)], mode)
    }

    /// Layer-by-layer reference implementation of
    /// [`TinyBert::pooled_features`].
    pub fn pooled_features_direct(&self, seq: &[usize], mode: &InferenceMode) -> Tensor {
        let mut h = mode.boundary(&self.emb.infer(seq));
        for b in &self.blocks {
            h = b.infer(&h, mode);
        }
        let l = seq.len();
        let mut pooled = Tensor::zeros(&[1, self.d]);
        for i in 0..l {
            for j in 0..self.d {
                pooled.as_mut_slice()[j] += h.as_slice()[i * self.d + j] / l as f32;
            }
        }
        mode.boundary(&pooled)
    }

    /// The final linear head (weights `[d, outputs]`, bias `[outputs]`)
    /// applied to [`TinyBert::pooled_features`].
    pub fn classifier(&self) -> &Linear {
        &self.head
    }

    /// Head outputs for one sequence under an inference mode: compiles
    /// the whole network (embedding, encoder blocks, mean-pooling and
    /// head) to an `onesa_plan::Program` and runs it — bit-identical to
    /// [`TinyBert::predict_direct`] (locked by test).
    /// Compilation is memoized per (mode, sequence length) — see
    /// [`TinyBert::compile_cache`].
    pub fn predict(&self, seq: &[usize], mode: &InferenceMode) -> Vec<f32> {
        let program = self
            .cache
            .get_or_compile(mode.eval_mode(), &[seq.len()], SALT_NETWORK, || {
                self.network_program(mode, seq.len())?
                    .optimize(OptLevel::default())
            })
            .expect("encoder graph compiles");
        crate::compile::run_compiled(&program, &[Self::ids_tensor(seq)], mode).into_vec()
    }

    /// Layer-by-layer reference implementation of [`TinyBert::predict`].
    pub fn predict_direct(&self, seq: &[usize], mode: &InferenceMode) -> Vec<f32> {
        self.head
            .infer(&self.pooled_features_direct(seq, mode))
            .into_vec()
    }

    /// Token indices as the `[1, len]` tensor a compiled program's
    /// `Embed` op consumes (indices are exactly representable in f32).
    pub fn ids_tensor(seq: &[usize]) -> Tensor {
        Tensor::from_vec(seq.iter().map(|&i| i as f32).collect(), &[1, seq.len()])
            .expect("length matches")
    }

    /// Head outputs for a batch of sequences, fanned out across worker
    /// threads via [`infer::infer_batch`](crate::infer::infer_batch);
    /// results are in input order and bit-identical to per-sequence
    /// [`TinyBert::predict`] calls.
    pub fn predict_batch(
        &self,
        seqs: &[Vec<usize>],
        mode: &InferenceMode,
        par: Parallelism,
    ) -> Vec<Vec<f32>> {
        crate::infer::infer_batch(par, seqs, |seq| self.predict(seq, mode))
    }

    /// Task metric on the test split: accuracy for classification,
    /// Pearson correlation for regression (as in GLUE's STS-B).
    pub fn evaluate(&self, data: &TextDataset, mode: &InferenceMode) -> f32 {
        match data.task {
            TextTask::Classification => {
                let mut correct = 0usize;
                for (seq, &y) in data.test_x.iter().zip(&data.test_y) {
                    let out = self.predict(seq, mode);
                    if stats::argmax(&out) == Some(y as usize) {
                        correct += 1;
                    }
                }
                correct as f32 / data.test_y.len().max(1) as f32
            }
            TextTask::Regression => {
                let preds: Vec<f32> = data
                    .test_x
                    .iter()
                    .map(|seq| self.predict(seq, mode)[0])
                    .collect();
                stats::pearson(&preds, &data.test_y)
            }
        }
    }

    /// Number of head outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }
}

/// Row-wise causal softmax: row `i` of an `[M, N]` score matrix (with
/// `N - M` context columns ahead of the first query row) softmaxes only
/// its visible prefix `0 ..= (N - M) + i`, through the same row-softmax
/// routine the full-row path uses — evaluated on the prefix alone — and
/// is exact `0.0` beyond it. Bit-identical to
/// `onesa_plan::Op::CausalSoftmax` (same per-row prefix evaluation),
/// and, on the last row, to a plain softmax over the whole visible
/// context — the property KV-cached decoding's correctness rests on.
pub(crate) fn causal_softmax_rows(mode: &InferenceMode, scores: &Tensor) -> Tensor {
    let (m, n) = scores.shape().as_matrix().expect("matrix");
    assert!(
        n >= m,
        "causal scores need at least as many columns as rows"
    );
    let offset = n - m;
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let visible = offset + i + 1;
        let prefix = Tensor::from_vec(
            scores.as_slice()[i * n..i * n + visible].to_vec(),
            &[1, visible],
        )
        .expect("length matches");
        let p = mode.softmax_rows(&prefix);
        out.as_mut_slice()[i * n..i * n + visible].copy_from_slice(p.as_slice());
    }
    out
}

/// INT16 boundary for the causal decoder: per-**row** round trips (each
/// token's activations quantize with their own scale), mirroring
/// `onesa_plan::Op::QuantizeRows`. The tensor-wide scale of
/// [`InferenceMode::boundary`] couples every row to the whole tensor's
/// maximum, which would make a cached decode step differ from a
/// recompute-from-scratch run; the row-wise form is row-decomposable,
/// so both paths agree bit for bit. Identity when quantization is off.
pub(crate) fn boundary_rows(mode: &InferenceMode, x: &Tensor) -> Tensor {
    match mode {
        InferenceMode::Cpwl { quantize: true, .. } => {
            let (m, n) = x.shape().as_matrix().expect("matrix");
            let mut out = Tensor::zeros(&[m, n]);
            for i in 0..m {
                let row = Tensor::from_vec(x.as_slice()[i * n..(i + 1) * n].to_vec(), &[1, n])
                    .expect("length matches");
                let q = QuantTensor::quantize(&row).dequantize();
                out.as_mut_slice()[i * n..(i + 1) * n].copy_from_slice(q.as_slice());
            }
            out
        }
        _ => x.clone(),
    }
}

/// A small decoder-only causal language model — the autoregressive
/// counterpart of [`TinyBert`]: token + positional embedding, post-norm
/// transformer blocks with causally-masked attention, and a linear LM
/// head over the vocabulary that is either **tied** to the transposed
/// embedding table or a separately-initialized projection. Sampling is
/// greedy (argmax; ties resolve to the lowest token index).
///
/// Inference comes in two flavors, locked bit-identical by test:
///
/// * the retained no-cache oracle ([`TinyCausalLm::next_logits_direct`],
///   [`TinyCausalLm::generate_direct`]) recomputes the whole prefix from
///   scratch at every step — the decode-correctness reference;
/// * the compiled KV-cache path ([`TinyCausalLm::prefill`],
///   [`TinyCausalLm::decode_step`], [`TinyCausalLm::generate`]) compiles
///   the prompt pass and each per-context decode step to
///   session-carrying `onesa_plan::Program`s whose per-layer K/V
///   tensors persist between steps (and, under
///   `onesa_core::serve::ServeEngine`, between admission windows).
///
/// Bit-identicality holds for every [`InferenceMode`] because every op
/// on the path is row-decomposable: GEMMs, layer norms and embeddings
/// are row-wise, the causal softmax evaluates each row's visible prefix
/// through the plain row-softmax routine, and INT16 boundaries
/// round-trip **per row** (`Op::QuantizeRows`), never per tensor.
#[derive(Debug, Clone)]
pub struct TinyCausalLm {
    pub(crate) emb: Embedding,
    pub(crate) blocks: Vec<EncoderBlock>,
    /// `None` ties the LM head to the transposed embedding table.
    pub(crate) head: Option<Linear>,
    pub(crate) d: usize,
    vocab: usize,
    max_len: usize,
    /// Memoized compiled programs keyed on (mode, prompt/context
    /// length), with [`SALT_PREFILL`]/[`SALT_DECODE`] separating the two
    /// program families.
    cache: CompileCache,
}

impl TinyCausalLm {
    /// Builds the decoder: embedding → `layers` causal blocks → LM head.
    /// `tied` reuses the transposed embedding table as the head weights
    /// (no bias); untied initializes a separate `[d, vocab]` projection.
    pub fn new(seed: u64, vocab: usize, max_len: usize, layers: usize, tied: bool) -> Self {
        let d = 32;
        let heads = 2;
        let ff = 64;
        let mut rng = Pcg32::seed_from_u64(seed);
        let emb = Embedding::new(&mut rng, vocab, max_len, d);
        let blocks = (0..layers)
            .map(|_| EncoderBlock::new(&mut rng, d, heads, ff))
            .collect();
        let head = if tied {
            None
        } else {
            Some(Linear::new(&mut rng, d, vocab))
        };
        TinyCausalLm {
            emb,
            blocks,
            head,
            d,
            vocab,
            max_len,
            cache: CompileCache::new(),
        }
    }

    /// The model's compile cache (hit/miss counters for tests and
    /// benches).
    pub fn compile_cache(&self) -> &CompileCache {
        &self.cache
    }

    /// Vocabulary size (the LM head's output width).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Longest supported context (positional-table length).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Model width `d` (each cached K/V tensor is `[ctx, d]`).
    pub fn width(&self) -> usize {
        self.d
    }

    /// Number of transformer blocks (the session carries `2 × layers`
    /// cache tensors: K then V per block).
    pub fn layer_count(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the LM head shares the embedding table.
    pub fn is_tied(&self) -> bool {
        self.head.is_none()
    }

    /// Token indices as the `[1, len]` tensor a compiled program's
    /// `Embed`/`EmbedAt` op consumes.
    pub fn ids_tensor(seq: &[usize]) -> Tensor {
        Tensor::from_vec(seq.iter().map(|&i| i as f32).collect(), &[1, seq.len()])
            .expect("length matches")
    }

    /// The LM head applied to a `[m, d]` hidden state (reference path).
    fn head_logits_direct(&self, h: &Tensor) -> Vec<f32> {
        match &self.head {
            Some(l) => l.infer(h).into_vec(),
            None => {
                let wt = self.emb.table.value.transpose().expect("matrix");
                gemm::matmul(h, &wt).expect("shapes agree").into_vec()
            }
        }
    }

    /// Hidden states `[len, d]` of the full sequence under causal
    /// attention — the recompute-from-scratch path.
    fn hidden_direct(&self, seq: &[usize], mode: &InferenceMode) -> Tensor {
        let mut h = boundary_rows(mode, &self.emb.infer(seq));
        for b in &self.blocks {
            h = b.infer_with(&h, mode, &|s| causal_softmax_rows(mode, s), &|t| {
                boundary_rows(mode, t)
            });
        }
        h
    }

    /// Next-token logits after `seq`, recomputing the whole prefix with
    /// no cache — the decode-correctness oracle the compiled KV path is
    /// tested bit-identical against.
    pub fn next_logits_direct(&self, seq: &[usize], mode: &InferenceMode) -> Vec<f32> {
        assert!(!seq.is_empty(), "causal LM needs at least one token");
        let h = self.hidden_direct(seq, mode);
        let (l, d) = h.shape().as_matrix().expect("matrix");
        let last = Tensor::from_vec(h.as_slice()[(l - 1) * d..].to_vec(), &[1, d])
            .expect("length matches");
        self.head_logits_direct(&boundary_rows(mode, &last))
    }

    /// Greedy generation of `n` tokens after `prompt`, recomputing from
    /// scratch at every step (no KV cache) — the reference
    /// [`TinyCausalLm::generate`] must match bit for bit.
    pub fn generate_direct(&self, prompt: &[usize], n: usize, mode: &InferenceMode) -> Vec<usize> {
        assert!(
            prompt.len() + n <= self.max_len,
            "prompt + generation exceeds max_len"
        );
        let mut seq = prompt.to_vec();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let logits = self.next_logits_direct(&seq, mode);
            let next = stats::argmax(&logits).expect("non-empty vocabulary");
            seq.push(next);
            out.push(next);
        }
        out
    }

    /// The compiled prefill program for a `len`-token prompt: causal
    /// attention over the whole prompt, per-layer K/V projections marked
    /// as session outputs, next-token logits as the program output.
    /// Memoized per (mode, len) — see [`TinyCausalLm::compile_cache`].
    pub fn compiled_prefill(&self, mode: &InferenceMode, len: usize) -> Arc<Program> {
        self.cache
            .get_or_compile(mode.eval_mode(), &[len], SALT_PREFILL, || {
                self.prefill_program(mode, len)?
                    .optimize(OptLevel::default())
            })
            .expect("prefill graph compiles")
    }

    /// The compiled one-token decode step at context length `ctx`: K/V
    /// caches enter as session inputs, grow by one row via `ConcatRows`,
    /// and leave as session outputs alongside the next-token logits.
    /// Memoized per (mode, ctx) — see [`TinyCausalLm::compile_cache`].
    pub fn compiled_decode(&self, mode: &InferenceMode, ctx: usize) -> Arc<Program> {
        self.cache
            .get_or_compile(mode.eval_mode(), &[ctx], SALT_DECODE, || {
                self.decode_program(mode, ctx)?
                    .optimize(OptLevel::default())
            })
            .expect("decode graph compiles")
    }

    /// Runs the compiled prefill over `prompt`: returns the next-token
    /// logits and the freshly-built per-layer KV cache (K then V per
    /// block, each `[prompt.len(), d]`).
    pub fn prefill(&self, prompt: &[usize], mode: &InferenceMode) -> (Vec<f32>, Vec<Tensor>) {
        assert!(!prompt.is_empty(), "causal LM needs at least one token");
        let program = self.compiled_prefill(mode, prompt.len());
        let run = crate::compile::run_compiled_full(&program, &[Self::ids_tensor(prompt)], mode);
        (run.output.into_vec(), run.session_outputs)
    }

    /// Runs one compiled decode step: feeds `token` plus the session's
    /// KV tensors, returns the next-token logits and the grown cache
    /// (each tensor one row longer).
    pub fn decode_step(
        &self,
        token: usize,
        kv: &[Tensor],
        mode: &InferenceMode,
    ) -> (Vec<f32>, Vec<Tensor>) {
        assert_eq!(kv.len(), 2 * self.blocks.len(), "K and V per block");
        let ctx = kv[0].dims()[0];
        assert!(ctx < self.max_len, "context exceeds max_len");
        let program = self.compiled_decode(mode, ctx);
        let mut inputs = Vec::with_capacity(1 + kv.len());
        inputs.push(Self::ids_tensor(&[token]));
        inputs.extend(kv.iter().cloned());
        let run = crate::compile::run_compiled_full(&program, &inputs, mode);
        (run.output.into_vec(), run.session_outputs)
    }

    /// Greedy generation of `n` tokens through the compiled KV-cache
    /// path: one prefill over the prompt, then one single-token decode
    /// step per output token. Bit-identical to
    /// [`TinyCausalLm::generate_direct`] (locked by test).
    pub fn generate(&self, prompt: &[usize], n: usize, mode: &InferenceMode) -> Vec<usize> {
        assert!(
            prompt.len() + n <= self.max_len,
            "prompt + generation exceeds max_len"
        );
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let (logits, mut kv) = self.prefill(prompt, mode);
        let mut next = stats::argmax(&logits).expect("non-empty vocabulary");
        out.push(next);
        for _ in 1..n {
            let (logits, grown) = self.decode_step(next, &kv, mode);
            kv = grown;
            next = stats::argmax(&logits).expect("non-empty vocabulary");
            out.push(next);
        }
        out
    }
}

/// Two-layer Kipf–Welling GCN: `softmax(Â · ReLU(Â X W₁) · W₂)`.
#[derive(Debug, Clone)]
pub struct Gcn {
    pub(crate) w1: Param,
    pub(crate) w2: Param,
    hidden: usize,
    /// Memoized compiled programs keyed on (mode, node/feature counts,
    /// Â fingerprint); cleared by [`Gcn::fit`].
    cache: CompileCache,
}

impl Gcn {
    /// Builds the model for `features → hidden → classes`.
    pub fn new(seed: u64, features: usize, hidden: usize, classes: usize) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        Gcn {
            w1: Param::new(rng.randn(&[features, hidden], (2.0 / features as f32).sqrt())),
            w2: Param::new(rng.randn(&[hidden, classes], (2.0 / hidden as f32).sqrt())),
            hidden,
            cache: CompileCache::new(),
        }
    }

    /// The model's compile cache (hit/miss counters for tests and
    /// benches).
    pub fn compile_cache(&self) -> &CompileCache {
        &self.cache
    }

    fn forward_parts(&self, g: &GraphDataset) -> (Tensor, Tensor, Tensor, Tensor) {
        let xw = gemm::matmul(&g.x, &self.w1.value).expect("shapes agree");
        let z1 = gemm::matmul(&g.a_hat, &xw).expect("shapes agree");
        let h1 = z1.map(|v| v.max(0.0));
        let hw = gemm::matmul(&h1, &self.w2.value).expect("shapes agree");
        let z2 = gemm::matmul(&g.a_hat, &hw).expect("shapes agree");
        (z1, h1, z2, xw)
    }

    /// Full-batch training on the train-node mask; returns final loss.
    pub fn fit(&mut self, g: &GraphDataset, cfg: &TrainConfig) -> f32 {
        self.cache.clear();
        let mut last = f32::NAN;
        for t in 1..=cfg.epochs * 10 {
            let (z1, h1, z2, _) = self.forward_parts(g);
            // Masked cross-entropy on training nodes.
            let (n, c) = z2.shape().as_matrix().expect("matrix");
            let probs = onesa_cpwl::ops::softmax_rows_exact(&z2).expect("matrix");
            let mut dz2 = Tensor::zeros(&[n, c]);
            let m = g.train_idx.len() as f32;
            let mut loss = 0.0f32;
            for &i in &g.train_idx {
                let p = probs.as_slice()[i * c + g.y[i]].max(1e-12);
                loss -= p.ln() / m;
                for j in 0..c {
                    dz2.as_mut_slice()[i * c + j] =
                        (probs.as_slice()[i * c + j] - if j == g.y[i] { 1.0 } else { 0.0 }) / m;
                }
            }
            // z2 = Â (h1 W2): dW2 = h1ᵀ Âᵀ dz2 = h1ᵀ (Â dz2) (Â symmetric).
            let adz2 = gemm::matmul(&g.a_hat, &dz2).expect("shapes agree");
            let h1t = h1.transpose().expect("matrix");
            self.w2.grad = gemm::matmul(&h1t, &adz2).expect("shapes agree");
            // dh1 = Â dz2 W2ᵀ.
            let w2t = self.w2.value.transpose().expect("matrix");
            let dh1 = gemm::matmul(&adz2, &w2t).expect("shapes agree");
            let dz1 = dh1
                .zip(&z1, |d, z| if z > 0.0 { d } else { 0.0 })
                .expect("same shape");
            let adz1 = gemm::matmul(&g.a_hat, &dz1).expect("shapes agree");
            let xt = g.x.transpose().expect("matrix");
            self.w1.grad = gemm::matmul(&xt, &adz1).expect("shapes agree");
            self.w1.adam_step(cfg.lr, t);
            self.w2.adam_step(cfg.lr, t);
            self.w1.zero_grad();
            self.w2.zero_grad();
            last = loss;
        }
        last
    }

    /// Node logits under an inference mode: compiles the propagation
    /// graph (`softmax` excluded, as in training) to an
    /// `onesa_plan::Program` and runs it — bit-identical to
    /// [`Gcn::logits_direct`] (locked by test). Compilation is memoized
    /// per (mode, graph shape, Â fingerprint) — see
    /// [`Gcn::compile_cache`].
    pub fn logits(&self, g: &GraphDataset, mode: &InferenceMode) -> Tensor {
        // The propagation matrix Â is baked into the program as a
        // constant, so it is part of the cache key (two graphs with the
        // same shape must not share a compilation).
        let salt = tensor_fingerprint(&g.a_hat);
        let program = self
            .cache
            .get_or_compile(mode.eval_mode(), g.x.dims(), salt, || {
                self.network_program(mode, g)?.optimize(OptLevel::default())
            })
            .expect("GCN graph compiles");
        crate::compile::run_compiled(&program, std::slice::from_ref(&g.x), mode)
    }

    /// Layer-by-layer reference implementation of [`Gcn::logits`].
    pub fn logits_direct(&self, g: &GraphDataset, mode: &InferenceMode) -> Tensor {
        let x = mode.boundary(&g.x);
        let xw = gemm::matmul(&x, &self.w1.value).expect("shapes agree");
        let z1 = mode.boundary(&gemm::matmul(&g.a_hat, &xw).expect("shapes agree"));
        let h1 = mode.relu(&z1);
        let hw = gemm::matmul(&h1, &self.w2.value).expect("shapes agree");
        mode.boundary(&gemm::matmul(&g.a_hat, &hw).expect("shapes agree"))
    }

    /// Test-node accuracy under an inference mode.
    pub fn evaluate(&self, g: &GraphDataset, mode: &InferenceMode) -> f32 {
        let logits = self.logits(g, mode);
        let (_, c) = logits.shape().as_matrix().expect("matrix");
        let mut correct = 0usize;
        for &i in &g.test_idx {
            let row = &logits.as_slice()[i * c..(i + 1) * c];
            if stats::argmax(row) == Some(g.y[i]) {
                correct += 1;
            }
        }
        correct as f32 / g.test_idx.len().max(1) as f32
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_data::Difficulty;

    #[test]
    fn cnn_learns_easy_task() {
        let data = ImageDataset::generate(
            "t",
            1,
            Difficulty {
                noise: 0.3,
                classes: 3,
            },
            (1, 8, 8),
            12,
        );
        let mut model = SmallCnn::new(7, 1, 3);
        let cfg = TrainConfig {
            epochs: 14,
            lr: 5e-3,
            batch_size: 12,
            seed: 7,
        };
        let loss = model.fit(&data, &cfg);
        assert!(loss.is_finite());
        let acc = model.evaluate(&data, &InferenceMode::Exact);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn cnn_cpwl_close_to_exact_at_fine_granularity() {
        let data = ImageDataset::generate(
            "t",
            2,
            Difficulty {
                noise: 0.3,
                classes: 3,
            },
            (1, 8, 8),
            10,
        );
        let mut model = SmallCnn::new(8, 1, 3);
        model.fit(
            &data,
            &TrainConfig {
                epochs: 5,
                lr: 5e-3,
                batch_size: 10,
                seed: 8,
            },
        );
        let exact = model.evaluate(&data, &InferenceMode::Exact);
        let fine = model.evaluate(&data, &InferenceMode::cpwl(0.0625).unwrap());
        assert!((exact - fine).abs() < 0.15, "exact {exact} vs cpwl {fine}");
    }

    #[test]
    fn bert_learns_marker_task() {
        let data = TextDataset::classification("t", 3, Difficulty::easy(2), 32, 12, 24);
        let mut model = TinyBert::new(5, 32, 12, 2, 1);
        let cfg = TrainConfig {
            epochs: 6,
            lr: 2e-3,
            batch_size: 1,
            seed: 5,
        };
        model.fit(&data, &cfg);
        let acc = model.evaluate(&data, &InferenceMode::Exact);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn gcn_learns_communities() {
        let g = GraphDataset::generate("t", 4, Difficulty::easy(3), 45, 8, 0.3);
        let mut model = Gcn::new(6, 8, 16, 3);
        let cfg = TrainConfig {
            epochs: 8,
            lr: 1e-2,
            batch_size: 0,
            seed: 6,
        };
        model.fit(&g, &cfg);
        let acc = model.evaluate(&g, &InferenceMode::Exact);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn compile_cache_hits_on_repeated_calls_and_splits_on_geometry() {
        use onesa_tensor::rng::Pcg32;
        let model = SmallCnn::new(7, 1, 3);
        let mode = InferenceMode::cpwl(0.25).unwrap();
        let mut rng = Pcg32::seed_from_u64(1);
        let x = rng.randn(&[1, 8, 8], 1.0);
        let first = model.logits(&x, &mode);
        assert_eq!(
            (model.compile_cache().hits(), model.compile_cache().misses()),
            (0, 1)
        );
        for _ in 0..3 {
            assert_eq!(model.logits(&x, &mode), first);
        }
        assert_eq!(
            model.compile_cache().hits(),
            3,
            "repeat calls must not recompile"
        );
        // A different geometry compiles its own entry; the old one stays.
        let big = rng.randn(&[1, 10, 10], 1.0);
        let _ = model.logits(&big, &mode);
        assert_eq!(model.compile_cache().misses(), 2);
        // The feature subgraph is a separate entry from the network.
        let _ = model.pooled_features(&x, &mode);
        assert_eq!(model.compile_cache().misses(), 3);
        // Exact mode is another key.
        let _ = model.logits(&x, &InferenceMode::Exact);
        assert_eq!(model.compile_cache().misses(), 4);
    }

    #[test]
    fn fit_invalidates_the_compile_cache() {
        use onesa_tensor::rng::Pcg32;
        let data = ImageDataset::generate(
            "t",
            3,
            Difficulty {
                noise: 0.3,
                classes: 3,
            },
            (1, 8, 8),
            6,
        );
        let mut model = SmallCnn::new(9, 1, 3);
        let mode = InferenceMode::cpwl(0.25).unwrap();
        let x = Pcg32::seed_from_u64(2).randn(&[1, 8, 8], 1.0);
        // Populate the cache with the untrained weights...
        let before = model.logits(&x, &mode);
        // ...then train: the cached program's baked-in weights are stale.
        model.fit(
            &data,
            &TrainConfig {
                epochs: 2,
                lr: 5e-3,
                batch_size: 6,
                seed: 7,
            },
        );
        assert_eq!(model.compile_cache().len(), 0, "fit must clear the cache");
        let after = model.logits(&x, &mode);
        assert_ne!(before, after, "training changed the weights");
        assert_eq!(
            after,
            model.logits_direct(&x, &mode),
            "post-fit cache is fresh"
        );
    }

    #[test]
    fn gcn_cache_distinguishes_graphs_with_equal_shapes() {
        let g1 = GraphDataset::generate("a", 4, Difficulty::easy(3), 20, 6, 0.3);
        let g2 = GraphDataset::generate("b", 5, Difficulty::easy(3), 20, 6, 0.3);
        assert_eq!(g1.x.dims(), g2.x.dims());
        let model = Gcn::new(6, 6, 8, 3);
        let mode = InferenceMode::Exact;
        let l1 = model.logits(&g1, &mode);
        let l2 = model.logits(&g2, &mode);
        // Same shapes, different Â: the salt must keep them apart.
        assert_eq!(model.compile_cache().misses(), 2);
        assert_ne!(l1, l2);
        assert_eq!(l1, model.logits_direct(&g1, &mode));
        assert_eq!(l2, model.logits_direct(&g2, &mode));
    }

    #[test]
    fn gcn_insensitive_to_granularity() {
        // The paper observes GCNs barely degrade under CPWL (ReLU is
        // exact; only quantization noise remains).
        let g = GraphDataset::generate("t", 5, Difficulty::easy(3), 45, 8, 0.3);
        let mut model = Gcn::new(9, 8, 16, 3);
        model.fit(
            &g,
            &TrainConfig {
                epochs: 8,
                lr: 1e-2,
                batch_size: 0,
                seed: 9,
            },
        );
        let exact = model.evaluate(&g, &InferenceMode::Exact);
        let coarse = model.evaluate(&g, &InferenceMode::cpwl(1.0).unwrap());
        assert!(
            (exact - coarse).abs() < 0.1,
            "exact {exact} vs coarse {coarse}"
        );
    }
}
