//! Operation-class accounting (the basis of the paper's Fig 1 pies).
//!
//! Every workload phase is classified as GEMM, elementwise multiply/add,
//! softmax, normalization or activation, with a documented per-element
//! op cost for the non-GEMM classes (an "op" is one multiply or one add,
//! matching how profilers count the nonlinear helpers).

use std::collections::BTreeMap;

/// The operation classes of Fig 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// General matrix multiplication (convolutions count here via
    /// im2col).
    Gemm,
    /// Standalone elementwise multiplies (residual scaling etc.).
    Multiply,
    /// Standalone elementwise adds (residual connections, bias adds).
    Add,
    /// Softmax.
    Softmax,
    /// Batch / layer normalization.
    Norm,
    /// Pointwise activations (ReLU, GELU, …).
    Activation,
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpClass::Gemm => "GEMM",
            OpClass::Multiply => "Multiply",
            OpClass::Add => "Add",
            OpClass::Softmax => "Softmax",
            OpClass::Norm => "Norm",
            OpClass::Activation => "Activation",
        };
        f.write_str(s)
    }
}

/// Per-element op costs of the non-GEMM classes.
///
/// Softmax: exp (4) + sum-share (1) + divide (2) ≈ 7; normalization:
/// mean/var accumulation (3) + normalize (2) + affine (2) ≈ 7 (unfused
/// inference, as a general-purpose profiler sees it); GELU ≈ 8 (erf
/// polynomial); ReLU = 1.
pub fn ops_per_element(class: OpClass, gelu_like: bool) -> u64 {
    match class {
        OpClass::Gemm => 1, // per MAC
        OpClass::Multiply => 1,
        OpClass::Add => 1,
        OpClass::Softmax => 7,
        OpClass::Norm => 7,
        OpClass::Activation => {
            if gelu_like {
                8
            } else {
                1
            }
        }
    }
}

/// An op-count accumulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpCounts {
    counts: BTreeMap<OpClass, u64>,
}

impl OpCounts {
    /// Empty counter.
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Adds `ops` operations of `class`.
    pub fn add(&mut self, class: OpClass, ops: u64) {
        *self.counts.entry(class).or_insert(0) += ops;
    }

    /// Total operations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Operations of one class.
    pub fn of(&self, class: OpClass) -> u64 {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Percentage share of one class (0 for an empty counter).
    pub fn share(&self, class: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.of(class) as f64 / total as f64 * 100.0
        }
    }

    /// Iterates `(class, count)` in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_hundred() {
        let mut c = OpCounts::new();
        c.add(OpClass::Gemm, 720);
        c.add(OpClass::Norm, 215);
        c.add(OpClass::Activation, 46);
        c.add(OpClass::Softmax, 2);
        let total: f64 = [
            OpClass::Gemm,
            OpClass::Norm,
            OpClass::Activation,
            OpClass::Softmax,
        ]
        .iter()
        .map(|&cl| c.share(cl))
        .sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_counter_is_safe() {
        let c = OpCounts::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.share(OpClass::Gemm), 0.0);
    }

    #[test]
    fn per_element_costs() {
        assert_eq!(ops_per_element(OpClass::Activation, false), 1);
        assert_eq!(ops_per_element(OpClass::Activation, true), 8);
        assert!(ops_per_element(OpClass::Softmax, false) > 1);
    }

    #[test]
    fn accumulation() {
        let mut c = OpCounts::new();
        c.add(OpClass::Gemm, 10);
        c.add(OpClass::Gemm, 5);
        assert_eq!(c.of(OpClass::Gemm), 15);
        assert_eq!(c.iter().count(), 1);
    }
}
