//! Property-based tests: the event-driven array is functionally identical
//! to the reference kernels, and the analytic cycle model is consistent.

use onesa_sim::array::SystolicArray;
use onesa_sim::{analytic, ArrayConfig};
use onesa_tensor::rng::Pcg32;
use onesa_tensor::{gemm, Tensor};
use proptest::prelude::*;

fn tensor(seed: u64, dims: &[usize], std: f32) -> Tensor {
    Pcg32::seed_from_u64(seed).randn(dims, std)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Event-driven GEMM equals the reference for arbitrary shapes that
    /// need multiple tiles and partial edge tiles.
    #[test]
    fn full_gemm_equals_reference(
        seed in 0u64..1000,
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        d in 2usize..5, t in 1usize..6,
    ) {
        let cfg = ArrayConfig::new(d, t);
        let mut arr = SystolicArray::new(cfg);
        let a = tensor(seed, &[m, k], 1.0);
        let b = tensor(seed + 1, &[k, n], 1.0);
        let run = arr.gemm_full(&a, &b).unwrap();
        let reference = gemm::matmul(&a, &b).unwrap();
        for (x, y) in run.output.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
        prop_assert_eq!(run.macs, (m * k * n) as u64);
    }

    /// Event-driven MHP equals the reference elementwise op.
    #[test]
    fn full_mhp_equals_reference(
        seed in 0u64..1000,
        m in 1usize..14, n in 1usize..14,
        d in 2usize..5, t in 1usize..8,
    ) {
        let cfg = ArrayConfig::new(d, t);
        let mut arr = SystolicArray::new(cfg);
        let x = tensor(seed, &[m, n], 2.0);
        let k = tensor(seed + 1, &[m, n], 1.0);
        let b = tensor(seed + 2, &[m, n], 1.0);
        let run = arr.mhp_full(&x, &k, &b).unwrap();
        let reference = gemm::mhp(&x, &k, &b).unwrap();
        for (a, r) in run.output.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((a - r).abs() < 1e-4, "{} vs {}", a, r);
        }
        prop_assert_eq!(run.macs, 2 * (m * n) as u64);
    }

    /// Analytic GEMM cycles are monotone in every problem dimension.
    #[test]
    fn gemm_cycles_monotone(
        m in 1usize..64, k in 1usize..64, n in 1usize..64,
    ) {
        let cfg = ArrayConfig::default();
        let base = analytic::gemm_breakdown(&cfg, m, k, n).total();
        prop_assert!(analytic::gemm_breakdown(&cfg, m + 8, k, n).total() >= base);
        prop_assert!(analytic::gemm_breakdown(&cfg, m, k + 8, n).total() >= base);
        prop_assert!(analytic::gemm_breakdown(&cfg, m, k, n + 8).total() >= base);
    }

    /// More MACs never hurt nonlinear throughput; for matrices large
    /// relative to the array, more PEs never hurt GEMM throughput.
    /// (For *small* matrices more PEs can hurt — that is the paper's
    /// throughput cliff, asserted separately below.)
    #[test]
    fn scaling_never_hurts(dims in 8usize..128, big_dims in 64usize..256) {
        let small = ArrayConfig::new(4, 4);
        let more_macs = ArrayConfig::new(4, 8);
        let more_pes = ArrayConfig::new(8, 4);
        prop_assert!(
            analytic::nonlinear_stats(&more_macs, dims, dims).cycles()
                <= analytic::nonlinear_stats(&small, dims, dims).cycles()
        );
        prop_assert!(
            analytic::gemm_stats(&more_pes, big_dims, big_dims, big_dims).cycles()
                <= analytic::gemm_stats(&small, big_dims, big_dims, big_dims).cycles()
        );
    }

    /// The throughput cliff: on a tiny matrix, a much larger array is
    /// *not* faster (drain of the D×D tile through the fixed-width output
    /// FIFO dominates).
    #[test]
    fn small_matrices_hit_the_cliff(dims in 4usize..12) {
        let small = ArrayConfig::new(4, 4);
        let huge = ArrayConfig::new(16, 4);
        prop_assert!(
            analytic::gemm_stats(&huge, dims, dims, dims).cycles()
                >= analytic::gemm_stats(&small, dims, dims, dims).cycles()
        );
    }

    /// Throughput never exceeds the configured peak.
    #[test]
    fn never_exceeds_peak(dims in 4usize..256, d in 2usize..6, logt in 0u32..5) {
        let cfg = ArrayConfig::new(d, 1 << logt);
        let g = analytic::gemm_stats(&cfg, dims, dims, dims);
        prop_assert!(g.gops() <= cfg.peak_gops() * (1.0 + 1e-9));
        let nl = analytic::nonlinear_stats(&cfg, dims, dims);
        prop_assert!(nl.gnfs() <= cfg.peak_gnfs() * (1.0 + 1e-9));
    }
}
