//! DRAM channel model and per-schedule traffic accounting.
//!
//! The simulator treats DRAM as a bandwidth roofline (a fixed number of
//! INT16 elements per cycle) plus a fixed access latency; schedules
//! compare their compute-side cycle count against the traffic-side cycle
//! count and charge the difference as [`stall`](DramModel::stall_cycles).

use crate::ArrayConfig;

/// A bandwidth/latency DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Sustained bandwidth in INT16 elements per array cycle.
    pub elems_per_cycle: usize,
    /// First-access latency in cycles.
    pub latency_cycles: u64,
}

impl DramModel {
    /// Builds the model from an array configuration.
    pub fn from_config(cfg: &ArrayConfig) -> Self {
        DramModel {
            elems_per_cycle: cfg.w_dram.max(1),
            latency_cycles: 40,
        }
    }

    /// Cycles to move `elems` elements (one direction), including the
    /// initial latency.
    pub fn transfer_cycles(&self, elems: u64) -> u64 {
        if elems == 0 {
            return 0;
        }
        self.latency_cycles + elems.div_ceil(self.elems_per_cycle as u64)
    }

    /// Stall cycles a schedule must add so that its total runtime covers
    /// the DRAM traffic: `max(0, transfer - overlapped_cycles)`.
    pub fn stall_cycles(&self, traffic_elems: u64, overlapped_cycles: u64) -> u64 {
        self.transfer_cycles(traffic_elems)
            .saturating_sub(overlapped_cycles)
    }
}

/// DRAM traffic of a tiled GEMM (in INT16 elements): `A`, `B` read once,
/// `C` written once — ideal inter-tile reuse, with operand stripes
/// streamed through the L3 buffers (the high-performance design of the
/// paper's reference \[6\] that ONE-SA's auxiliary circuitry follows).
pub fn gemm_traffic_elems(_cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> u64 {
    (m as u64 * k as u64) + (k as u64 * n as u64) + (m as u64 * n as u64)
}

/// DRAM traffic of a nonlinear (IPF + MHP) pass over `e` elements.
///
/// With [`crate::ParamStaging::Fused`], the pass runs on activations that
/// are already resident between the producing and consuming GEMMs (their
/// movement is charged to those GEMMs), so the pass itself adds no DRAM
/// traffic. With [`crate::ParamStaging::Dram`] the literal §IV-A flow is
/// modelled: `X` read (e), `K`/`B` written then re-read (4e), `X` re-read
/// for the MHP (e) and `Y` written (e) — `7e` total.
pub fn nonlinear_traffic_elems(cfg: &ArrayConfig, e: u64) -> u64 {
    match cfg.staging {
        crate::ParamStaging::Fused => 0,
        crate::ParamStaging::Dram => 7 * e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamStaging;

    #[test]
    fn transfer_includes_latency() {
        let d = DramModel {
            elems_per_cycle: 32,
            latency_cycles: 40,
        };
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(1), 41);
        assert_eq!(d.transfer_cycles(64), 42);
        assert_eq!(d.transfer_cycles(65), 43);
    }

    #[test]
    fn stall_is_saturating() {
        let d = DramModel {
            elems_per_cycle: 32,
            latency_cycles: 0,
        };
        assert_eq!(d.stall_cycles(3200, 50), 50);
        assert_eq!(d.stall_cycles(3200, 1000), 0);
    }

    #[test]
    fn gemm_traffic_reads_each_operand_once() {
        let cfg = ArrayConfig::new(8, 16);
        let t = gemm_traffic_elems(&cfg, 16, 32, 8);
        assert_eq!(t, 16 * 32 + 32 * 8 + 16 * 8);
    }

    #[test]
    fn staging_changes_nonlinear_traffic() {
        let mut cfg = ArrayConfig::default();
        assert_eq!(nonlinear_traffic_elems(&cfg, 100), 0);
        cfg.staging = ParamStaging::Dram;
        assert_eq!(nonlinear_traffic_elems(&cfg, 100), 700);
    }
}
