//! Array configuration: grid geometry, MAC vector width, clock, bus
//! widths and the buffer hierarchy of the paper's Table V.

/// Where CPWL intermediate parameters are staged between IPF and MHP.
///
/// The paper's §IV-A writes `K`/`B` to DRAM "like the conventional output
/// C" and reads them back for the MHP. Modelled faithfully that round
/// trip caps nonlinear throughput at the DRAM bandwidth, which
/// contradicts the scaling the paper's own Fig 8(b) reports; the
/// reproduction therefore defaults to [`ParamStaging::Fused`], where the
/// replicated k/b tables feed the MHP directly from L3 (see DESIGN.md,
/// "reproduction notes"). [`ParamStaging::Dram`] keeps the literal
/// behaviour for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParamStaging {
    /// IPF output is consumed by the MHP through on-chip buffers; the IPF
    /// lookup pipeline overlaps the MHP pass completely.
    #[default]
    Fused,
    /// IPF output round-trips through DRAM exactly as §IV-A describes.
    Dram,
}

/// Capacities of the buffer hierarchy, in bytes per instance
/// (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSizes {
    /// One L3 buffer (three instances: input, weight, output).
    pub l3_bytes: usize,
    /// One L2 buffer (three rows of `dim` instances).
    pub l2_bytes: usize,
    /// One PE output buffer (`dim²` instances).
    pub pe_out_bytes: usize,
    /// One L1 buffer (`dim²` instances).
    pub l1_bytes: usize,
}

impl BufferSizes {
    /// The paper's Table V sizes (reported for the 8×8, 16-MAC design).
    pub fn paper_default() -> Self {
        BufferSizes {
            l3_bytes: 287,    // 0.28 KB
            l2_bytes: 512,    // 0.5 KB
            pe_out_bytes: 96, // 0.094 KB
            l1_bytes: 32,     // 0.031 KB
        }
    }

    /// Total on-chip buffer bytes for a `dim × dim` array.
    pub fn total_bytes(&self, dim: usize) -> usize {
        3 * self.l3_bytes
            + 3 * dim * self.l2_bytes
            + dim * dim * (self.pe_out_bytes + self.l1_bytes)
    }
}

impl Default for BufferSizes {
    fn default() -> Self {
        BufferSizes::paper_default()
    }
}

/// Full configuration of one ONE-SA instance.
///
/// The default reproduces the paper's headline design point: 8×8 PEs
/// (64), 16 MACs per PE, 200 MHz, Table V buffers.
///
/// # Example
///
/// ```
/// use onesa_sim::ArrayConfig;
///
/// let cfg = ArrayConfig::new(16, 16); // 16×16 PEs à 16 MACs
/// assert_eq!(cfg.pe_count(), 256);
/// assert_eq!(cfg.peak_macs_per_cycle(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayConfig {
    /// Array dimension `D` (the grid is `D × D`).
    pub dim: usize,
    /// MAC units per PE (`T`).
    pub macs_per_pe: usize,
    /// Clock frequency in MHz (the paper's HLS designs close timing at
    /// 200 MHz on Virtex-7).
    pub clock_mhz: f64,
    /// Output-FIFO width toward DRAM, in INT16 elements per cycle
    /// (default 4 = a 64-bit bus).
    pub w_out_fifo: usize,
    /// DRAM channel width in elements per cycle (default 32 = 64-byte
    /// interface, DDR3-class at 200 MHz).
    pub w_dram: usize,
    /// Pipeline latency of the L3 data-addressing path
    /// (shift → scale → lookup), in cycles.
    pub ipf_pipeline_latency: usize,
    /// Parameter staging policy between IPF and MHP.
    pub staging: ParamStaging,
    /// Buffer capacities (Table V).
    pub buffers: BufferSizes,
}

impl ArrayConfig {
    /// Creates a configuration with the given grid dimension and MACs per
    /// PE, keeping every other knob at the paper defaults.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `macs_per_pe` is zero.
    pub fn new(dim: usize, macs_per_pe: usize) -> Self {
        assert!(dim > 0, "array dimension must be positive");
        assert!(macs_per_pe > 0, "MAC count must be positive");
        ArrayConfig {
            dim,
            macs_per_pe,
            clock_mhz: 200.0,
            w_out_fifo: 4,
            w_dram: 32,
            ipf_pipeline_latency: 8,
            staging: ParamStaging::Fused,
            buffers: BufferSizes::paper_default(),
        }
    }

    /// Number of PEs (`D²`).
    pub fn pe_count(&self) -> usize {
        self.dim * self.dim
    }

    /// Peak MAC throughput per cycle (`D² · T`).
    pub fn peak_macs_per_cycle(&self) -> usize {
        self.pe_count() * self.macs_per_pe
    }

    /// Peak GOPS (one op = one multiply-accumulate, per the paper's
    /// definition).
    pub fn peak_gops(&self) -> f64 {
        self.peak_macs_per_cycle() as f64 * self.clock_mhz * 1e6 / 1e9
    }

    /// Elements each diagonal PE consumes per cycle during MHP: every
    /// element needs two MACs (`x·k` and `1·b`), so `T/2` (min 1).
    pub fn mhp_elems_per_pe_per_cycle(&self) -> usize {
        (self.macs_per_pe / 2).max(1)
    }

    /// Peak nonlinear evaluations per second (diagonal PEs only).
    pub fn peak_gnfs(&self) -> f64 {
        (self.dim * self.mhp_elems_per_pe_per_cycle()) as f64 * self.clock_mhz * 1e6 / 1e9
    }

    /// Seconds per clock cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.clock_mhz * 1e6)
    }
}

impl Default for ArrayConfig {
    /// The paper's evaluation design point: 64 PEs, 16 MACs each.
    fn default() -> Self {
        ArrayConfig::new(8, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let cfg = ArrayConfig::default();
        assert_eq!(cfg.dim, 8);
        assert_eq!(cfg.macs_per_pe, 16);
        assert_eq!(cfg.pe_count(), 64);
        assert_eq!(cfg.clock_mhz, 200.0);
    }

    #[test]
    fn peak_rates() {
        let cfg = ArrayConfig::new(16, 16);
        assert_eq!(cfg.peak_macs_per_cycle(), 4096);
        assert!((cfg.peak_gops() - 819.2).abs() < 0.1);
        assert_eq!(cfg.mhp_elems_per_pe_per_cycle(), 8);
        assert!((cfg.peak_gnfs() - 16.0 * 8.0 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn small_mac_counts_clamp_mhp_rate() {
        let cfg = ArrayConfig::new(4, 1);
        assert_eq!(cfg.mhp_elems_per_pe_per_cycle(), 1);
    }

    #[test]
    fn buffer_totals() {
        let b = BufferSizes::paper_default();
        // 8×8: 3 L3 + 24 L2 + 64 PE-out + 64 L1 (Table V).
        let total = b.total_bytes(8);
        let expect = 3 * 287 + 24 * 512 + 64 * (96 + 32);
        assert_eq!(total, expect);
    }

    #[test]
    #[should_panic]
    fn zero_dim_panics() {
        let _ = ArrayConfig::new(0, 16);
    }

    #[test]
    #[should_panic]
    fn zero_macs_panics() {
        let _ = ArrayConfig::new(8, 0);
    }
}
