//! FIFO models for the L3 data-addressing path (paper Fig 5: the C
//! FIFO in front of the shift module, the k FIFO and the Reg FIFO
//! behind the parameter buffers) and the array-edge input/output FIFOs
//! of Fig 4.
//!
//! These are occupancy/backpressure models: they carry real values,
//! track high-water marks and refuse pushes when full, so schedules can
//! assert that the paper's buffer sizes (Table V) are actually
//! sufficient for the dataflows.

/// A bounded FIFO with occupancy statistics.
///
/// # Example
///
/// ```
/// use onesa_sim::fifo::Fifo;
///
/// let mut f: Fifo<i16> = Fifo::new("k", 4);
/// assert!(f.push(7).is_ok());
/// assert_eq!(f.pop(), Some(7));
/// assert_eq!(f.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    name: &'static str,
    capacity: usize,
    items: std::collections::VecDeque<T>,
    high_water: usize,
    total_pushes: u64,
    rejected_pushes: u64,
}

/// Error returned when pushing into a full FIFO (the value is handed
/// back so the producer can retry — hardware backpressure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoFull<T>(pub T);

impl<T> std::fmt::Display for FifoFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("fifo is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for FifoFull<T> {}

impl<T> Fifo<T> {
    /// Creates a FIFO with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Fifo {
            name,
            capacity,
            items: std::collections::VecDeque::with_capacity(capacity),
            high_water: 0,
            total_pushes: 0,
            rejected_pushes: 0,
        }
    }

    /// The FIFO's name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is full (producer must stall).
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Pushes an entry.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] with the rejected value when at capacity.
    pub fn push(&mut self, value: T) -> Result<(), FifoFull<T>> {
        if self.is_full() {
            self.rejected_pushes += 1;
            return Err(FifoFull(value));
        }
        self.items.push_back(value);
        self.total_pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Pops the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Accepted pushes.
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Rejected (backpressured) pushes.
    pub fn rejected_pushes(&self) -> u64 {
        self.rejected_pushes
    }
}

/// The FIFO complement of the L3 data-addressing module (Fig 5), sized
/// in INT16 entries from the Table V L3 budget.
#[derive(Debug, Clone)]
pub struct AddressingFifos {
    /// Output matrix stream in front of the shift module.
    pub c_fifo: Fifo<i16>,
    /// Slope stream behind the k buffer.
    pub k_fifo: Fifo<i16>,
    /// Intercept stream behind the b buffer (the figure's "Reg FIFO").
    pub reg_fifo: Fifo<i16>,
}

impl AddressingFifos {
    /// Builds the three FIFOs with `depth` entries each.
    pub fn new(depth: usize) -> Self {
        AddressingFifos {
            c_fifo: Fifo::new("C", depth),
            k_fifo: Fifo::new("k", depth),
            reg_fifo: Fifo::new("Reg", depth),
        }
    }

    /// Streams one already-addressed element through: the input value
    /// drains from the C FIFO while its looked-up `(k, b)` pair enters
    /// the parameter FIFOs.
    ///
    /// # Errors
    ///
    /// Propagates backpressure from either parameter FIFO.
    pub fn advance(&mut self, k: i16, b: i16) -> Result<(), FifoFull<i16>> {
        let _ = self.c_fifo.pop();
        self.k_fifo.push(k)?;
        self.reg_fifo.push(b)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let mut f: Fifo<u32> = Fifo::new("t", 2);
        assert!(f.push(1).is_ok());
        assert!(f.push(2).is_ok());
        assert_eq!(f.push(3), Err(FifoFull(3)));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
        assert_eq!(f.rejected_pushes(), 1);
        assert_eq!(f.total_pushes(), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f: Fifo<u32> = Fifo::new("t", 8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        for _ in 0..5 {
            f.pop();
        }
        assert_eq!(f.high_water(), 5);
        assert!(f.is_empty());
    }

    #[test]
    fn addressing_fifos_stream_pairs() {
        let mut a = AddressingFifos::new(16);
        for i in 0..10 {
            a.c_fifo.push(i).unwrap();
        }
        for i in 0..10 {
            a.advance(i, -i).unwrap();
        }
        assert_eq!(a.k_fifo.len(), 10);
        assert_eq!(a.reg_fifo.len(), 10);
        assert!(a.c_fifo.is_empty());
        assert_eq!(a.k_fifo.pop(), Some(0));
        assert_eq!(a.reg_fifo.pop(), Some(0));
        assert_eq!(a.k_fifo.pop(), Some(1));
        assert_eq!(a.reg_fifo.pop(), Some(-1));
    }

    #[test]
    fn table5_l3_budget_fits_one_tile_of_parameters() {
        // 0.28 KB L3 ≈ 143 INT16 entries; one 8×8 tile's k stream (64
        // entries) fits with double-buffering headroom.
        let depth = 287 / 2 / 2; // bytes → entries, halved for k/b split
        let mut a = AddressingFifos::new(depth);
        for i in 0..64 {
            a.c_fifo.push(i).unwrap();
        }
        for i in 0..64 {
            assert!(a.advance(i, i).is_ok(), "entry {i}");
        }
        assert!(a.k_fifo.high_water() <= depth);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new("t", 0);
    }
}
