//! Cycle-level simulator of the ONE-SA systolic array.
//!
//! The simulator models the microarchitecture of the paper's §III–IV:
//!
//! * a `D × D` grid of processing elements, each with a `T`-wide MAC
//!   vector and a multi-layer accumulator ([`pe`]);
//! * the three-level buffer hierarchy and the DRAM channel ([`config`],
//!   [`dram`]);
//! * the L3 data-addressing and data-rearrange modules that implement
//!   Intermediate Parameter Fetching ([`ipf`]);
//! * the GEMM dataflow (output-stationary, `T`-wide K streaming) and the
//!   MHP dataflow (diagonal computation PEs, off-diagonal transmission
//!   PEs) — both event-driven ([`mod@array`]) and in closed form
//!   ([`analytic`]).
//!
//! The event-driven paths compute *real values* while counting cycles, so
//! every schedule is checked for functional equality against the
//! reference kernels in `onesa-tensor`; the closed forms are checked for
//! cycle equality against the event-driven paths.
//!
//! # Example
//!
//! ```
//! use onesa_sim::{ArrayConfig, analytic};
//!
//! let cfg = ArrayConfig::default(); // 8×8 PEs, 16 MACs each — the paper's design point
//! let stats = analytic::gemm_stats(&cfg, 128, 128, 128);
//! assert!(stats.gops() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod array;
pub mod config;
pub mod dram;
pub mod fifo;
pub mod ipf;
pub mod pe;
pub mod stats;

pub use config::{ArrayConfig, BufferSizes, ParamStaging};
pub use stats::{CycleBreakdown, ExecStats};
