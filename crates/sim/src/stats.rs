//! Cycle accounting and derived throughput metrics.

use crate::ArrayConfig;

/// Cycle counts broken down by pipeline phase.
///
/// `skew` counts wavefront fill cycles, `compute` the cycles in which at
/// least one PE performs MACs, `drain` the cycles spent moving results
/// out after computation, `ipf` the non-overlapped cycles of the L3
/// addressing path and `dram_stall` any roofline stall imposed by the
/// DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// Wavefront fill (input skew) cycles.
    pub skew: u64,
    /// Cycles with active MACs.
    pub compute: u64,
    /// Result-transmission cycles after compute.
    pub drain: u64,
    /// Non-overlapped Intermediate Parameter Fetching cycles.
    pub ipf: u64,
    /// Stall cycles added to respect the DRAM bandwidth roofline.
    pub dram_stall: u64,
}

impl CycleBreakdown {
    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        self.skew + self.compute + self.drain + self.ipf + self.dram_stall
    }

    /// Fraction of cycles spent transmitting results (the paper's
    /// "throughput cliff" metric: 84.8 % for a 32×32 input on 16×16 PEs).
    pub fn drain_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.drain as f64 / self.total() as f64
        }
    }

    /// Sums two breakdowns phase by phase.
    pub fn merged(&self, other: &CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            skew: self.skew + other.skew,
            compute: self.compute + other.compute,
            drain: self.drain + other.drain,
            ipf: self.ipf + other.ipf,
            dram_stall: self.dram_stall + other.dram_stall,
        }
    }
}

/// Execution statistics of one schedule on one array configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecStats {
    /// Phase breakdown.
    pub breakdown: CycleBreakdown,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Nonlinear function evaluations performed (0 for pure GEMM).
    pub nonlinear_evals: u64,
    /// Clock frequency used for time conversion (MHz).
    pub clock_mhz: f64,
}

impl ExecStats {
    /// Builds stats from a breakdown and op counts under `cfg`'s clock.
    pub fn new(cfg: &ArrayConfig, breakdown: CycleBreakdown, macs: u64, nl: u64) -> Self {
        ExecStats {
            breakdown,
            macs,
            nonlinear_evals: nl,
            clock_mhz: cfg.clock_mhz,
        }
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.breakdown.total()
    }

    /// Wall-clock seconds at the configured frequency.
    pub fn seconds(&self) -> f64 {
        self.cycles() as f64 / (self.clock_mhz * 1e6)
    }

    /// Giga-operations per second; one op is one multiply-accumulate
    /// (the paper: "each operation encompasses an addition and a
    /// multiplication").
    pub fn gops(&self) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            self.macs as f64 / self.seconds() / 1e9
        }
    }

    /// Giga nonlinear function evaluations per second (the paper's GNFS).
    pub fn gnfs(&self) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            self.nonlinear_evals as f64 / self.seconds() / 1e9
        }
    }

    /// MAC-utilization against the array peak.
    pub fn utilization(&self, cfg: &ArrayConfig) -> f64 {
        if self.cycles() == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles() as f64 * cfg.peak_macs_per_cycle() as f64)
    }

    /// Merges sequential stages (cycles and op counts add).
    pub fn merged(&self, other: &ExecStats) -> ExecStats {
        ExecStats {
            breakdown: self.breakdown.merged(&other.breakdown),
            macs: self.macs + other.macs,
            nonlinear_evals: self.nonlinear_evals + other.nonlinear_evals,
            clock_mhz: self.clock_mhz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(skew: u64, compute: u64, drain: u64) -> CycleBreakdown {
        CycleBreakdown {
            skew,
            compute,
            drain,
            ipf: 0,
            dram_stall: 0,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let b = bd(10, 30, 60);
        assert_eq!(b.total(), 100);
        assert!((b.drain_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(CycleBreakdown::default().drain_fraction(), 0.0);
    }

    #[test]
    fn merged_adds_phases() {
        let a = bd(1, 2, 3);
        let b = bd(10, 20, 30);
        let m = a.merged(&b);
        assert_eq!(m.skew, 11);
        assert_eq!(m.compute, 22);
        assert_eq!(m.drain, 33);
    }

    #[test]
    fn gops_math() {
        let cfg = ArrayConfig::default(); // 200 MHz
        let stats = ExecStats::new(&cfg, bd(0, 1000, 0), 1_000_000, 0);
        // 1e6 MACs in 1000 cycles at 200MHz = 1e6 / 5e-6 s = 2e11 ops/s.
        assert!((stats.gops() - 200.0).abs() < 1e-9);
        assert!((stats.seconds() - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn utilization_peaks_at_one() {
        let cfg = ArrayConfig::new(8, 16);
        let macs = 1000 * cfg.peak_macs_per_cycle() as u64;
        let stats = ExecStats::new(&cfg, bd(0, 1000, 0), macs, 0);
        assert!((stats.utilization(&cfg) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_stats_accumulate() {
        let cfg = ArrayConfig::default();
        let a = ExecStats::new(&cfg, bd(1, 2, 3), 100, 5);
        let b = ExecStats::new(&cfg, bd(4, 5, 6), 200, 10);
        let m = a.merged(&b);
        assert_eq!(m.cycles(), 21);
        assert_eq!(m.macs, 300);
        assert_eq!(m.nonlinear_evals, 15);
    }
}
