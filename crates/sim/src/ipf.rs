//! The L3-buffer modules that implement Intermediate Parameter Fetching
//! (paper Fig 5) and the data-rearrange stage (paper Fig 6).
//!
//! The addressing pipeline is: data **shift** (segment index by right
//! shift when the granularity is a power of two), **scale** (cap the
//! index into the preloaded range), **lookup** in the `k`/`b` buffers,
//! then out through the `k`/`Reg` FIFOs. The rearrange stage packs each
//! `k` with its `b` into one stream and each `x` with the constant `1`
//! into the other, because the array has only two input channels.

use crate::stats::CycleBreakdown;
use crate::{ArrayConfig, ParamStaging};
use onesa_cpwl::{IpfOutput, PwlTable};
use onesa_tensor::Tensor;

/// Event-level model of the L3 data-addressing module.
///
/// Functionally it produces exactly [`PwlTable::ipf`]; its value is the
/// cycle accounting and the FIFO/occupancy bookkeeping.
#[derive(Debug)]
pub struct L3Addressing<'t> {
    table: &'t PwlTable,
    /// Parallel lookup lanes. The k/b tables are tiny (a few hundred
    /// bytes), so ONE-SA replicates them across lanes — this is where
    /// most of the module's extra LUTs go (Table I: 4.87× the LUTs of a
    /// plain L3).
    lanes: usize,
    /// Pipeline latency: shift → scale → lookup → FIFO.
    latency: u64,
    capped_lookups: u64,
    total_lookups: u64,
}

impl<'t> L3Addressing<'t> {
    /// Builds the module for a table under an array configuration. The
    /// lane count matches the MHP consumption rate (`D` diagonal PEs ×
    /// `T/2` elements each) so the lookup pipeline never starves the
    /// array.
    pub fn new(cfg: &ArrayConfig, table: &'t PwlTable) -> Self {
        L3Addressing {
            table,
            lanes: (cfg.dim * cfg.mhp_elems_per_pe_per_cycle()).max(1),
            latency: cfg.ipf_pipeline_latency as u64,
            capped_lookups: 0,
            total_lookups: 0,
        }
    }

    /// Lookup lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Fraction of lookups that hit the cap (scale module interventions).
    pub fn capped_fraction(&self) -> f64 {
        if self.total_lookups == 0 {
            0.0
        } else {
            self.capped_lookups as f64 / self.total_lookups as f64
        }
    }

    /// Streams a tensor through the addressing pipeline, producing the
    /// segment matrix and the `K`/`B` parameter matrices plus the cycle
    /// cost of the pass.
    pub fn process(&mut self, x: &Tensor) -> (IpfOutput, CycleBreakdown) {
        let out = self.table.ipf(x);
        let n = self.table.n_segments() as i64;
        for &v in x.iter() {
            let raw = self.table.raw_segment_index(v);
            if raw < 0 || raw >= n {
                self.capped_lookups += 1;
            }
            self.total_lookups += 1;
        }
        let cycles = self.latency + (x.len() as u64).div_ceil(self.lanes as u64);
        (
            out,
            CycleBreakdown {
                ipf: cycles,
                ..CycleBreakdown::default()
            },
        )
    }
}

/// The data-rearrange module: packs parameter and input streams for the
/// two physical input channels (paper Fig 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct DataRearrange;

impl DataRearrange {
    /// Merges `k` and `b` rows into a single `(k, b)` stream.
    pub fn merge_kb(k: &[f32], b: &[f32]) -> Vec<(f32, f32)> {
        k.iter().zip(b.iter()).map(|(&kv, &bv)| (kv, bv)).collect()
    }

    /// Pairs every `x` with the constant `1` so the PE's two-MAC dot
    /// product computes `k·x + b·1`.
    pub fn pair_x(x: &[f32]) -> Vec<(f32, f32)> {
        x.iter().map(|&v| (v, 1.0)).collect()
    }
}

/// Cycle cost of staging IPF parameters for the following MHP, depending
/// on the staging policy: fused staging only pays the pipeline latency
/// (the lanes keep up with the array); DRAM staging serializes a full
/// write + read-back of `K` and `B` (4·E elements) through the DRAM
/// channel, exactly as §IV-A describes.
pub fn staging_cycles(cfg: &ArrayConfig, elems: u64) -> u64 {
    match cfg.staging {
        ParamStaging::Fused => 0,
        ParamStaging::Dram => {
            let dram = crate::dram::DramModel::from_config(cfg);
            dram.transfer_cycles(2 * elems) + dram.transfer_cycles(2 * elems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_cpwl::NonlinearFn;

    fn table() -> PwlTable {
        PwlTable::builder(NonlinearFn::Gelu)
            .granularity(0.25)
            .build()
            .unwrap()
    }

    #[test]
    fn process_matches_table_ipf() {
        let cfg = ArrayConfig::default();
        let t = table();
        let mut addr = L3Addressing::new(&cfg, &t);
        let x = Tensor::from_vec(vec![-9.0, -1.0, 0.5, 9.0], &[2, 2]).unwrap();
        let (out, cycles) = addr.process(&x);
        assert_eq!(out, t.ipf(&x));
        assert!(cycles.ipf >= cfg.ipf_pipeline_latency as u64);
        // Two of four inputs were outside the range.
        assert!((addr.capped_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lanes_match_mhp_consumption() {
        let cfg = ArrayConfig::new(16, 16);
        let t = table();
        let addr = L3Addressing::new(&cfg, &t);
        assert_eq!(addr.lanes(), 16 * 8);
    }

    #[test]
    fn cycle_cost_scales_with_elements() {
        let cfg = ArrayConfig::new(4, 4); // lanes = 8
        let t = table();
        let mut addr = L3Addressing::new(&cfg, &t);
        let x = Tensor::zeros(&[16, 16]); // 256 elements
        let (_, cycles) = addr.process(&x);
        assert_eq!(cycles.ipf, cfg.ipf_pipeline_latency as u64 + 256 / 8);
    }

    #[test]
    fn rearrange_streams() {
        let k = [1.0, 2.0];
        let b = [0.5, -0.5];
        assert_eq!(
            DataRearrange::merge_kb(&k, &b),
            vec![(1.0, 0.5), (2.0, -0.5)]
        );
        assert_eq!(
            DataRearrange::pair_x(&[3.0, 4.0]),
            vec![(3.0, 1.0), (4.0, 1.0)]
        );
    }

    #[test]
    fn staging_cost_fused_vs_dram() {
        let mut cfg = ArrayConfig::default();
        assert_eq!(staging_cycles(&cfg, 1024), 0);
        cfg.staging = ParamStaging::Dram;
        let cost = staging_cycles(&cfg, 1024);
        assert!(cost >= 2 * 2048 / cfg.w_dram as u64);
    }
}
