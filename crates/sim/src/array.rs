//! Event-driven (per-cycle) execution of GEMM tiles and MHP row-tiles on
//! the PE grid.
//!
//! These paths move real values through explicit PE registers so that the
//! dataflow itself is validated: the GEMM tile result must equal the
//! reference `matmul`, the MHP row-tile result must equal the reference
//! `X ⊙ K + B`. Cycle counts from these loops anchor the closed forms in
//! [`crate::analytic`] (tested for exact equality).

use crate::pe::{Chunk, PairChunk, Pe, PeMode};
use crate::stats::CycleBreakdown;
use crate::ArrayConfig;
use onesa_tensor::{Result, Tensor, TensorError};

/// The PE grid plus its configuration.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    cfg: ArrayConfig,
    grid: Vec<Pe>,
}

/// Result of running one tile on the event-driven array.
#[derive(Debug, Clone)]
pub struct TileRun {
    /// The computed tile.
    pub output: Tensor,
    /// Cycle accounting for this tile.
    pub breakdown: CycleBreakdown,
    /// MACs performed.
    pub macs: u64,
}

impl SystolicArray {
    /// Builds an array in GEMM mode.
    pub fn new(cfg: ArrayConfig) -> Self {
        let grid = vec![Pe::new(PeMode::Gemm); cfg.dim * cfg.dim];
        SystolicArray { cfg, grid }
    }

    /// The configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// Total MACs performed by all PEs since construction.
    pub fn total_macs(&self) -> u64 {
        self.grid.iter().map(Pe::macs).sum()
    }

    fn reconfigure(&mut self, f: impl Fn(usize, usize) -> PeMode) {
        let d = self.cfg.dim;
        for i in 0..d {
            for j in 0..d {
                self.grid[i * d + j].set_mode(f(i, j));
            }
        }
    }

    /// Runs one output-stationary GEMM tile: `A (D×K) · B (K×N_t)` with
    /// `N_t ≤ D`. Feeds skewed `T`-wide K-chunks, accumulates in the PEs,
    /// then drains the accumulators through the per-column chains and the
    /// output FIFO.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `a`/`b` are not matrices with matching
    /// inner dimension or exceed the grid.
    pub fn gemm_tile(&mut self, a: &Tensor, b: &Tensor) -> Result<TileRun> {
        let d = self.cfg.dim;
        let t = self.cfg.macs_per_pe;
        let (m, k) = a.shape().as_matrix()?;
        let (k2, n) = b.shape().as_matrix()?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: a.dims().to_vec(),
                rhs: b.dims().to_vec(),
                op: "gemm_tile",
            });
        }
        if m > d || n > d {
            return Err(TensorError::IndexOutOfBounds {
                index: m.max(n),
                bound: d,
            });
        }
        self.reconfigure(|_, _| PeMode::Gemm);
        for pe in &mut self.grid {
            pe.clear_acc();
        }

        let chunks = k.div_ceil(t);
        let feed_cycles = chunks + 2 * (d - 1);
        let mut macs = 0u64;

        let chunk_of_a = |row: usize, c: usize| -> Chunk {
            let lo = c * t;
            let hi = ((c + 1) * t).min(k);
            a.row(row).expect("row bound checked")[lo..hi].to_vec()
        };
        let chunk_of_b = |col: usize, c: usize| -> Chunk {
            let lo = c * t;
            let hi = ((c + 1) * t).min(k);
            (lo..hi)
                .map(|p| b.at(&[p, col]).expect("bounds checked"))
                .collect()
        };

        for cycle in 0..feed_cycles {
            // Wires are combinational within a cycle: iterating in raster
            // order guarantees west/north neighbours have already stepped,
            // so their register outputs (latched last cycle) are on the
            // wires when this PE latches — one cycle per hop.
            let mut east: Vec<Option<Chunk>> = vec![None; d * d];
            let mut south: Vec<Option<Chunk>> = vec![None; d * d];
            for i in 0..d {
                for j in 0..d {
                    let a_in = if j == 0 {
                        // Row i's stream is skewed by i cycles.
                        if i <= cycle && cycle - i < chunks && i < m {
                            Some(chunk_of_a(i, cycle - i))
                        } else {
                            None
                        }
                    } else {
                        east[i * d + (j - 1)].take()
                    };
                    let b_in = if i == 0 {
                        if j <= cycle && cycle - j < chunks && j < n {
                            Some(chunk_of_b(j, cycle - j))
                        } else {
                            None
                        }
                    } else {
                        south[(i - 1) * d + j].take()
                    };
                    let (e, s, done) = self.grid[i * d + j].step_gemm(a_in, b_in);
                    east[i * d + j] = e;
                    south[i * d + j] = s;
                    macs += done;
                }
            }
        }

        // Drain: accumulators shift down each column (1 element per
        // column per cycle → D cycles), then leave through the output
        // FIFO at `w_out_fifo` elements per cycle.
        let mut output = Tensor::zeros(&[m.max(1), n.max(1)]);
        for i in 0..m {
            for j in 0..n {
                output.set(&[i, j], self.grid[i * d + j].acc())?;
            }
        }
        let col_drain = d as u64;
        let fifo_drain = ((d * d) as u64).div_ceil(self.cfg.w_out_fifo as u64);

        Ok(TileRun {
            output,
            breakdown: CycleBreakdown {
                skew: 2 * (d as u64 - 1),
                compute: chunks as u64,
                drain: col_drain + fifo_drain,
                ipf: 0,
                dram_stall: 0,
            },
            macs,
        })
    }

    /// Runs one MHP row-tile: up to `D` rows of `X`, `K`, `B` (all
    /// `R × N`). Row `i` is routed through transmission PEs to diagonal
    /// PE `(i, i)` as an `(x, 1)` pair stream from the west and a
    /// `(k, b)` pair stream from the north; results travel south through
    /// the transmission PEs below the diagonal.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the operands disagree or have more than
    /// `D` rows.
    pub fn mhp_row_tile(&mut self, x: &Tensor, km: &Tensor, bm: &Tensor) -> Result<TileRun> {
        let d = self.cfg.dim;
        let lanes = self.cfg.mhp_elems_per_pe_per_cycle();
        let (r, n) = x.shape().as_matrix()?;
        if x.shape() != km.shape() || x.shape() != bm.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: x.dims().to_vec(),
                rhs: km.dims().to_vec(),
                op: "mhp_row_tile",
            });
        }
        if r > d {
            return Err(TensorError::IndexOutOfBounds { index: r, bound: d });
        }
        self.reconfigure(|i, j| {
            if i == j {
                PeMode::MhpCompute
            } else {
                PeMode::MhpTransmit
            }
        });

        let chunks = n.div_ceil(lanes);
        // Last chunk enters row r−1 at cycle `chunks-1`, reaches diagonal
        // PE (r−1, r−1) after r−1 hops, and its result exits the south
        // edge after d−r more hops plus the emit cycle: chunks + d total.
        let cycles = chunks + d;
        let mut macs = 0u64;

        let mut collected: Vec<Vec<f32>> = vec![Vec::new(); d];

        let x_chunk = |row: usize, c: usize| -> PairChunk {
            let lo = c * lanes;
            let hi = ((c + 1) * lanes).min(n);
            x.row(row).expect("bounds checked")[lo..hi]
                .iter()
                .map(|&v| (v, 1.0))
                .collect()
        };
        let kb_chunk = |row: usize, c: usize| -> PairChunk {
            let lo = c * lanes;
            let hi = ((c + 1) * lanes).min(n);
            km.row(row).expect("bounds checked")[lo..hi]
                .iter()
                .zip(&bm.row(row).expect("bounds checked")[lo..hi])
                .map(|(&kv, &bv)| (kv, bv))
                .collect()
        };

        for cycle in 0..cycles {
            // Same-cycle combinational wires (see `gemm_tile`).
            let mut x_wire: Vec<Option<PairChunk>> = vec![None; d * d];
            let mut kb_wire: Vec<Option<PairChunk>> = vec![None; d * d];
            let mut y_wire: Vec<Option<Chunk>> = vec![None; d * d];
            for i in 0..d {
                for j in 0..d {
                    let x_in = if j == 0 {
                        if cycle < chunks && i < r {
                            Some(x_chunk(i, cycle))
                        } else {
                            None
                        }
                    } else {
                        x_wire[i * d + (j - 1)].take()
                    };
                    let kb_in = if i == 0 {
                        if cycle < chunks && j < r {
                            Some(kb_chunk(j, cycle))
                        } else {
                            None
                        }
                    } else {
                        kb_wire[(i - 1) * d + j].take()
                    };
                    let y_in = if i == 0 {
                        None
                    } else {
                        y_wire[(i - 1) * d + j].take()
                    };
                    let (xe, kbs, ys, done) = self.grid[i * d + j].step_mhp(x_in, kb_in, y_in);
                    x_wire[i * d + j] = xe;
                    kb_wire[i * d + j] = kbs;
                    if i == d - 1 {
                        if let Some(y) = ys {
                            collected[j].extend_from_slice(&y);
                        }
                    } else {
                        y_wire[i * d + j] = ys;
                    }
                    macs += done;
                }
            }
        }

        let mut output = Tensor::zeros(&[r.max(1), n.max(1)]);
        for (col, vals) in collected.iter().enumerate().take(r) {
            debug_assert_eq!(vals.len(), n, "column {col} drained {} of {n}", vals.len());
            for (jj, &v) in vals.iter().enumerate() {
                output.set(&[col, jj], v)?;
            }
        }

        Ok(TileRun {
            output,
            breakdown: CycleBreakdown {
                skew: 0,
                compute: chunks as u64,
                drain: d as u64,
                ipf: 0,
                dram_stall: 0,
            },
            macs,
        })
    }

    /// Functionally executes a full GEMM by tiling through the
    /// event-driven path (slow; used by the validation tests). Cycle
    /// accounting is the per-tile sum — the pipelined closed form lives
    /// in [`crate::analytic`].
    ///
    /// # Errors
    ///
    /// Shape errors as in [`onesa_tensor::gemm::matmul`].
    pub fn gemm_full(&mut self, a: &Tensor, b: &Tensor) -> Result<TileRun> {
        let d = self.cfg.dim;
        let (m, k) = a.shape().as_matrix()?;
        let (k2, n) = b.shape().as_matrix()?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: a.dims().to_vec(),
                rhs: b.dims().to_vec(),
                op: "gemm_full",
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let mut breakdown = CycleBreakdown::default();
        let mut macs = 0u64;
        let mut r0 = 0;
        while r0 < m {
            let h = d.min(m - r0);
            let mut c0 = 0;
            while c0 < n {
                let w = d.min(n - c0);
                let a_tile = a.tile_padded(r0, 0, h, k)?;
                let b_tile = b.tile_padded(0, c0, k, w)?;
                let run = self.gemm_tile(&a_tile, &b_tile)?;
                out.tile_write(r0, c0, &run.output)?;
                breakdown = breakdown.merged(&run.breakdown);
                macs += run.macs;
                c0 += d;
            }
            r0 += d;
        }
        Ok(TileRun {
            output: out,
            breakdown,
            macs,
        })
    }

    /// Functionally executes a full MHP by row-tiling through the
    /// event-driven path (slow; used by the validation tests).
    ///
    /// # Errors
    ///
    /// Shape errors as in [`onesa_tensor::gemm::mhp`].
    pub fn mhp_full(&mut self, x: &Tensor, km: &Tensor, bm: &Tensor) -> Result<TileRun> {
        let d = self.cfg.dim;
        let (m, n) = x.shape().as_matrix()?;
        let mut out = Tensor::zeros(&[m, n]);
        let mut breakdown = CycleBreakdown::default();
        let mut macs = 0u64;
        let mut r0 = 0;
        while r0 < m {
            let h = d.min(m - r0);
            let xt = x.tile_padded(r0, 0, h, n)?;
            let kt = km.tile_padded(r0, 0, h, n)?;
            let bt = bm.tile_padded(r0, 0, h, n)?;
            let run = self.mhp_row_tile(&xt, &kt, &bt)?;
            out.tile_write(r0, 0, &run.output)?;
            breakdown = breakdown.merged(&run.breakdown);
            macs += run.macs;
            r0 += d;
        }
        Ok(TileRun {
            output: out,
            breakdown,
            macs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_tensor::gemm;
    use onesa_tensor::rng::Pcg32;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_tile_matches_reference() {
        let cfg = ArrayConfig::new(4, 4);
        let mut arr = SystolicArray::new(cfg);
        let mut rng = Pcg32::seed_from_u64(1);
        let a = rng.randn(&[4, 10], 1.0);
        let b = rng.randn(&[10, 4], 1.0);
        let run = arr.gemm_tile(&a, &b).unwrap();
        assert_close(&run.output, &gemm::matmul(&a, &b).unwrap(), 1e-4);
        assert_eq!(run.macs, 4 * 4 * 10);
    }

    #[test]
    fn gemm_tile_partial_dims() {
        let cfg = ArrayConfig::new(4, 2);
        let mut arr = SystolicArray::new(cfg);
        let mut rng = Pcg32::seed_from_u64(2);
        let a = rng.randn(&[3, 5], 1.0);
        let b = rng.randn(&[5, 2], 1.0);
        let run = arr.gemm_tile(&a, &b).unwrap();
        assert_close(&run.output, &gemm::matmul(&a, &b).unwrap(), 1e-4);
    }

    #[test]
    fn gemm_tile_cycle_model() {
        let cfg = ArrayConfig::new(4, 4); // w_out_fifo = 4
        let mut arr = SystolicArray::new(cfg);
        let a = Tensor::ones(&[4, 8]);
        let b = Tensor::ones(&[8, 4]);
        let run = arr.gemm_tile(&a, &b).unwrap();
        // chunks = 2, skew = 6, col drain = 4, fifo = 16/4 = 4.
        assert_eq!(run.breakdown.skew, 6);
        assert_eq!(run.breakdown.compute, 2);
        assert_eq!(run.breakdown.drain, 8);
    }

    #[test]
    fn gemm_full_matches_reference() {
        let cfg = ArrayConfig::new(4, 4);
        let mut arr = SystolicArray::new(cfg);
        let mut rng = Pcg32::seed_from_u64(3);
        let a = rng.randn(&[9, 7], 1.0);
        let b = rng.randn(&[7, 10], 1.0);
        let run = arr.gemm_full(&a, &b).unwrap();
        assert_close(&run.output, &gemm::matmul(&a, &b).unwrap(), 1e-4);
    }

    #[test]
    fn mhp_row_tile_matches_reference() {
        let cfg = ArrayConfig::new(4, 8);
        let mut arr = SystolicArray::new(cfg);
        let mut rng = Pcg32::seed_from_u64(4);
        let x = rng.randn(&[4, 13], 1.0);
        let k = rng.randn(&[4, 13], 1.0);
        let b = rng.randn(&[4, 13], 1.0);
        let run = arr.mhp_row_tile(&x, &k, &b).unwrap();
        assert_close(&run.output, &gemm::mhp(&x, &k, &b).unwrap(), 1e-5);
        // Two MACs per element, only diagonal PEs count.
        assert_eq!(run.macs, 2 * 4 * 13);
    }

    #[test]
    fn mhp_cycle_model() {
        let cfg = ArrayConfig::new(4, 8); // lanes = 4
        let mut arr = SystolicArray::new(cfg);
        let x = Tensor::ones(&[4, 16]);
        let k = Tensor::ones(&[4, 16]);
        let b = Tensor::ones(&[4, 16]);
        let run = arr.mhp_row_tile(&x, &k, &b).unwrap();
        // chunks = 16/4 = 4; drain = D = 4.
        assert_eq!(run.breakdown.compute, 4);
        assert_eq!(run.breakdown.drain, 4);
        assert_eq!(run.breakdown.skew, 0);
    }

    #[test]
    fn mhp_full_matches_reference() {
        let cfg = ArrayConfig::new(4, 4);
        let mut arr = SystolicArray::new(cfg);
        let mut rng = Pcg32::seed_from_u64(5);
        let x = rng.randn(&[11, 6], 2.0);
        let k = rng.randn(&[11, 6], 1.0);
        let b = rng.randn(&[11, 6], 1.0);
        let run = arr.mhp_full(&x, &k, &b).unwrap();
        assert_close(&run.output, &gemm::mhp(&x, &k, &b).unwrap(), 1e-5);
    }

    #[test]
    fn mhp_with_single_mac_pe() {
        // T = 1 → one pair lane (elements processed one at a time).
        let cfg = ArrayConfig::new(3, 1);
        let mut arr = SystolicArray::new(cfg);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let k = Tensor::from_vec(vec![2.0, 2.0, 2.0], &[1, 3]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 1.0, -1.0], &[1, 3]).unwrap();
        let run = arr.mhp_row_tile(&x, &k, &b).unwrap();
        assert_eq!(run.output.as_slice(), &[2.0, 5.0, 5.0]);
    }

    #[test]
    fn shape_validation() {
        let cfg = ArrayConfig::new(4, 4);
        let mut arr = SystolicArray::new(cfg);
        let a = Tensor::zeros(&[5, 4]); // too many rows for the grid
        let b = Tensor::zeros(&[4, 4]);
        assert!(arr.gemm_tile(&a, &b).is_err());
        let a = Tensor::zeros(&[4, 3]);
        assert!(arr.gemm_tile(&a, &b).is_err()); // inner mismatch
        let x = Tensor::zeros(&[4, 4]);
        let k = Tensor::zeros(&[4, 5]);
        assert!(arr.mhp_row_tile(&x, &k, &x).is_err());
    }

    #[test]
    fn mac_counters_accumulate_across_runs() {
        let cfg = ArrayConfig::new(2, 2);
        let mut arr = SystolicArray::new(cfg);
        let a = Tensor::ones(&[2, 4]);
        let b = Tensor::ones(&[4, 2]);
        arr.gemm_tile(&a, &b).unwrap();
        arr.gemm_tile(&a, &b).unwrap();
        assert_eq!(arr.total_macs(), 2 * (2 * 2 * 4));
    }
}
