//! The processing element (paper Fig 7).
//!
//! A PE owns a `T`-wide MAC vector, a multi-layer accumulator and an
//! output buffer, plus the two control logics `C1`/`C2` that the ONE-SA
//! modification adds:
//!
//! * **GEMM mode** — `C1` and `C2` both active: the PE latches the
//!   incoming `A`/`B` chunks, forwards the previous ones to its east and
//!   south neighbours (one-cycle hop), and accumulates a `T`-wide dot
//!   product into the accumulator (output-stationary).
//! * **MHP compute mode** (diagonal PEs) — `C1` off, `C2` on: incoming
//!   `(x, 1)` and `(k, b)` pair chunks are consumed *locally*
//!   (`y = k·x + 1·b`, two MACs per element) and the result is emitted
//!   into the southbound result lane; nothing is forwarded.
//! * **MHP transmission mode** (off-diagonal PEs) — `C1` on, `C2` off:
//!   the PE is a pure register stage for all three lanes.

/// Operating mode of a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeMode {
    /// Conventional systolic GEMM (C1 + C2 active).
    #[default]
    Gemm,
    /// Diagonal computation PE during MHP (C1 off, C2 on).
    MhpCompute,
    /// Off-diagonal transmission PE during MHP (C1 on, C2 off).
    MhpTransmit,
}

impl PeMode {
    /// State of control logic C1 (forwarding path).
    pub fn c1(&self) -> bool {
        matches!(self, PeMode::Gemm | PeMode::MhpTransmit)
    }

    /// State of control logic C2 (local compute path).
    pub fn c2(&self) -> bool {
        matches!(self, PeMode::Gemm | PeMode::MhpCompute)
    }
}

/// A `T`-wide data chunk travelling through the array.
pub type Chunk = Vec<f32>;

/// A chunk of operand pairs for MHP: `(x, 1)` on the input lane or
/// `(k, b)` on the weight lane.
pub type PairChunk = Vec<(f32, f32)>;

/// One processing element.
#[derive(Debug, Clone, Default)]
pub struct Pe {
    mode: PeMode,
    // GEMM lanes.
    a_reg: Option<Chunk>,
    b_reg: Option<Chunk>,
    acc: f32,
    // MHP lanes.
    x_reg: Option<PairChunk>,
    kb_reg: Option<PairChunk>,
    y_reg: Option<Chunk>,
    /// MACs performed since the last reset (for utilization accounting).
    macs: u64,
}

impl Pe {
    /// Creates a PE in the given mode.
    pub fn new(mode: PeMode) -> Self {
        Pe {
            mode,
            ..Pe::default()
        }
    }

    /// Current mode.
    pub fn mode(&self) -> PeMode {
        self.mode
    }

    /// Reconfigures the PE (flushes all lane registers).
    pub fn set_mode(&mut self, mode: PeMode) {
        *self = Pe {
            mode,
            acc: self.acc,
            macs: self.macs,
            ..Pe::default()
        };
    }

    /// Accumulator value (the output-stationary `C` element).
    pub fn acc(&self) -> f32 {
        self.acc
    }

    /// Clears the accumulator before a new output tile.
    pub fn clear_acc(&mut self) {
        self.acc = 0.0;
    }

    /// Total MACs performed.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// GEMM-mode cycle: returns the chunks forwarded to the east and
    /// south neighbours (the previously latched ones), latches the new
    /// inputs and accumulates their dot product.
    ///
    /// Returns `(east, south, macs_this_cycle)`.
    pub fn step_gemm(
        &mut self,
        a_in: Option<Chunk>,
        b_in: Option<Chunk>,
    ) -> (Option<Chunk>, Option<Chunk>, u64) {
        debug_assert_eq!(self.mode, PeMode::Gemm);
        let east = self.a_reg.take();
        let south = self.b_reg.take();
        self.a_reg = a_in;
        self.b_reg = b_in;
        let mut done = 0u64;
        if let (Some(a), Some(b)) = (&self.a_reg, &self.b_reg) {
            debug_assert_eq!(a.len(), b.len(), "chunk widths must agree");
            let mut dot = 0.0f32;
            for (x, y) in a.iter().zip(b.iter()) {
                dot += x * y;
            }
            self.acc += dot;
            done = a.len() as u64;
            self.macs += done;
        }
        (east, south, done)
    }

    /// MHP-mode cycle. `x_in` arrives from the west carrying `(x, 1)`
    /// pairs, `kb_in` from the north carrying `(k, b)` pairs, `y_in` from
    /// the north on the southbound result lane.
    ///
    /// Returns `(x_east, kb_south, y_south, macs_this_cycle)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if called on a PE in [`PeMode::Gemm`].
    pub fn step_mhp(
        &mut self,
        x_in: Option<PairChunk>,
        kb_in: Option<PairChunk>,
        y_in: Option<Chunk>,
    ) -> (Option<PairChunk>, Option<PairChunk>, Option<Chunk>, u64) {
        debug_assert_ne!(self.mode, PeMode::Gemm, "PE not configured for MHP");
        match self.mode {
            PeMode::MhpTransmit => {
                // Pure register stage on all three lanes.
                let x_east = self.x_reg.take();
                let kb_south = self.kb_reg.take();
                let y_south = self.y_reg.take();
                self.x_reg = x_in;
                self.kb_reg = kb_in;
                self.y_reg = y_in;
                (x_east, kb_south, y_south, 0)
            }
            PeMode::MhpCompute => {
                // Consume locally; emit the result on the southbound lane.
                let y_south = self.y_reg.take();
                self.x_reg = x_in;
                self.kb_reg = kb_in;
                let mut done = 0u64;
                if let (Some(xs), Some(kbs)) = (self.x_reg.take(), self.kb_reg.take()) {
                    debug_assert_eq!(xs.len(), kbs.len());
                    let y: Chunk = xs
                        .iter()
                        .zip(kbs.iter())
                        .map(|(&(x, one), &(k, b))| k * x + b * one)
                        .collect();
                    done = 2 * y.len() as u64;
                    self.macs += done;
                    self.y_reg = Some(y);
                }
                // y_in must not collide: only the diagonal emits per column.
                debug_assert!(y_in.is_none(), "result-lane collision at a compute PE");
                (None, None, y_south, done)
            }
            PeMode::Gemm => unreachable!("guarded by debug_assert"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_logic_matches_paper_table() {
        assert!(PeMode::Gemm.c1() && PeMode::Gemm.c2());
        assert!(!PeMode::MhpCompute.c1() && PeMode::MhpCompute.c2());
        assert!(PeMode::MhpTransmit.c1() && !PeMode::MhpTransmit.c2());
    }

    #[test]
    fn gemm_step_forwards_with_one_cycle_delay() {
        let mut pe = Pe::new(PeMode::Gemm);
        let (e0, s0, _) = pe.step_gemm(Some(vec![1.0, 2.0]), Some(vec![3.0, 4.0]));
        assert!(e0.is_none() && s0.is_none());
        let (e1, s1, _) = pe.step_gemm(None, None);
        assert_eq!(e1, Some(vec![1.0, 2.0]));
        assert_eq!(s1, Some(vec![3.0, 4.0]));
    }

    #[test]
    fn gemm_accumulates_dot_products() {
        let mut pe = Pe::new(PeMode::Gemm);
        pe.step_gemm(Some(vec![1.0, 2.0]), Some(vec![3.0, 4.0])); // 11
        pe.step_gemm(Some(vec![0.5]), Some(vec![2.0])); // 1
        assert_eq!(pe.acc(), 12.0);
        assert_eq!(pe.macs(), 3);
        pe.clear_acc();
        assert_eq!(pe.acc(), 0.0);
    }

    #[test]
    fn transmit_pe_is_register_stage() {
        let mut pe = Pe::new(PeMode::MhpTransmit);
        let x = vec![(1.0, 1.0)];
        let kb = vec![(2.0, 0.5)];
        let y = vec![9.0];
        let (xo, kbo, yo, m) = pe.step_mhp(Some(x.clone()), Some(kb.clone()), Some(y.clone()));
        assert!(xo.is_none() && kbo.is_none() && yo.is_none());
        assert_eq!(m, 0);
        let (xo, kbo, yo, _) = pe.step_mhp(None, None, None);
        assert_eq!(xo, Some(x));
        assert_eq!(kbo, Some(kb));
        assert_eq!(yo, Some(y));
    }

    #[test]
    fn compute_pe_evaluates_mhp() {
        let mut pe = Pe::new(PeMode::MhpCompute);
        let x = vec![(2.0, 1.0), (3.0, 1.0)];
        let kb = vec![(0.5, 1.0), (2.0, -1.0)];
        let (_, _, y0, m) = pe.step_mhp(Some(x), Some(kb), None);
        assert!(y0.is_none(), "result appears after one cycle");
        assert_eq!(m, 4); // two elements × two MACs
        let (_, _, y1, _) = pe.step_mhp(None, None, None);
        assert_eq!(y1, Some(vec![2.0, 5.0])); // 0.5·2+1, 2·3−1
    }

    #[test]
    fn compute_pe_does_not_forward_operands() {
        let mut pe = Pe::new(PeMode::MhpCompute);
        pe.step_mhp(Some(vec![(1.0, 1.0)]), Some(vec![(1.0, 0.0)]), None);
        let (xo, kbo, _, _) = pe.step_mhp(None, None, None);
        assert!(xo.is_none() && kbo.is_none());
    }

    #[test]
    fn set_mode_flushes_lanes() {
        let mut pe = Pe::new(PeMode::Gemm);
        pe.step_gemm(Some(vec![1.0]), Some(vec![1.0]));
        pe.set_mode(PeMode::MhpTransmit);
        let (xo, kbo, yo, _) = pe.step_mhp(None, None, None);
        assert!(xo.is_none() && kbo.is_none() && yo.is_none());
        assert_eq!(pe.acc(), 1.0, "accumulator survives reconfiguration");
    }
}
