//! Closed-form cycle models of the GEMM, MHP and nonlinear schedules.
//!
//! The single-tile formulas equal the event-driven loops in
//! [`crate::array`] exactly (tested); the multi-tile forms add the
//! steady-state pipelining the hardware gets from double-buffered PE
//! output buffers: while tile *i* drains through the output FIFO, tile
//! *i+1* streams and computes, so the per-tile cost in the middle of a
//! long run is `max(compute, fifo_drain)`.

use crate::dram::{self, DramModel};
use crate::stats::{CycleBreakdown, ExecStats};
use crate::ArrayConfig;

/// Cycle breakdown of a tiled `M×K×N` GEMM.
///
/// Model: initial wavefront skew `2(D−1)`, per-tile compute
/// `⌈K/T⌉`, cross-tile steady state `max(⌈K/T⌉, ⌈D²/W_out⌉)`, final
/// column drain `D` plus FIFO flush, and a DRAM roofline stall if the
/// traffic outruns the schedule.
pub fn gemm_breakdown(cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> CycleBreakdown {
    let d = cfg.dim as u64;
    let chunks = (k as u64).div_ceil(cfg.macs_per_pe as u64);
    let tiles = (m as u64).div_ceil(d) * (n as u64).div_ceil(d);
    let fifo = (d * d).div_ceil(cfg.w_out_fifo as u64);
    let steady = chunks.max(fifo);
    let skew = 2 * (d - 1);
    let compute = tiles * chunks;
    // Drain cycles not hidden behind compute: the steady-state excess on
    // the middle tiles plus the full drain of the last tile.
    let drain = (tiles - 1) * (steady - chunks) + d + fifo;
    let mut breakdown = CycleBreakdown {
        skew,
        compute,
        drain,
        ipf: 0,
        dram_stall: 0,
    };
    let dram_model = DramModel::from_config(cfg);
    let traffic = dram::gemm_traffic_elems(cfg, m, k, n);
    breakdown.dram_stall = dram_model.stall_cycles(traffic, breakdown.total());
    breakdown
}

/// Execution statistics of a tiled GEMM (MAC count `M·K·N`).
pub fn gemm_stats(cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> ExecStats {
    let macs = m as u64 * k as u64 * n as u64;
    ExecStats::new(cfg, gemm_breakdown(cfg, m, k, n), macs, 0)
}

/// Cycle breakdown of an `M×N` Matrix Hadamard Product
/// (`Y = X ⊙ K + B`), excluding parameter fetching.
///
/// Row-tiles of `D` rows stream back to back; each costs
/// `⌈N / (T/2)⌉` cycles on the diagonal PEs, and the southbound result
/// lane adds a `D`-cycle tail once at the end.
pub fn mhp_breakdown(cfg: &ArrayConfig, m: usize, n: usize) -> CycleBreakdown {
    let d = cfg.dim as u64;
    let lanes = cfg.mhp_elems_per_pe_per_cycle() as u64;
    let row_tiles = (m as u64).div_ceil(d);
    let pass = (n as u64).div_ceil(lanes);
    CycleBreakdown {
        skew: 0,
        compute: row_tiles * pass,
        drain: d,
        ipf: 0,
        dram_stall: 0,
    }
}

/// Cycle breakdown of a full nonlinear pass over an `M×N` tensor:
/// IPF (pipelined against the MHP; only the pipeline latency and any
/// staging cost are exposed) plus the MHP itself plus the DRAM roofline.
pub fn nonlinear_breakdown(cfg: &ArrayConfig, m: usize, n: usize) -> CycleBreakdown {
    let e = m as u64 * n as u64;
    let mut breakdown = mhp_breakdown(cfg, m, n);
    breakdown.ipf = cfg.ipf_pipeline_latency as u64 + crate::ipf::staging_cycles(cfg, e);
    let dram_model = DramModel::from_config(cfg);
    let traffic = dram::nonlinear_traffic_elems(cfg, e);
    breakdown.dram_stall = dram_model.stall_cycles(traffic, breakdown.total());
    breakdown
}

/// Execution statistics of a nonlinear pass: `E = M·N` function
/// evaluations, two MACs each.
pub fn nonlinear_stats(cfg: &ArrayConfig, m: usize, n: usize) -> ExecStats {
    let e = m as u64 * n as u64;
    ExecStats::new(cfg, nonlinear_breakdown(cfg, m, n), 2 * e, e)
}

/// Execution statistics of a bare `M×N` MHP pass (no parameter fetch):
/// the scale/center/affine steps of the composite lowerings, two MACs
/// per element (`y = x⊙k + b`).
pub fn mhp_pass_stats(cfg: &ArrayConfig, m: usize, n: usize) -> ExecStats {
    let e = (m * n) as u64;
    ExecStats::new(cfg, mhp_breakdown(cfg, m, n), 2 * e, 0)
}

/// Execution statistics of the paper's row-wise softmax lowering over an
/// `M×N` matrix: `exp` (IPF + MHP) + row-sum GEMM + reciprocal (IPF +
/// MHP on the row vector) + scale MHP.
pub fn softmax_stats(cfg: &ArrayConfig, m: usize, n: usize) -> ExecStats {
    let exp = nonlinear_stats(cfg, m, n);
    let rowsum = gemm_stats(cfg, m, n, 1);
    let recip = nonlinear_stats(cfg, m, 1);
    let scale = mhp_pass_stats(cfg, m, n);
    exp.merged(&rowsum).merged(&recip).merged(&scale)
}

/// Execution statistics of the paper's row-wise normalization lowering
/// over an `M×N` matrix: mean GEMM + center MHP + square MHP + variance
/// GEMM + rsqrt (IPF + MHP) + affine MHP.
pub fn norm_stats(cfg: &ArrayConfig, m: usize, n: usize) -> ExecStats {
    let mean = gemm_stats(cfg, m, n, 1);
    let center = mhp_pass_stats(cfg, m, n);
    let square = mhp_pass_stats(cfg, m, n);
    let var = gemm_stats(cfg, m, n, 1);
    let rsqrt = nonlinear_stats(cfg, m, 1);
    let affine = mhp_pass_stats(cfg, m, n);
    mean.merged(&center)
        .merged(&square)
        .merged(&var)
        .merged(&rsqrt)
        .merged(&affine)
}

/// GOPS of a square `dims³` GEMM — the quantity plotted in Fig 8(a).
pub fn linear_gops(cfg: &ArrayConfig, dims: usize) -> f64 {
    gemm_stats(cfg, dims, dims, dims).gops()
}

/// GNFS of a `dims²` nonlinear pass — the quantity plotted in Fig 8(b).
pub fn nonlinear_gnfs(cfg: &ArrayConfig, dims: usize) -> f64 {
    nonlinear_stats(cfg, dims, dims).gnfs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::SystolicArray;
    use crate::ParamStaging;
    use onesa_tensor::rng::Pcg32;

    #[test]
    fn single_tile_matches_event_sim() {
        for (d, t, k) in [(4usize, 4usize, 8usize), (4, 2, 7), (8, 16, 32), (3, 1, 5)] {
            let cfg = ArrayConfig::new(d, t);
            let mut arr = SystolicArray::new(cfg.clone());
            let mut rng = Pcg32::seed_from_u64(1);
            let a = rng.randn(&[d, k], 1.0);
            let b = rng.randn(&[k, d], 1.0);
            let run = arr.gemm_tile(&a, &b).unwrap();
            let analytic = gemm_breakdown(&cfg, d, k, d);
            assert_eq!(run.breakdown.skew, analytic.skew, "d={d} t={t} k={k}");
            assert_eq!(run.breakdown.compute, analytic.compute);
            assert_eq!(run.breakdown.drain, analytic.drain);
        }
    }

    #[test]
    fn single_row_tile_mhp_matches_event_sim() {
        for (d, t, n) in [(4usize, 8usize, 16usize), (4, 4, 13), (8, 2, 9), (2, 1, 3)] {
            let cfg = ArrayConfig::new(d, t);
            let mut arr = SystolicArray::new(cfg.clone());
            let mut rng = Pcg32::seed_from_u64(2);
            let x = rng.randn(&[d, n], 1.0);
            let k = rng.randn(&[d, n], 1.0);
            let b = rng.randn(&[d, n], 1.0);
            let run = arr.mhp_row_tile(&x, &k, &b).unwrap();
            let analytic = mhp_breakdown(&cfg, d, n);
            assert_eq!(run.breakdown.compute, analytic.compute, "d={d} t={t} n={n}");
            assert_eq!(run.breakdown.drain, analytic.drain);
        }
    }

    #[test]
    fn throughput_cliff_small_matrix_on_large_array() {
        // The paper: a 32×32 input on 16×16 PEs spends ~84.8 % of cycles
        // transmitting results. Our model lands in the same regime.
        let cfg = ArrayConfig::new(16, 16);
        let b = gemm_breakdown(&cfg, 32, 32, 32);
        let f = b.drain_fraction();
        assert!(
            (0.70..0.95).contains(&f),
            "drain fraction {f} out of the cliff regime; breakdown {b:?}"
        );
    }

    #[test]
    fn large_matrices_approach_peak() {
        let cfg = ArrayConfig::new(8, 16);
        let stats = gemm_stats(&cfg, 512, 512, 512);
        let util = stats.utilization(&cfg);
        assert!(util > 0.7, "utilization {util}");
        assert!(stats.gops() <= cfg.peak_gops());
    }

    #[test]
    fn gops_monotone_in_dims() {
        let cfg = ArrayConfig::new(8, 16);
        let g32 = linear_gops(&cfg, 32);
        let g128 = linear_gops(&cfg, 128);
        let g512 = linear_gops(&cfg, 512);
        assert!(g32 < g128 && g128 < g512, "{g32} {g128} {g512}");
    }

    #[test]
    fn gnfs_scales_with_macs_and_pes() {
        let big = ArrayConfig::new(16, 16);
        let fewer_macs = ArrayConfig::new(16, 4);
        let fewer_pes = ArrayConfig::new(4, 16);
        let n = 512;
        let g = nonlinear_gnfs(&big, n);
        assert!(g > nonlinear_gnfs(&fewer_macs, n), "MAC scaling");
        assert!(g > nonlinear_gnfs(&fewer_pes, n), "PE scaling");
        assert!(g <= big.peak_gnfs() + 1e-9);
    }

    #[test]
    fn dram_staging_slows_nonlinear() {
        let fused = ArrayConfig::default();
        let dram = ArrayConfig {
            staging: ParamStaging::Dram,
            ..ArrayConfig::default()
        };
        let f = nonlinear_stats(&fused, 128, 128);
        let d = nonlinear_stats(&dram, 128, 128);
        assert!(d.cycles() > f.cycles(), "{} !> {}", d.cycles(), f.cycles());
    }

    #[test]
    fn roofline_binds_for_tiny_compute_huge_traffic() {
        // A skinny GEMM (large K, tiny M·N) is traffic-dominated.
        let mut cfg = ArrayConfig::new(8, 16);
        cfg.w_dram = 1;
        let b = gemm_breakdown(&cfg, 8, 4096, 8);
        assert!(b.dram_stall > 0, "{b:?}");
    }

    #[test]
    fn nonlinear_evals_counted() {
        let cfg = ArrayConfig::default();
        let stats = nonlinear_stats(&cfg, 64, 64);
        assert_eq!(stats.nonlinear_evals, 64 * 64);
        assert_eq!(stats.macs, 2 * 64 * 64);
    }
}
