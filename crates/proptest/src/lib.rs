//! Offline stand-in for the crates.io `proptest` crate.
//!
//! This repository builds with **no network access**, so the real
//! `proptest` cannot be fetched. This crate implements the small subset of
//! its API that the workspace's five property suites actually use —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, `Just`, range and collection strategies, and the
//! `prop_map`/`prop_flat_map` combinators — with one deliberate
//! difference: generation is **always deterministic**. Every test function
//! derives its RNG stream from a fixed global seed plus the test's name,
//! so a given toolchain sees the identical case sequence on every run,
//! locally and in CI.
//!
//! There is no shrinking and no persisted failure file; a failing case
//! panics with the case index so it can be replayed by reading the seed
//! derivation below.
//!
//! # Implemented subset
//!
//! Exactly what the workspace's property suites consume — nothing more:
//! the `proptest!` macro with `#![proptest_config(...)]` /
//! `ProptestConfig::with_cases`, the assertion macros (`prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`), `prop_oneof!`,
//! `Just`, numeric range strategies, `proptest::collection::vec`, and the
//! `prop_map` / `prop_flat_map` combinators. Shrinking, failure
//! persistence, `Arbitrary`, regex string strategies and the runner
//! configuration surface of the real crate are **not** implemented.
//!
//! # Determinism guarantees
//!
//! * One global seed ([`test_runner::GLOBAL_SEED`]) governs the whole
//!   workspace.
//! * Each `proptest!` test function derives an independent PCG-32 stream
//!   from `GLOBAL_SEED ⊕ hash(test name)`, so adding or reordering tests
//!   never perturbs another test's case sequence.
//! * A given toolchain therefore sees the identical case sequence on
//!   every run, locally and in CI — a property regression is always
//!   reproducible with `cargo test <test_name>`.
//!
//! # ⚠️ Do not `cargo add proptest`
//!
//! This workspace resolves `proptest` to this path crate (see the root
//! `Cargo.toml`). Adding the crates.io crate would require network access
//! the build environment does not have, and would replace deterministic
//! generation with time-seeded generation, breaking CI reproducibility.
//! If real network access ever materializes, the suites are
//! API-compatible with upstream by construction — swap the workspace
//! dependency, don't edit the tests.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     fn addition_commutes(a in -100i32..100, b in -100i32..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes(); // the macro emits a plain fn; the suites add #[test]
//! ```

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything the test suites import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Strategy constructors over collections (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The deterministic RNG driving every strategy (PCG-32, same algorithm as
/// `onesa_tensor::rng::Pcg32`, re-implemented here so the stand-in stays
/// dependency-free).
pub mod test_runner {
    /// Fixed global seed; change it only if you intend to regenerate every
    /// case sequence in the repository.
    pub const GLOBAL_SEED: u64 = 0x0E5A_2024;

    /// Deterministic PCG-32 stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
        inc: u64,
    }

    impl TestRng {
        /// Seed a stream from a raw integer.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut rng = TestRng {
                state: 0,
                inc: (seed << 1) | 1,
            };
            rng.next_u32();
            rng.state = rng.state.wrapping_add(seed ^ 0x9E37_79B9_7F4A_7C15);
            rng.next_u32();
            rng
        }

        /// The per-test stream: `GLOBAL_SEED` mixed with an FNV-1a hash of
        /// the test name, so suites stay stable when tests are reordered.
        pub fn for_test(test_name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.as_bytes() {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            Self::seed_from_u64(GLOBAL_SEED ^ hash)
        }

        /// Next 32 uniform bits.
        pub fn next_u32(&mut self) -> u32 {
            let old = self.state;
            self.state = old
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(self.inc);
            let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
            let rot = (old >> 59) as u32;
            xorshifted.rotate_right(rot)
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            f64::from(self.next_u32()) / f64::from(u32::MAX) * (1.0 - f64::EPSILON)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub use test_runner::TestRng;

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256, sized for CI latency; every
    /// suite in this workspace pins its count explicitly anyway.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug)]
pub struct Reject;

/// A deterministic value generator. Object-safe: combinator methods are
/// `Self: Sized` so `Box<dyn Strategy<Value = T>>` works (for
/// `prop_oneof!`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full 64-bit domain: `hi - lo + 1` wrapped to zero, so
                    // every bit pattern is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty float range strategy");
        let v = (f64::from(self.start)
            + (f64::from(self.end) - f64::from(self.start)) * rng.next_f64())
            as f32;
        // The f64→f32 rounding can land exactly on `end`; keep the
        // documented half-open contract.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Length specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.lo < self.size.hi, "empty vec size range");
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy produced by [`prop_oneof!`]: picks one arm uniformly.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

impl<T> OneOf<T> {
    /// Build from boxed arms; used by the `prop_oneof!` expansion.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Box a strategy arm for [`OneOf`].
pub fn boxed_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniformly choose between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed_arm($arm)),+])
    };
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Reject the current case (it is retried with fresh inputs and does not
/// count toward the accepted-case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Reject);
        }
    };
}

/// The suite macro: expands each `fn name(bindings) { body }` into a
/// `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(config = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(config = ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case_index: u32 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = ::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::Reject> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
                match ::std::panic::catch_unwind(run) {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err($crate::Reject)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.cases.saturating_mul(16).max(256),
                            "{}: too many prop_assume! rejections ({} for {} accepted cases)",
                            stringify!($name), rejected, accepted,
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest {}: failing case index {} (seed = GLOBAL_SEED ^ fnv1a({:?}))",
                            stringify!($name), case_index, stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
                case_index += 1;
            }
        }
        $crate::__proptest_items!(config = ($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_test("streams_are_deterministic");
        let mut b = TestRng::for_test("streams_are_deterministic");
        let xs: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_eq!(xs, ys);
        let mut c = TestRng::for_test("a_different_test");
        assert_ne!(xs[0], c.next_u32());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&y));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn oneof_and_vec_and_maps(choice in prop_oneof![Just(1u32), Just(2), Just(3)],
                                  v in crate::collection::vec(0u32..10, 1..8),
                                  pair in (1usize..=4, 1usize..=4)) {
            prop_assert!((1..=3).contains(&choice));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(pair.0 >= 1 && pair.1 <= 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
