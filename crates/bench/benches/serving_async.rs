//! Asynchronous sharded-serving benches: full [`ServeEngine`] lifetimes
//! (start → pre-load → drain → finish) at one and four shards.
//!
//! Run with `cargo bench -p onesa-bench --bench serving_async`. The JSON
//! perf baseline at the repository root (`BENCH_serving_async.json`) is
//! produced by the `serving_async` bin, not by this bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onesa_core::serve::{AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, Ticket};
use onesa_core::{Parallelism, Request};
use onesa_cpwl::NonlinearFn;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;

fn mix() -> Vec<Request> {
    let mut rng = Pcg32::seed_from_u64(9);
    let w1 = rng.randn(&[128, 64], 1.0);
    let w2 = rng.randn(&[128, 32], 1.0);
    let mut requests = Vec::new();
    for i in 0..12 {
        let w = if i % 3 == 0 { &w2 } else { &w1 };
        requests.push(Request::gemm(rng.randn(&[8 + i, 128], 1.0), w.clone()));
    }
    for i in 0..4 {
        requests.push(Request::nonlinear(
            NonlinearFn::Gelu,
            rng.randn(&[16 + 8 * i, 32], 1.5),
        ));
    }
    requests
}

fn serve_pool(c: &mut Criterion) {
    let requests = mix();
    let mut group = c.benchmark_group("serve_engine_16req");
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |bench, &shards| {
                bench.iter(|| {
                    let pool = ServeEngine::start(
                        ServeConfig::uniform(
                            shards,
                            ArrayConfig::new(8, 16),
                            Parallelism::Threads(1),
                        )
                        .with_admission(AdmissionPolicy::Fifo { window: 32 })
                        .with_routing(RoutePolicy::LeastLoaded),
                    )
                    .expect("valid pool config");
                    let tickets: Vec<Ticket> = requests
                        .iter()
                        .map(|r| pool.submit(r.clone()).expect("queue open"))
                        .collect();
                    for t in tickets {
                        t.wait().expect("request served");
                    }
                    pool.finish().expect("pool drains cleanly")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(serving_async, serve_pool);
criterion_main!(serving_async);
