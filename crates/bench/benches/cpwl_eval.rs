//! Criterion bench: CPWL table construction and evaluation — the
//! scalar/tensor costs behind every Table III cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onesa_cpwl::ops::TableSet;
use onesa_cpwl::{NonlinearFn, PwlTable};
use onesa_tensor::rng::Pcg32;

fn bench_table_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_build");
    for g in [1.0f32, 0.25, 0.0625] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| {
                PwlTable::builder(NonlinearFn::Gelu)
                    .granularity(std::hint::black_box(g))
                    .build()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_tensor_eval(c: &mut Criterion) {
    let table = PwlTable::builder(NonlinearFn::Gelu)
        .granularity(0.25)
        .build()
        .unwrap();
    let x = Pcg32::seed_from_u64(3).randn(&[256, 256], 2.0);
    c.bench_function("gelu_tensor_eval_64k", |b| {
        b.iter(|| table.eval_tensor(std::hint::black_box(&x)).unwrap())
    });

    let tables = TableSet::for_granularity(0.25).unwrap();
    let logits = Pcg32::seed_from_u64(4).randn(&[128, 128], 2.0);
    c.bench_function("softmax_lowered_128x128", |b| {
        b.iter(|| tables.softmax_rows(std::hint::black_box(&logits)).unwrap())
    });
}

fn bench_quantized_scalar(c: &mut Criterion) {
    let table = PwlTable::builder(NonlinearFn::Sigmoid)
        .granularity(0.25)
        .build()
        .unwrap();
    let q = table.qformat();
    let inputs: Vec<i16> = (-2000..2000)
        .map(|i| q.from_f32(i as f32 * 0.004))
        .collect();
    c.bench_function("sigmoid_int16_shift_path_4k", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for &xq in std::hint::black_box(&inputs) {
                acc += table.eval_q(xq) as i32;
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_table_build,
    bench_tensor_eval,
    bench_quantized_scalar
);
criterion_main!(benches);
