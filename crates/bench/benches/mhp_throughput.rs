//! Criterion bench: Matrix Hadamard Product on the event-driven array
//! and the full nonlinear pass through the analytic model (Fig 8(b)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onesa_sim::array::SystolicArray;
use onesa_sim::{analytic, ArrayConfig};
use onesa_tensor::rng::Pcg32;

fn bench_event_mhp(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_mhp_row_tile");
    for (d, t) in [(4usize, 8usize), (8, 16)] {
        let cfg = ArrayConfig::new(d, t);
        let mut arr = SystolicArray::new(cfg);
        let mut rng = Pcg32::seed_from_u64(2);
        let x = rng.randn(&[d, 128], 1.0);
        let k = rng.randn(&[d, 128], 1.0);
        let b = rng.randn(&[d, 128], 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{d}x{t}")),
            &(),
            |bch, _| {
                bch.iter(|| {
                    arr.mhp_row_tile(
                        std::hint::black_box(&x),
                        std::hint::black_box(&k),
                        std::hint::black_box(&b),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_analytic_nonlinear(c: &mut Criterion) {
    c.bench_function("analytic_fig8b_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for d in [2usize, 4, 8, 16, 32] {
                for t in [2usize, 4, 8, 16] {
                    let cfg = ArrayConfig::new(d, t);
                    for dims in [32usize, 128, 512] {
                        acc += analytic::nonlinear_gnfs(&cfg, std::hint::black_box(dims));
                    }
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_event_mhp, bench_analytic_nonlinear);
criterion_main!(benches);
