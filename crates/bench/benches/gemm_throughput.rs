//! Criterion bench: GEMM on the event-driven array and through the
//! analytic model (Fig 8(a) machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onesa_sim::array::SystolicArray;
use onesa_sim::{analytic, ArrayConfig};
use onesa_tensor::rng::Pcg32;

fn bench_event_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_gemm_tile");
    for (d, t) in [(4usize, 4usize), (8, 16)] {
        let cfg = ArrayConfig::new(d, t);
        let mut arr = SystolicArray::new(cfg);
        let mut rng = Pcg32::seed_from_u64(1);
        let a = rng.randn(&[d, 64], 1.0);
        let b = rng.randn(&[64, d], 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{d}x{d}x{t}")),
            &(),
            |bch, _| {
                bch.iter(|| {
                    arr.gemm_tile(std::hint::black_box(&a), std::hint::black_box(&b))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_analytic_sweep(c: &mut Criterion) {
    c.bench_function("analytic_fig8a_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for d in [2usize, 4, 8, 16, 32] {
                for t in [2usize, 4, 8, 16] {
                    let cfg = ArrayConfig::new(d, t);
                    for dims in [32usize, 128, 512] {
                        acc += analytic::linear_gops(&cfg, std::hint::black_box(dims));
                    }
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench_event_gemm, bench_analytic_sweep);
criterion_main!(benches);
