//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Parameter staging** — fused on-chip staging vs the literal
//!    §IV-A DRAM round trip.
//! 2. **MAC vector width** — the Fig 10 "16 MACs is the sweet spot"
//!    observation, as workload latency.
//! 3. **Split accelerator** — ONE-SA vs a matrix-unit + dedicated-SFU
//!    design on a CNN workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onesa_core::{split_accelerator_cycles, OneSa};
use onesa_nn::workloads;
use onesa_sim::{analytic, ArrayConfig, ParamStaging};

fn bench_staging_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("staging");
    for (label, staging) in [
        ("fused", ParamStaging::Fused),
        ("dram_roundtrip", ParamStaging::Dram),
    ] {
        let mut cfg = ArrayConfig::new(8, 16);
        cfg.staging = staging;
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| analytic::nonlinear_stats(cfg, std::hint::black_box(256), 256).cycles())
        });
    }
    group.finish();
}

fn bench_mac_sweep(c: &mut Criterion) {
    let w = workloads::bert_base(64);
    let mut group = c.benchmark_group("bert_latency_by_macs");
    for macs in [4usize, 8, 16, 32] {
        let engine = OneSa::new(ArrayConfig::new(8, macs));
        group.bench_with_input(BenchmarkId::from_parameter(macs), &engine, |b, engine| {
            b.iter(|| engine.run_workload(std::hint::black_box(&w)).stats.cycles())
        });
    }
    group.finish();
}

fn bench_split_vs_unified(c: &mut Criterion) {
    let cfg = ArrayConfig::new(8, 16);
    let engine = OneSa::new(cfg.clone());
    let w = workloads::resnet50(224);
    c.bench_function("unified_onesa_resnet", |b| {
        b.iter(|| engine.run_workload(std::hint::black_box(&w)).stats.cycles())
    });
    c.bench_function("split_design_resnet", |b| {
        b.iter(|| split_accelerator_cycles(&cfg, std::hint::black_box(&w), 16).total)
    });
}

criterion_group!(
    benches,
    bench_staging_ablation,
    bench_mac_sweep,
    bench_split_vs_unified
);
criterion_main!(benches);
