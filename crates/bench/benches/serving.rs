//! Serving-layer benches: host GEMM throughput under each [`Parallelism`]
//! policy, and end-to-end [`BatchEngine`] runs over a mixed request queue.
//!
//! Run with `cargo bench -p onesa-bench --bench serving`. The JSON perf
//! baseline at the repository root (`BENCH_gemm_parallel.json`) is
//! produced by the `gemm_parallel` bin, not by this bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onesa_core::{BatchEngine, OneSa, Parallelism, Request};
use onesa_cpwl::NonlinearFn;
use onesa_sim::ArrayConfig;
use onesa_tensor::parallel;
use onesa_tensor::rng::Pcg32;

fn parallel_matmul(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(1);
    let a = rng.randn(&[256, 256], 1.0);
    let b = rng.randn(&[256, 256], 1.0);
    let mut group = c.benchmark_group("parallel_matmul_256");
    for (label, par) in [
        ("seq", Parallelism::Sequential),
        ("threads4", Parallelism::Threads(4)),
        ("auto", Parallelism::Auto),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |bench, &par| {
            bench.iter(|| parallel::matmul(&a, &b, par).expect("square matmul"));
        });
    }
    group.finish();
}

fn parallel_mhp(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(2);
    let x = rng.randn(&[512, 512], 1.0);
    let k = rng.randn(&[512, 512], 1.0);
    let b = rng.randn(&[512, 512], 1.0);
    let mut group = c.benchmark_group("parallel_mhp_512");
    for (label, par) in [
        ("seq", Parallelism::Sequential),
        ("auto", Parallelism::Auto),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &par, |bench, &par| {
            bench.iter(|| parallel::mhp(&x, &k, &b, par).expect("same shapes"));
        });
    }
    group.finish();
}

fn batch_serving(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(3);
    let w1 = rng.randn(&[128, 64], 1.0);
    let w2 = rng.randn(&[128, 32], 1.0);
    let gemm_inputs: Vec<_> = (0..12).map(|i| rng.randn(&[8 + i, 128], 1.0)).collect();
    let nl_inputs: Vec<_> = (0..4).map(|i| rng.randn(&[16 + 8 * i, 32], 1.5)).collect();
    c.bench_function("batch_engine_16req", |bench| {
        bench.iter(|| {
            let engine = OneSa::with_parallelism(ArrayConfig::new(8, 16), Parallelism::Auto);
            let mut serving = BatchEngine::new(engine, 0.25).expect("valid granularity");
            for (i, a) in gemm_inputs.iter().enumerate() {
                let w = if i % 3 == 0 { &w2 } else { &w1 };
                serving.submit(Request::gemm(a.clone(), w.clone()));
            }
            for x in &nl_inputs {
                serving.submit(Request::nonlinear(NonlinearFn::Gelu, x.clone()));
            }
            serving.run().expect("well-formed queue")
        });
    });
}

criterion_group!(serving, parallel_matmul, parallel_mhp, batch_serving);
criterion_main!(serving);
