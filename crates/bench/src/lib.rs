//! Report generators for every table and figure of the ONE-SA paper.
//!
//! Each `*_report` function regenerates one artefact of the evaluation
//! section (§V, Figs 1/8/9/10, Tables I–V) as formatted text; the
//! `src/bin/*` binaries are thin wrappers
//! (`cargo run -p onesa-bench --release --bin table4`). The Criterion
//! benches under `benches/` measure the simulator and the serving layer,
//! and the `gemm_parallel` bin emits the committed
//! `BENCH_gemm_parallel.json` perf baseline.
//!
//! # Example
//!
//! ```
//! let report = onesa_bench::table1_report();
//! assert!(report.contains("Table I"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use onesa_baselines::table4_baselines;
use onesa_core::{split_accelerator_cycles, OneSa};
use onesa_data::{GraphDataset, ImageDataset, TextDataset};
use onesa_nn::models::{Gcn, SmallCnn, TinyBert};
use onesa_nn::profile::OpClass;
use onesa_nn::train::TrainConfig;
use onesa_nn::workloads::{self, ModelFamily};
use onesa_nn::InferenceMode;
use onesa_resources::array::{ArrayResources, TABLE2_ANCHORS};
use onesa_resources::modules::{l3_cost, pe_cost};
use onesa_resources::power::PowerModel;
use onesa_resources::Design;
use onesa_sim::{analytic, ArrayConfig, BufferSizes};
use std::fmt::Write as _;
use std::time::Instant;

/// Best wall-seconds over `reps` calls of `f` (after one discarded
/// warm-up call), returning the last result alongside the timing.
///
/// Best-of rather than mean-of: on a shared/noisy host the minimum is
/// the stable estimator of the code's true speed, which is why both the
/// `gemm_parallel` baseline bin and the `serving_throughput` example
/// report it.
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out, best)
}

/// Fig 1: op-class breakdown of a CIFAR-10 ResNet and a BERT encoder.
pub fn fig1_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 1 — computations in classic neural network models");
    let _ = writeln!(
        out,
        "(op-count shares; see EXPERIMENTS.md for the accounting model)\n"
    );
    for (title, w) in [
        (
            "(a) CNN-based ResNet, CIFAR-10 shape",
            workloads::resnet50(32),
        ),
        (
            "(b) Transformer-based BERT, SST-2 shape",
            workloads::bert_base(64),
        ),
    ] {
        let c = w.op_counts();
        let _ = writeln!(out, "{title}  [{}]", w.name);
        for class in [
            OpClass::Gemm,
            OpClass::Multiply,
            OpClass::Add,
            OpClass::Softmax,
            OpClass::Norm,
            OpClass::Activation,
        ] {
            let _ = writeln!(out, "  {:<12} {:>7.2}%", class.to_string(), c.share(class));
        }
        let _ = writeln!(out, "  total ops: {:.3} G\n", c.total() as f64 / 1e9);
    }
    out
}

/// Table I: per-module resources of the L3 buffer and the PE, SA vs
/// ONE-SA.
pub fn table1_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I — resource consumption of the ONE-SA L3 and PE"
    );
    let _ = writeln!(
        out,
        "{:<8}{:<10}{:>7}{:>8}{:>8}{:>6}",
        "Module", "Design", "BRAM", "LUT", "FF", "DSP"
    );
    for (module, design, c) in [
        ("L3", "SA", l3_cost(Design::ClassicSa)),
        ("L3", "ONE-SA", l3_cost(Design::OneSa)),
        ("PE", "SA", pe_cost(Design::ClassicSa, 16)),
        ("PE", "ONE-SA", pe_cost(Design::OneSa, 16)),
    ] {
        let _ = writeln!(
            out,
            "{module:<8}{design:<10}{:>7}{:>8}{:>8}{:>6}",
            c.bram, c.lut, c.ff, c.dsp
        );
    }
    out
}

/// Table II: whole-array resources at 4×4 / 8×8 / 16×16, model vs the
/// published numbers.
pub fn table2_report() -> String {
    let model = ArrayResources::calibrated();
    let mut out = String::new();
    let _ = writeln!(out, "Table II — total hardware resources (16 MACs/PE)");
    let _ = writeln!(
        out,
        "{:<7}{:<9}{:>7}{:>9}{:>9}{:>7}   vs published",
        "Dim", "Design", "BRAM", "LUT", "FF", "DSP"
    );
    for (dim, sa_pub, onesa_pub) in TABLE2_ANCHORS {
        for (design, published) in [(Design::ClassicSa, sa_pub), (Design::OneSa, onesa_pub)] {
            let c = model.total(design, dim, 16);
            let ok = c == published;
            let _ = writeln!(
                out,
                "{:<7}{:<9}{:>7}{:>9}{:>9}{:>7}   {}",
                format!("{dim}x{dim}"),
                design.to_string(),
                c.bram,
                c.lut,
                c.ff,
                c.dsp,
                if ok { "exact match" } else { "MISMATCH" }
            );
        }
        let (bram, lut, ff, dsp) = model.onesa_overhead_ratios(dim, 16);
        let _ = writeln!(
            out,
            "{:<7}overhead  {:>6.1}% {:>7.1}% {:>7.1}% {:>5.1}%",
            "",
            (bram - 1.0) * 100.0,
            (lut - 1.0) * 100.0,
            (ff - 1.0) * 100.0,
            (dsp - 1.0) * 100.0
        );
    }
    out
}

/// One Table III row: accuracy at the baseline and the deltas under CPWL
/// granularities.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Task name.
    pub task: String,
    /// INT16 baseline metric (percent).
    pub original: f32,
    /// Metric deltas (percentage points) at each granularity.
    pub deltas: Vec<f32>,
}

/// Table III granularities (the paper's sweep).
pub const GRANULARITIES: [f32; 5] = [0.1, 0.25, 0.5, 0.75, 1.0];

fn row(task: &str, evaluate: impl Fn(&InferenceMode) -> f32) -> AccuracyRow {
    // "Original" = INT16 quantization with near-exact nonlinears (the
    // paper's baseline column): finest shift-friendly granularity.
    let base_mode = InferenceMode::cpwl(0.03125).expect("valid granularity");
    let original = evaluate(&base_mode) * 100.0;
    let deltas = GRANULARITIES
        .iter()
        .map(|&g| {
            let mode = InferenceMode::cpwl(g).expect("valid granularity");
            evaluate(&mode) * 100.0 - original
        })
        .collect();
    AccuracyRow {
        task: task.to_string(),
        original,
        deltas,
    }
}

/// Table III: end-to-end inference accuracy of CNN / BERT / GCN models
/// across CPWL granularities. `quick` shrinks datasets and epochs.
pub fn table3_rows(quick: bool) -> Vec<(String, Vec<AccuracyRow>)> {
    let per_class = if quick { 12 } else { 40 };
    let cfg = if quick {
        TrainConfig {
            epochs: 8,
            lr: 5e-3,
            batch_size: 16,
            seed: 42,
        }
    } else {
        TrainConfig {
            epochs: 16,
            lr: 3e-3,
            batch_size: 16,
            seed: 42,
        }
    };

    let mut cnn_rows = Vec::new();
    for data in ImageDataset::table3_suite(11, per_class) {
        let mut model = SmallCnn::new(cfg.seed, data.geometry.0, data.classes);
        model.fit(&data, &cfg);
        cnn_rows.push(row(&data.name, |mode| model.evaluate(&data, mode)));
    }

    let mut bert_rows = Vec::new();
    let text_cfg = TrainConfig {
        epochs: cfg.epochs.min(8),
        lr: 2e-3,
        batch_size: 1,
        seed: 43,
    };
    for data in TextDataset::table3_suite(13, per_class) {
        let outputs = match data.task {
            onesa_data::text::TextTask::Classification => data.classes,
            onesa_data::text::TextTask::Regression => 1,
        };
        let mut model = TinyBert::new(text_cfg.seed, data.vocab, data.seq_len, outputs, 2);
        model.fit(&data, &text_cfg);
        bert_rows.push(row(&data.name, |mode| model.evaluate(&data, mode)));
    }

    let mut gcn_rows = Vec::new();
    let gcn_cfg = TrainConfig {
        epochs: 10,
        lr: 1e-2,
        batch_size: 0,
        seed: 44,
    };
    for g in GraphDataset::table3_suite(17, if quick { 1 } else { 2 }) {
        let mut model = Gcn::new(gcn_cfg.seed, g.features, 16, g.classes);
        model.fit(&g, &gcn_cfg);
        gcn_rows.push(row(&g.name, |mode| model.evaluate(&g, mode)));
    }

    vec![
        ("CNN".to_string(), cnn_rows),
        ("BERT".to_string(), bert_rows),
        ("GCN".to_string(), gcn_rows),
    ]
}

/// Formats Table III.
pub fn table3_report(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III — end-to-end inference accuracy vs CPWL granularity"
    );
    let _ = writeln!(
        out,
        "{:<8}{:<16}{:>9}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "DNN", "Dataset", "Original", "0.1", "0.25", "0.5", "0.75", "1"
    );
    for (family, rows) in table3_rows(quick) {
        for r in rows {
            let _ = write!(out, "{:<8}{:<16}{:>8.1}%", family, r.task, r.original);
            for d in &r.deltas {
                let _ = write!(out, "{:>8}", format!("{d:+.1}"));
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Table IV: ONE-SA (from the simulator) against the baseline processor
/// models, per network family.
pub fn table4_report() -> String {
    let engine = OneSa::new(ArrayConfig::new(8, 16));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table IV — performance comparison (L ms, S ×, T GOPS, P W, T/P 1/W)"
    );
    for w in workloads::table4_workloads() {
        let cpu_latency = onesa_baselines::cpu_i7_11700()
            .latency_s(&w)
            .expect("cpu runs all");
        let _ = writeln!(
            out,
            "\n── {} ({:.2} GMACs) ──",
            w.family,
            w.total_macs() as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "{:<28}{:>9}{:>7}{:>9}{:>8}{:>7}",
            "Processor", "L(ms)", "S(x)", "T(GOPS)", "P(W)", "T/P"
        );
        for p in table4_baselines() {
            match p.latency_s(&w) {
                Some(l) => {
                    let t = p.gops_for(w.family).expect("family supported");
                    let _ = writeln!(
                        out,
                        "{:<28}{:>9.2}{:>7.2}{:>9.2}{:>8.2}{:>7.2}",
                        p.name,
                        l * 1e3,
                        cpu_latency / l,
                        t,
                        p.power_w,
                        t / p.power_w
                    );
                }
                None => {
                    let _ = writeln!(out, "{:<28}{:>9}", p.name, "-");
                }
            }
        }
        let r = engine.run_workload(&w);
        let _ = writeln!(
            out,
            "{:<28}{:>9.2}{:>7.2}{:>9.2}{:>8.2}{:>7.2}   <- this work (simulated)",
            "Virtex7 ONE-SA",
            r.latency_ms(),
            cpu_latency * 1e3 / r.latency_ms(),
            r.gops(),
            r.power_w,
            r.gops_per_watt()
        );
        // Flexibility footnote: split-design idle fraction.
        let split = split_accelerator_cycles(engine.config(), &w, 16);
        let _ = writeln!(
            out,
            "{:<28}(split GEMM+SFU design would idle {:.0}% of unit-cycles)",
            "",
            split.idle_fraction() * 100.0
        );
    }
    out
}

/// Table V: buffer sizes of the evaluation design.
pub fn table5_report() -> String {
    let b = BufferSizes::paper_default();
    let dim = 8usize;
    let mut out = String::new();
    let _ = writeln!(out, "Table V — buffer sizes (64-PE, 16-MAC design)");
    let _ = writeln!(out, "{:<10}{:>10}{:>10}", "Buffer", "Size", "Count");
    let kb = |bytes: usize| format!("{:.3}KB", bytes as f64 / 1024.0);
    let _ = writeln!(out, "{:<10}{:>10}{:>10}", "L3", kb(b.l3_bytes), 3);
    let _ = writeln!(out, "{:<10}{:>10}{:>10}", "L2", kb(b.l2_bytes), 3 * dim);
    let _ = writeln!(
        out,
        "{:<10}{:>10}{:>10}",
        "PE out",
        kb(b.pe_out_bytes),
        dim * dim
    );
    let _ = writeln!(out, "{:<10}{:>10}{:>10}", "L1", kb(b.l1_bytes), dim * dim);
    let _ = writeln!(
        out,
        "total on-chip: {:.2} KB",
        b.total_bytes(dim) as f64 / 1024.0
    );
    out
}

/// Fig 8: linear GOPS and nonlinear GNFS across PE and MAC counts for
/// input dims 32 / 128 / 512 plus the theoretical maximum.
pub fn fig8_report() -> String {
    let dims_list = [512usize, 128, 32];
    let pe_log4 = [2usize, 4, 8, 16, 32]; // D: 4..1024 PEs
    let macs = [2usize, 4, 8, 16];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 8 — performance under different types of calculation"
    );
    for (title, nonlinear) in [("(a) linear GOPS", false), ("(b) nonlinear GNFS", true)] {
        let _ = writeln!(out, "\n{title}");
        for &t in &macs {
            let _ = writeln!(out, " MACs = {t}");
            let mut header = format!("  {:<10}", "PEs");
            for &dims in &dims_list {
                header.push_str(&format!("{:>10}", format!("{dims}dims")));
            }
            header.push_str(&format!("{:>10}", "max"));
            let _ = writeln!(out, "{header}");
            for &d in &pe_log4 {
                let cfg = ArrayConfig::new(d, t);
                let mut line = format!("  {:<10}", d * d);
                for &dims in &dims_list {
                    let v = if nonlinear {
                        analytic::nonlinear_gnfs(&cfg, dims)
                    } else {
                        analytic::linear_gops(&cfg, dims)
                    };
                    line.push_str(&format!("{:>10.2}", v));
                }
                let peak = if nonlinear {
                    cfg.peak_gnfs()
                } else {
                    cfg.peak_gops()
                };
                line.push_str(&format!("{:>10.2}", peak));
                let _ = writeln!(out, "{line}");
            }
        }
    }
    out
}

/// Fig 9: resource consumption across PE counts {4,16,64,256} and MAC
/// counts {2..32}.
pub fn fig9_report() -> String {
    let model = ArrayResources::calibrated();
    let pes = [4usize, 16, 64, 256];
    let macs = [2usize, 4, 8, 16, 32];
    let mut out = String::new();
    let _ = writeln!(out, "Fig 9 — ONE-SA resources across sizes");
    for (name, pick) in [
        ("(a) LUT", 0usize),
        ("(b) FF", 1),
        ("(c) DSP", 2),
        ("(d) BRAM", 3),
    ] {
        let _ = writeln!(out, "\n{name}");
        let mut header = format!("  {:<8}", "PEs");
        for &t in &macs {
            header.push_str(&format!("{:>10}", format!("{t} MACs")));
        }
        let _ = writeln!(out, "{header}");
        for &pe in &pes {
            let d = (pe as f64).sqrt() as usize;
            let mut line = format!("  {:<8}", pe);
            for &t in &macs {
                let c = model.total(Design::OneSa, d, t);
                let v = match pick {
                    0 => c.lut,
                    1 => c.ff,
                    2 => c.dsp,
                    _ => c.bram,
                };
                line.push_str(&format!("{v:>10}"));
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// One Fig 10 design point.
#[derive(Debug, Clone, Copy)]
pub struct DesignPoint {
    /// Array dimension.
    pub dim: usize,
    /// MACs per PE.
    pub macs: usize,
    /// Latency in seconds.
    pub latency_s: f64,
    /// Power in watts.
    pub power_w: f64,
    /// Whether the point is Pareto-optimal (no point with both lower
    /// latency and lower power).
    pub pareto: bool,
}

/// Computes the Fig 10 design-space sweep for one input size.
pub fn fig10_points(input_dims: usize, nonlinear: bool) -> Vec<DesignPoint> {
    let model = ArrayResources::calibrated();
    let power = PowerModel::virtex7();
    let mut points = Vec::new();
    for dim in [2usize, 4, 8, 16] {
        for macs in [2usize, 4, 8, 16, 32] {
            let cfg = ArrayConfig::new(dim, macs);
            let stats = if nonlinear {
                analytic::nonlinear_stats(&cfg, input_dims, input_dims)
            } else {
                analytic::gemm_stats(&cfg, input_dims, input_dims, input_dims)
            };
            let cost = model.total(Design::OneSa, dim, macs);
            let p = power.power_at_utilization(&cost, stats.utilization(&cfg));
            points.push(DesignPoint {
                dim,
                macs,
                latency_s: stats.seconds(),
                power_w: p,
                pareto: false,
            });
        }
    }
    let snapshot = points.clone();
    for p in &mut points {
        p.pareto = !snapshot
            .iter()
            .any(|q| q.latency_s < p.latency_s && q.power_w < p.power_w);
    }
    points
}

/// Fig 10: latency/power scatter with Pareto marks.
pub fn fig10_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 10 — computation latency with power consumption");
    for (title, nonlinear) in [
        ("(a) linear computation", false),
        ("(b) nonlinear computation", true),
    ] {
        let _ = writeln!(out, "\n{title}");
        for dims in [512usize, 128, 32] {
            let _ = writeln!(out, " input {dims} dims");
            let _ = writeln!(
                out,
                "  {:<6}{:<6}{:>14}{:>10}{:>9}",
                "Dim", "MACs", "latency", "power", "pareto"
            );
            for p in fig10_points(dims, nonlinear) {
                let lat = if p.latency_s >= 1e-3 {
                    format!("{:.3} ms", p.latency_s * 1e3)
                } else {
                    format!("{:.1} us", p.latency_s * 1e6)
                };
                let _ = writeln!(
                    out,
                    "  {:<6}{:<6}{:>14}{:>9.2}W{:>9}",
                    format!("{0}x{0}", p.dim),
                    p.macs,
                    lat,
                    p.power_w,
                    if p.pareto { "*" } else { "" }
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "\n(* = Pareto-optimal; the paper's observation: designs with ≥16 MACs sit on the frontier)"
    );
    out
}

/// Efficiency headline of the abstract: ONE-SA vs CPU/GPU/SoC ratios per
/// family, and vs the fixed-function accelerators.
pub fn headline_ratios() -> Vec<(ModelFamily, f64, f64, f64)> {
    let engine = OneSa::new(ArrayConfig::new(8, 16));
    workloads::table4_workloads()
        .iter()
        .map(|w| {
            let r = engine.run_workload(w);
            let eff = r.gops_per_watt();
            let ratio = |p: onesa_baselines::Processor| {
                p.gops_per_watt(w.family)
                    .map(|e| eff / e)
                    .unwrap_or(f64::NAN)
            };
            (
                w.family,
                ratio(onesa_baselines::cpu_i7_11700()),
                ratio(onesa_baselines::gpu_3090ti()),
                ratio(onesa_baselines::soc_agx_orin()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_nonempty() {
        for r in [
            fig1_report(),
            table1_report(),
            table2_report(),
            table5_report(),
            fig9_report(),
        ] {
            assert!(r.len() > 100, "{r}");
        }
    }

    #[test]
    fn table2_report_matches_exactly() {
        let r = table2_report();
        assert!(r.contains("exact match"));
        assert!(!r.contains("MISMATCH"));
    }

    #[test]
    fn fig10_has_pareto_points() {
        let pts = fig10_points(128, false);
        assert_eq!(pts.len(), 20);
        assert!(pts.iter().any(|p| p.pareto));
        // The paper: high-MAC designs dominate the frontier.
        let frontier_macs: Vec<usize> = pts.iter().filter(|p| p.pareto).map(|p| p.macs).collect();
        assert!(frontier_macs.iter().any(|&m| m >= 16), "{frontier_macs:?}");
    }

    #[test]
    fn headline_beats_cpu_everywhere() {
        for (family, cpu, _gpu, _soc) in headline_ratios() {
            assert!(cpu > 1.0, "{family}: ratio {cpu}");
        }
    }
}
