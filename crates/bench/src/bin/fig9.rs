//! Regenerates the paper's Fig9 (see onesa-bench lib docs).
fn main() {
    print!("{}", onesa_bench::fig9_report());
}
