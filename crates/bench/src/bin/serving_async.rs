//! Emits the `BENCH_serving_async.json` perf baseline: the sharded
//! asynchronous serving layer (`onesa_core::serve::ServeEngine`) over a
//! fixed mixed request queue at 1, 2 and 4 shards.
//!
//! ```sh
//! cargo run --release -q -p onesa-bench --bin serving_async > BENCH_serving_async.json
//! ```
//!
//! The committed copy at the repository root records the trajectory later
//! serving PRs must beat. Two families of numbers:
//!
//! * `modeled_*` — requests per simulated-array-second of the pool's
//!   makespan (busiest shard). Deterministic on every host: this is the
//!   stable quantity, and `modeled_speedup_vs_1shard` at 4 shards is the
//!   headline (sharding must stay ≥1.5×; it lands near 3×).
//! * `wall_*` — host wall-clock. Shard workers are real OS threads, so
//!   these follow the build host's core count (≈1× on a 1-core host) and
//!   are recorded for context only.

use onesa_bench::time_best;
use onesa_core::serve::{AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, Ticket};
use onesa_core::{Parallelism, Request, ServeSummary};
use onesa_cpwl::NonlinearFn;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use std::time::Instant;

/// Same serving mix as `examples/sharded_serving.rs`: 36 GEMMs over
/// three shared weights plus 12 nonlinears over two functions.
fn build_mix() -> Vec<Request> {
    let mut rng = Pcg32::seed_from_u64(2026);
    let w1 = rng.randn(&[256, 128], 1.0);
    let w2 = rng.randn(&[256, 64], 1.0);
    let w3 = rng.randn(&[256, 96], 1.0);
    let mut requests = Vec::new();
    for i in 0..36 {
        let rows = 16 + (i % 5) * 16;
        let w = [&w1, &w2, &w3][i % 3];
        requests.push(Request::gemm(rng.randn(&[rows, 256], 1.0), w.clone()));
    }
    for i in 0..12 {
        let func = if i % 2 == 0 {
            NonlinearFn::Gelu
        } else {
            NonlinearFn::Sigmoid
        };
        requests.push(Request::nonlinear(
            func,
            rng.randn(&[32 + (i % 4) * 16, 64], 1.5),
        ));
    }
    requests
}

/// One full pool lifetime: pre-load paused, open the gate, wait every
/// ticket, finish. Returns the summary and the resume→finish wall time.
fn serve_once(shards: usize, requests: &[Request]) -> (ServeSummary, f64) {
    let pool = ServeEngine::start(
        ServeConfig::uniform(shards, ArrayConfig::new(8, 16), Parallelism::Threads(1))
            .with_admission(AdmissionPolicy::Fifo { window: 64 })
            .with_routing(RoutePolicy::LeastLoaded)
            .start_paused(),
    )
    .expect("valid pool config");
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| pool.submit(r.clone()).expect("queue open"))
        .collect();
    let t0 = Instant::now();
    pool.resume();
    for t in tickets {
        t.wait().expect("request served");
    }
    let summary = pool.finish().expect("pool drains cleanly");
    (summary, t0.elapsed().as_secs_f64())
}

fn main() {
    let requests = build_mix();
    let n = requests.len();
    let configs = [1usize, 2, 4];
    let runs: Vec<(ServeSummary, f64)> = configs
        .iter()
        .map(|&shards| {
            // Best-of-5 on wall time; the modeled numbers are identical
            // across repetitions (pre-loaded queue = one deterministic
            // window).
            time_best(5, || serve_once(shards, &requests)).0
        })
        .collect();
    let (wall_1, makespan_1) = (runs[0].1, runs[0].0.report.batched_seconds);

    println!("{{");
    println!("  \"bench\": \"serving_async\",");
    println!("  \"layer\": \"onesa_core::serve::ServeEngine\",");
    println!("  \"host_workers\": {},", Parallelism::Auto.worker_count());
    println!("  \"array\": \"8x8 PEs x 16 MACs per shard\",");
    println!("  \"admission\": \"fifo(window=64)\",");
    println!("  \"routing\": \"least_loaded\",");
    println!(
        "  \"mix\": {{ \"requests\": {n}, \"gemm\": 36, \"shared_weights\": 3, \
         \"nonlinear\": 12, \"functions\": 2 }},"
    );
    println!("  \"configs\": [");
    for (idx, (&shards, (summary, wall))) in configs.iter().zip(&runs).enumerate() {
        let makespan = summary.report.batched_seconds;
        println!("    {{");
        println!("      \"shards\": {shards},");
        println!(
            "      \"wall_ms\": {:.3}, \"wall_rps\": {:.0}, \"wall_speedup_vs_1shard\": {:.2},",
            wall * 1e3,
            n as f64 / wall,
            wall_1 / wall
        );
        println!(
            "      \"array_makespan_ms\": {:.4}, \"modeled_rps\": {:.0}, \
             \"modeled_speedup_vs_1shard\": {:.2},",
            makespan * 1e3,
            n as f64 / makespan,
            makespan_1 / makespan
        );
        println!(
            "      \"batching_speedup\": {:.2}, \"gemm_groups\": {}, \"windows\": {}",
            summary.modeled_speedup(),
            summary.report.gemm_groups,
            summary.windows
        );
        println!("    }}{}", if idx + 1 < configs.len() { "," } else { "" });
    }
    println!("  ],");
    println!(
        "  \"stable_quantity\": \"modeled_* (simulated-array makespan); wall_* follows the \
         host's core count\""
    );
    println!("}}");
}
