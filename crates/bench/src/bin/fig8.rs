//! Regenerates the paper's Fig8 (see onesa-bench lib docs).
fn main() {
    print!("{}", onesa_bench::fig8_report());
}
