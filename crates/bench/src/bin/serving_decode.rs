//! Emits the `BENCH_serving_decode.json` perf baseline: eight decoding
//! sessions generating through one [`ServeEngine`] under two schedules
//! — continuous batching (every round's decode steps staged into one
//! admission window) versus strictly sequential one-session-at-a-time
//! serving.
//!
//! ```sh
//! cargo run --release -q -p onesa-bench --bin serving_decode > BENCH_serving_decode.json
//! ```
//!
//! The committed copy at the repository root records the coalescing
//! trajectory later serving PRs must not regress. Number families:
//!
//! * `gemm_groups` / `coalescing_ratio` — deterministic kernel-group
//!   counts; the ratio is **asserted ≥ 2** here (the shared-weight
//!   GEMMs of concurrent decode steps collapse into one group per
//!   weight; only the per-session attention GEMMs stay separate).
//! * `modeled_*` — simulated-array makespan and decode tokens/s,
//!   deterministic.
//! * `wall_*` — host wall-clock, machine-dependent.
//!
//! Both schedules are also checked bit-identical against the no-cache
//! [`TinyCausalLm::generate_direct`] reference — the file is a
//! correctness record, not just a perf one.

use onesa_bench::time_best;
use onesa_core::serve::{
    AdmissionPolicy, InterleavePolicy, RoutePolicy, ServeConfig, ServeEngine, ServeSummary,
    SessionId, Ticket,
};
use onesa_core::{Parallelism, Program};
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::TinyCausalLm;
use onesa_sim::ArrayConfig;
use onesa_tensor::stats;

const SESSIONS: usize = 8;
const TOKENS: usize = 6;
const PROMPT_LEN: usize = 3;

fn argmax(logits: &[f32]) -> usize {
    stats::argmax(logits).expect("non-empty vocabulary")
}

fn pool() -> ServeEngine {
    ServeEngine::start(
        ServeConfig::uniform(1, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo {
                window: 2 * SESSIONS,
            })
            .with_routing(RoutePolicy::WeightAffinity)
            .with_interleave(InterleavePolicy::DecodeFirst),
    )
    .expect("pool starts")
}

fn prefill(
    pool: &ServeEngine,
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    p: &[usize],
) -> (SessionId, Ticket) {
    let sid = pool.open_session();
    let program = Program::clone(&lm.compiled_prefill(mode, p.len()));
    let t = pool
        .submit_prefill(sid, program, vec![TinyCausalLm::ids_tensor(p)], p.len())
        .expect("prefill submits");
    (sid, t)
}

fn decode_step(
    pool: &ServeEngine,
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    sid: SessionId,
    tok: usize,
) -> Ticket {
    let ctx = pool.session_context_rows(sid).expect("session live");
    let program = Program::clone(&lm.compiled_decode(mode, ctx));
    pool.submit_decode(sid, program, vec![TinyCausalLm::ids_tensor(&[tok])])
        .expect("decode submits")
}

/// Continuous batching: pause-staged waves, one admission window per
/// decode round across all sessions.
fn serve_batched(
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    prompts: &[Vec<usize>],
) -> (Vec<Vec<usize>>, ServeSummary) {
    let pool = pool();
    pool.pause();
    let waves: Vec<(SessionId, Ticket)> = prompts
        .iter()
        .map(|p| prefill(&pool, lm, mode, p))
        .collect();
    pool.resume();
    let (mut sessions, mut next) = (Vec::new(), Vec::new());
    for (sid, t) in waves {
        sessions.push(sid);
        next.push(argmax(&t.wait().expect("prefill serves").output.into_vec()));
    }
    let mut out: Vec<Vec<usize>> = next.iter().map(|&t| vec![t]).collect();
    for _ in 1..TOKENS {
        pool.pause();
        let tickets: Vec<Ticket> = sessions
            .iter()
            .zip(&next)
            .map(|(&sid, &tok)| decode_step(&pool, lm, mode, sid, tok))
            .collect();
        pool.resume();
        for (i, t) in tickets.into_iter().enumerate() {
            next[i] = argmax(&t.wait().expect("decode serves").output.into_vec());
            out[i].push(next[i]);
        }
    }
    for &sid in &sessions {
        assert!(pool.close_session(sid));
    }
    (out, pool.finish().expect("pool drains"))
}

/// The contrast schedule: each session runs to completion alone; every
/// window holds one step, nothing coalesces across sessions.
fn serve_sequential(
    lm: &TinyCausalLm,
    mode: &InferenceMode,
    prompts: &[Vec<usize>],
) -> (Vec<Vec<usize>>, ServeSummary) {
    let pool = pool();
    let mut out = Vec::new();
    for p in prompts {
        let (sid, t) = prefill(&pool, lm, mode, p);
        let mut tok = argmax(&t.wait().expect("prefill serves").output.into_vec());
        let mut stream = vec![tok];
        for _ in 1..TOKENS {
            let t = decode_step(&pool, lm, mode, sid, tok);
            tok = argmax(&t.wait().expect("decode serves").output.into_vec());
            stream.push(tok);
        }
        assert!(pool.close_session(sid));
        out.push(stream);
    }
    (out, pool.finish().expect("pool drains"))
}

fn main() {
    let lm = TinyCausalLm::new(2027, 24, 16, 2, true);
    let mode = InferenceMode::cpwl(0.25).expect("paper granularity");
    let prompts: Vec<Vec<usize>> = (0..SESSIONS)
        .map(|s| {
            (0..PROMPT_LEN)
                .map(|i| (s * 7 + i * 3) % lm.vocab())
                .collect()
        })
        .collect();
    let reference: Vec<Vec<usize>> = prompts
        .iter()
        .map(|p| lm.generate_direct(p, TOKENS, &mode))
        .collect();

    let ((batched_out, batched), wall_b) = time_best(3, || serve_batched(&lm, &mode, &prompts));
    let ((sequential_out, sequential), wall_s) =
        time_best(3, || serve_sequential(&lm, &mode, &prompts));
    assert_eq!(
        batched_out, reference,
        "batched decoding must be bit-identical"
    );
    assert_eq!(
        sequential_out, reference,
        "sequential decoding must be bit-identical"
    );

    let ratio = sequential.report.gemm_groups as f64 / batched.report.gemm_groups as f64;
    assert!(
        sequential.report.gemm_groups >= 2 * batched.report.gemm_groups,
        "continuous batching must coalesce at least 2x fewer GEMM groups \
         ({} sequential vs {} batched)",
        sequential.report.gemm_groups,
        batched.report.gemm_groups
    );

    println!("{{");
    println!("  \"bench\": \"serving_decode\",");
    println!("  \"layer\": \"onesa_core::serve::ServeEngine sessions + onesa_nn::models::TinyCausalLm\",");
    println!(
        "  \"model\": {{ \"vocab\": {}, \"layers\": {}, \"width\": {}, \"tied_head\": {} }},",
        lm.vocab(),
        lm.layer_count(),
        lm.width(),
        lm.is_tied()
    );
    println!(
        "  \"workload\": {{ \"sessions\": {SESSIONS}, \"prompt_len\": {PROMPT_LEN}, \
         \"tokens_per_session\": {TOKENS} }},"
    );
    println!("  \"array\": \"8x8 PEs x 16 MACs, 1 shard\",");
    println!("  \"schedules\": [");
    for (idx, (name, summary, wall)) in [
        ("continuous_batching", &batched, wall_b),
        ("sequential", &sequential, wall_s),
    ]
    .into_iter()
    .enumerate()
    {
        println!("    {{");
        println!("      \"schedule\": \"{name}\",");
        println!(
            "      \"gemm_groups\": {}, \"windows\": {},",
            summary.report.gemm_groups, summary.windows
        );
        println!(
            "      \"modeled_makespan_ms\": {:.4}, \"modeled_decode_tokens_per_s\": {:.0},",
            summary.report.batched_seconds * 1e3,
            summary.decode.tokens as f64 / summary.report.batched_seconds
        );
        println!(
            "      \"decode_p50_us\": {:.2}, \"decode_p95_us\": {:.2},",
            summary.decode.latency_percentile(50.0) * 1e6,
            summary.decode.latency_percentile(95.0) * 1e6
        );
        println!(
            "      \"wall_ms\": {:.3}, \"wall_decode_tokens_per_s\": {:.0}",
            wall * 1e3,
            summary.decode.tokens as f64 / wall
        );
        println!("    }}{}", if idx == 0 { "," } else { "" });
    }
    println!("  ],");
    println!("  \"coalescing_ratio\": {ratio:.2},");
    println!(
        "  \"stable_quantity\": \"gemm_groups, coalescing_ratio and modeled_* are deterministic \
         (coalescing_ratio >= 2 asserted); wall_* follows the host; token streams asserted \
         bit-identical to the no-cache generate_direct reference\""
    );
    println!("}}");
}
