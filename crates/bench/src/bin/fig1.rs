//! Regenerates the paper's Fig1 (see onesa-bench lib docs).
fn main() {
    print!("{}", onesa_bench::fig1_report());
}
