//! Emits the `BENCH_gemm_parallel.json` perf baseline: sequential versus
//! threaded host GEMM throughput at three sizes.
//!
//! ```sh
//! cargo run --release -q -p onesa-bench --bin gemm_parallel > BENCH_gemm_parallel.json
//! ```
//!
//! The committed copy at the repository root records the trajectory later
//! performance PRs must beat. Wall-clock numbers are machine-dependent;
//! the `speedup_threads4` ratios are the stable quantity.

use onesa_bench::time_best;
use onesa_tensor::parallel::{self, Parallelism};
use onesa_tensor::rng::Pcg32;

fn main() {
    let mut rng = Pcg32::seed_from_u64(2024);
    let sizes = [128usize, 256, 512];
    println!("{{");
    println!("  \"bench\": \"gemm_parallel\",");
    println!("  \"kernel\": \"onesa_tensor::parallel::matmul\",");
    println!("  \"host_workers\": {},", Parallelism::Auto.worker_count());
    println!("  \"sizes\": [");
    for (idx, &d) in sizes.iter().enumerate() {
        let a = rng.randn(&[d, d], 1.0);
        let b = rng.randn(&[d, d], 1.0);
        let gflop = 2.0 * (d * d * d) as f64 / 1e9;
        let (_, seq) = time_best(5, || {
            parallel::matmul(&a, &b, Parallelism::Sequential).expect("square matmul")
        });
        let (_, thr) = time_best(5, || {
            parallel::matmul(&a, &b, Parallelism::Threads(4)).expect("square matmul")
        });
        println!("    {{");
        println!("      \"m\": {d}, \"k\": {d}, \"n\": {d},");
        println!(
            "      \"seq_ms\": {:.3}, \"seq_gflops\": {:.2},",
            seq * 1e3,
            gflop / seq
        );
        println!(
            "      \"threads4_ms\": {:.3}, \"threads4_gflops\": {:.2},",
            thr * 1e3,
            gflop / thr
        );
        println!("      \"speedup_threads4\": {:.2}", seq / thr);
        println!("    }}{}", if idx + 1 < sizes.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
}
