//! Emits the `BENCH_serving_cross_host.json` perf baseline: one mixed
//! request queue served by identical 2-shard pools under the three
//! shard backends — in-process threads, worker processes over
//! Unix-domain sockets, and worker processes over TCP.
//!
//! ```sh
//! cargo build --release   # the worker binary must exist
//! cargo run --release -q -p onesa-bench --bin serving_cross_host > BENCH_serving_cross_host.json
//! ```
//!
//! The committed copy at the repository root records the wire overhead
//! trajectory later serving PRs must not regress. Number families:
//!
//! * `modeled_*` — simulated-array makespan. **Identical across
//!   backends by construction** (the wire moves bits, not math): the
//!   JSON asserts this, making the file a correctness record too.
//! * `wall_*` — host wall-clock, machine-dependent; `wire_overhead`
//!   is each socket backend's wall time relative to in-process.
//! * `weight_cache` — how many program sends shipped constants versus
//!   riding a fingerprint reference, and the bytes that elision saved.

use onesa_bench::time_best;
use onesa_core::plan::Compile;
use onesa_core::serve::{
    AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, ShardBackend, Ticket,
};
use onesa_core::{
    default_worker_path, Parallelism, ProcessConfig, Request, ServeSummary, Transport,
};
use onesa_cpwl::NonlinearFn;
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::SmallCnn;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use std::time::Instant;

/// The queue: 12 shared-weight GEMMs, 6 nonlinears, 6 submissions of
/// one compiled CNN program (weight-cache fodder).
fn build_mix() -> Vec<Request> {
    let mut rng = Pcg32::seed_from_u64(2027);
    let w1 = rng.randn(&[128, 64], 1.0);
    let w2 = rng.randn(&[128, 96], 1.0);
    let mut requests = Vec::new();
    for i in 0..12 {
        let a = rng.randn(&[8 + (i % 4) * 8, 128], 1.0);
        requests.push(Request::gemm(a, [&w1, &w2][i % 2].clone()));
    }
    for i in 0..6 {
        let func = if i % 2 == 0 {
            NonlinearFn::Gelu
        } else {
            NonlinearFn::Sigmoid
        };
        requests.push(Request::nonlinear(func, rng.randn(&[16, 32], 1.5)));
    }
    let cnn = SmallCnn::new(7, 1, 4);
    let mode = InferenceMode::cpwl(0.25).expect("paper granularity");
    let program = cnn.compile((&mode, (8, 8))).expect("CNN compiles");
    for _ in 0..6 {
        let x = rng.randn(&[1, 8, 8], 1.0);
        requests.push(Request::program(program.clone(), vec![x]));
    }
    requests
}

/// One pool lifetime (paused pre-load → resume → wait → finish).
fn serve_once(backend: &ShardBackend, requests: &[Request]) -> (ServeSummary, f64) {
    let pool = ServeEngine::start(
        ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
            .with_admission(AdmissionPolicy::Fifo { window: 8 })
            .with_routing(RoutePolicy::RoundRobin)
            .start_paused()
            .with_backend(backend.clone()),
    )
    .expect("pool starts");
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| pool.submit(r.clone()).expect("queue open"))
        .collect();
    let t0 = Instant::now();
    pool.resume();
    for t in tickets {
        t.wait().expect("request served");
    }
    let summary = pool.finish().expect("pool drains cleanly");
    (summary, t0.elapsed().as_secs_f64())
}

fn main() {
    assert!(
        default_worker_path().is_some(),
        "onesa-shard-worker binary not found; run `cargo build --release` first \
         (or set ONESA_SHARD_WORKER)"
    );
    let requests = build_mix();
    let n = requests.len();
    let backends = [
        ("in_process", ShardBackend::InProcess),
        (
            "unix_socket",
            ShardBackend::Process(ProcessConfig::new(Transport::Unix)),
        ),
        (
            "tcp_socket",
            ShardBackend::Process(ProcessConfig::new(Transport::Tcp)),
        ),
    ];
    // Best-of-3 on wall time; worker spawn + handshake are inside the
    // pool lifetime on purpose (that IS the cross-host cost).
    let runs: Vec<(ServeSummary, f64)> = backends
        .iter()
        .map(|(_, b)| time_best(3, || serve_once(b, &requests)).0)
        .collect();
    let makespan_0 = runs[0].0.report.batched_seconds;
    for (summary, _) in &runs {
        assert_eq!(
            summary.report.batched_seconds.to_bits(),
            makespan_0.to_bits(),
            "modeled makespan must be identical across shard backends"
        );
    }
    let wall_0 = runs[0].1;

    println!("{{");
    println!("  \"bench\": \"serving_cross_host\",");
    println!("  \"layer\": \"onesa_core::serve::ServeEngine + onesa_core::net\",");
    println!("  \"host_workers\": {},", Parallelism::Auto.worker_count());
    println!("  \"array\": \"8x8 PEs x 16 MACs per shard, 2 shards\",");
    println!("  \"admission\": \"fifo(window=8)\", \"routing\": \"round_robin\",");
    println!(
        "  \"mix\": {{ \"requests\": {n}, \"gemm\": 12, \"nonlinear\": 6, \
         \"program\": 6, \"distinct_programs\": 1 }},"
    );
    println!("  \"backends\": [");
    for (idx, ((name, _), (summary, wall))) in backends.iter().zip(&runs).enumerate() {
        let cache = summary.wire_cache;
        println!("    {{");
        println!("      \"backend\": \"{name}\",");
        println!(
            "      \"wall_ms\": {:.3}, \"wall_rps\": {:.0}, \"wire_overhead\": {:.2},",
            wall * 1e3,
            n as f64 / wall,
            wall / wall_0
        );
        println!(
            "      \"modeled_makespan_ms\": {:.4}, \"modeled_rps\": {:.0},",
            summary.report.batched_seconds * 1e3,
            n as f64 / summary.report.batched_seconds
        );
        println!(
            "      \"weight_cache\": {{ \"full_sends\": {}, \"ref_sends\": {}, \
             \"hit_ratio\": {:.2}, \"const_bytes_saved\": {} }}",
            cache.full_sends,
            cache.ref_sends,
            cache.hit_ratio(),
            cache.const_bytes_saved
        );
        println!("    }}{}", if idx + 1 < backends.len() { "," } else { "" });
    }
    println!("  ],");
    println!(
        "  \"stable_quantity\": \"modeled_* is bit-identical across backends (asserted); \
         wall_* and wire_overhead follow the host\""
    );
    println!("}}");
}
