//! Regenerates the paper's Fig10 (see onesa-bench lib docs).
fn main() {
    print!("{}", onesa_bench::fig10_report());
}
