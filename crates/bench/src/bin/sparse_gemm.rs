//! Emits the `BENCH_sparse_gemm.json` perf baseline: dense versus
//! packed column-block-sparse GEMM at three sizes and a block-density
//! sweep.
//!
//! ```sh
//! cargo run --release -q -p onesa-bench --bin sparse_gemm > BENCH_sparse_gemm.json
//! ```
//!
//! The committed copy at the repository root records the trajectory
//! later performance PRs must beat. Wall-clock numbers are
//! machine-dependent; the `speedup_sparse` ratios and the modeled
//! `mac_credit` column are the stable quantities. The bin asserts its
//! own acceptance floor so the CI bench-smoke job enforces it:
//!
//! * at 512³ and ≤ 50% block density, the sparse kernel is ≥ 1.5×
//!   the dense kernel;
//! * the modeled-MAC credit (what `Op::Gemm`'s sparsity attribute
//!   takes off `modeled_macs`) is at least the measured block-skip
//!   fraction — admission budgets never under-credit pruned work.

use onesa_bench::time_best;
use onesa_plan::PRUNE_BLOCK_COLS;
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::sparse::{self, column_block_stats, SparseTensor};
use onesa_tensor::Tensor;

/// Zeroes column blocks of `b` so roughly `density` of them stay live
/// (block `i` survives iff `i % 4 < density·4`, so quarters sweep
/// exactly).
fn thin(b: &mut Tensor, density: f64) {
    let dims = b.dims().to_vec();
    let (rows, cols) = (dims[0], dims[1]);
    let live_per_4 = (density * 4.0).round() as usize;
    let data = b.as_mut_slice();
    for blk in 0..cols / PRUNE_BLOCK_COLS {
        if blk % 4 < live_per_4 {
            continue;
        }
        let j0 = blk * PRUNE_BLOCK_COLS;
        for r in 0..rows {
            data[r * cols + j0..r * cols + j0 + PRUNE_BLOCK_COLS].fill(0.0);
        }
    }
}

fn main() {
    let mut rng = Pcg32::seed_from_u64(2026);
    let sizes = [128usize, 256, 512];
    let densities = [1.0f64, 0.75, 0.5, 0.25];
    println!("{{");
    println!("  \"bench\": \"sparse_gemm\",");
    println!("  \"kernel\": \"onesa_tensor::sparse::matmul\",");
    println!("  \"block_cols\": {PRUNE_BLOCK_COLS},");
    println!("  \"sweep\": [");
    let entries = sizes.len() * densities.len();
    let mut emitted = 0;
    for &d in &sizes {
        let a = rng.randn(&[d, d], 1.0);
        let dense_b = rng.randn(&[d, d], 1.0);
        for &density in &densities {
            let mut b = dense_b.clone();
            thin(&mut b, density);
            let (nnz_blocks, total_blocks, nnz_cols) =
                column_block_stats(&b, PRUNE_BLOCK_COLS).expect("matrix");
            let packed = SparseTensor::from_dense(&b, PRUNE_BLOCK_COLS).expect("packs");
            let (dense_out, dense_s) = time_best(5, || {
                onesa_tensor::parallel::matmul(&a, &b, Parallelism::Sequential).expect("gemm")
            });
            let (sparse_out, sparse_s) = time_best(5, || {
                sparse::matmul(&a, &packed, Parallelism::Sequential).expect("sparse gemm")
            });
            assert_eq!(
                dense_out.as_slice(),
                sparse_out.as_slice(),
                "sparse kernel must stay bit-identical to dense"
            );
            // Skipped share of the modeled cost vs of the blocks: the
            // plan layer credits macs by nnz_cols, so the credit can
            // only exceed the block fraction (ragged last block).
            let mac_credit = 1.0 - nnz_cols as f64 / d as f64;
            let block_skip = 1.0 - nnz_blocks as f64 / total_blocks as f64;
            assert!(
                mac_credit + 1e-12 >= block_skip,
                "modeled credit {mac_credit} under-credits skip fraction {block_skip}"
            );
            let speedup = dense_s / sparse_s;
            if d == 512 && density <= 0.5 {
                assert!(
                    speedup >= 1.5,
                    "sparse kernel only {speedup:.2}x at {density} density, need 1.5x"
                );
            }
            emitted += 1;
            println!("    {{");
            println!("      \"m\": {d}, \"k\": {d}, \"n\": {d},");
            println!(
                "      \"block_density\": {density}, \"nnz_blocks\": {nnz_blocks}, \"total_blocks\": {total_blocks},"
            );
            println!(
                "      \"dense_ms\": {:.3}, \"sparse_ms\": {:.3},",
                dense_s * 1e3,
                sparse_s * 1e3
            );
            println!(
                "      \"mac_credit\": {:.4}, \"block_skip_fraction\": {:.4},",
                mac_credit, block_skip
            );
            println!("      \"speedup_sparse\": {:.2}", speedup);
            println!("    }}{}", if emitted < entries { "," } else { "" });
        }
    }
    println!("  ]");
    println!("}}");
}
