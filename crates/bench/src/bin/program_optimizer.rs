//! Emits the `BENCH_program_optimizer.json` baseline: optimizer-pass
//! op/MAC reductions per model family, and the zero-copy compile
//! cache's per-request setup time versus PR-4's recompile-every-call.
//!
//! ```sh
//! cargo run --release -q -p onesa-bench --bin program_optimizer > BENCH_program_optimizer.json
//! ```
//!
//! The headlines are deterministic on any host: pre/post op counts and
//! modeled MACs per [`onesa_core::plan::OptLevel`], with per-pass
//! elision/share/fusion counts. The `*_us_per_call` setup timings
//! follow the build machine — `setup_speedup` (recompile ÷ cached) is
//! the tracked ratio.

use onesa_core::plan::{Compile, OptLevel, OptReport, Program};
use onesa_nn::models::{Gcn, SmallCnn, TinyBert};
use onesa_nn::InferenceMode;
use onesa_tensor::rng::Pcg32;
use std::time::Instant;

fn passes_json(report: &OptReport) -> String {
    let fields: Vec<String> = report
        .passes
        .iter()
        .map(|p| format!("\"{}\": {}", p.pass, p.removed))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn program_entry(name: &str, raw: &Program, last: bool) {
    let std = raw.optimize(OptLevel::Standard).expect("optimizes");
    let fused = raw.optimize(OptLevel::Fusion).expect("optimizes");
    let std_report = std.opt_report().expect("report");
    let fused_report = fused.opt_report().expect("report");
    println!("    {{");
    println!("      \"program\": \"{name}\",");
    println!(
        "      \"ops\": {{\"unoptimized\": {}, \"standard\": {}, \"fusion\": {}}},",
        raw.stages(),
        std.stages(),
        fused.stages()
    );
    println!(
        "      \"modeled_macs\": {{\"unoptimized\": {}, \"standard\": {}, \"fusion\": {}}},",
        raw.modeled_macs(),
        std.modeled_macs(),
        fused.modeled_macs()
    );
    println!("      \"passes_standard\": {},", passes_json(std_report));
    println!("      \"passes_fusion\": {},", passes_json(fused_report));
    println!(
        "      \"op_cut_standard\": {:.4}, \"op_cut_fusion\": {:.4}",
        std_report.ops_removed_fraction(),
        fused_report.ops_removed_fraction()
    );
    println!("    }}{}", if last { "" } else { "," });
}

fn main() {
    let mode = InferenceMode::cpwl(0.25).expect("valid granularity");
    let cnn = SmallCnn::new(11, 1, 3);
    let bert = TinyBert::new(5, 32, 12, 2, 2);
    let graph =
        onesa_data::GraphDataset::generate("bench", 4, onesa_data::Difficulty::easy(3), 20, 6, 0.3);
    let gcn = Gcn::new(6, 6, 8, 3);
    let seq: Vec<usize> = vec![3, 1, 4, 1, 5, 9, 2, 6];

    println!("{{");
    println!("  \"bench\": \"program_optimizer\",");
    println!(
        "  \"layer\": \"onesa_plan::opt pass pipeline + CompileCache (zero-copy Arc consts)\","
    );
    println!("  \"mode\": \"cpwl(0.25,int16)\",");
    println!("  \"programs\": [");
    program_entry(
        "small_cnn 8x8",
        &cnn.compile((&mode, (8, 8))).expect("CNN compiles"),
        false,
    );
    program_entry(
        "tiny_bert L=8 x2 blocks",
        &bert.compile((&mode, seq.len())).expect("BERT compiles"),
        false,
    );
    program_entry(
        "gcn 20 nodes",
        &gcn.compile((&mode, &graph)).expect("GCN compiles"),
        true,
    );
    println!("  ],");

    // ---- per-request setup: recompile-every-call (PR-4) vs cached ----
    // The recompile path re-emits the operator graph and deep-copies
    // every weight into Program::consts on each call; the cached path
    // clones an Arc-backed program out of the model's CompileCache.
    let calls = 200usize;
    let t0 = Instant::now();
    for _ in 0..calls {
        let p = cnn.compile((&mode, (8, 8))).expect("CNN compiles");
        std::hint::black_box(&p);
    }
    let recompile_us = t0.elapsed().as_secs_f64() * 1e6 / calls as f64;

    let x = Pcg32::seed_from_u64(1).randn(&[1, 8, 8], 1.0);
    let _ = cnn.logits(&x, &mode); // warm the cache (one compile)
    let cache = cnn.compile_cache();
    let t0 = Instant::now();
    for _ in 0..calls {
        let p = cache
            .get_or_compile(mode.eval_mode(), x.dims(), 0, || unreachable!("warm"))
            .expect("cache hit");
        std::hint::black_box(&p);
    }
    let cached_us = t0.elapsed().as_secs_f64() * 1e6 / calls as f64;

    println!("  \"compile_cache\": {{");
    println!("    \"model\": \"small_cnn cpwl(0.25,int16) 8x8\", \"calls\": {calls},");
    println!(
        "    \"recompile_us_per_call\": {:.2}, \"cached_us_per_call\": {:.2},",
        recompile_us, cached_us
    );
    println!(
        "    \"setup_speedup\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}",
        recompile_us / cached_us.max(1e-9),
        cache.hits(),
        cache.misses()
    );
    println!("  }},");
    println!(
        "  \"stable_quantity\": \"ops / modeled_macs / pass counts (deterministic); \
         setup_speedup is the tracked ratio, *_us_per_call follow the host\""
    );
    println!("}}");
}
