//! Emits the `BENCH_program_serving.json` baseline: whole-network
//! Program-IR requests through `BatchEngine`'s staged scheduler at
//! increasing concurrency, plus a sharded `ServeEngine` affinity run.
//!
//! ```sh
//! cargo run --release -q -p onesa-bench --bin program_serving > BENCH_program_serving.json
//! ```
//!
//! The headline is the **modeled per-stage coalescing speedup** — the
//! simulated-array time of N concurrent compiled networks (shared-weight
//! GEMM stacking + shared-table IPF concatenation at every coalescable
//! stage) versus N uncoalesced solo runs. Like every `BENCH_*.json`
//! modeled quantity it is deterministic on any host; `wall_ms` follows
//! the build machine and is context only.

use onesa_bench::time_best;
use onesa_core::plan::{Compile, OptLevel};
use onesa_core::serve::{AdmissionPolicy, RoutePolicy, ServeConfig, ServeEngine, Ticket};
use onesa_core::{BatchEngine, BatchRun, OneSa, Parallelism};
use onesa_nn::models::SmallCnn;
use onesa_nn::InferenceMode;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

fn batch_run(program: &onesa_core::Program, xs: &[Tensor]) -> BatchRun {
    let mut engine =
        BatchEngine::new(OneSa::new(ArrayConfig::new(8, 16)), 0.25).expect("valid granularity");
    for x in xs {
        engine
            .submit_program(program.clone(), vec![x.clone()])
            .expect("program validates");
    }
    engine.run().expect("programs execute")
}

fn main() {
    let mode = InferenceMode::cpwl(0.25).expect("valid granularity");
    let cnn = SmallCnn::new(11, 1, 3);
    // Serve what production serves: the default-level optimized program
    // (bit-identical to the raw emission; the duplicate residual-skip
    // boundary elided).
    let program = cnn
        .compile_optimized((&mode, (8, 8)), OptLevel::Standard)
        .expect("CNN compiles");
    let mut rng = Pcg32::seed_from_u64(2026);
    let inputs: Vec<Tensor> = (0..8).map(|_| rng.randn(&[1, 8, 8], 1.0)).collect();

    // Solo baseline: one program per engine run — nothing coalesces.
    let (solo, _) = time_best(3, || batch_run(&program, &inputs[..1]));
    let solo_seconds = solo.report.batched_seconds;
    let solo_groups: usize = solo.program_stages.iter().map(|s| s.groups).sum();

    println!("{{");
    println!("  \"bench\": \"program_serving\",");
    println!("  \"layer\": \"onesa_core::plan staged scheduler (BatchEngine::submit_program)\",");
    println!(
        "  \"program\": \"small_cnn cpwl(0.25,int16), {} stages\",",
        program.stages()
    );
    println!(
        "  \"modeled_macs_per_request\": {},",
        program.modeled_macs()
    );
    println!("  \"array\": \"8x8 PEs x 16 MACs\",");
    println!("  \"configs\": [");
    let concurrencies = [1usize, 2, 4, 8];
    for (idx, &n) in concurrencies.iter().enumerate() {
        let (run, wall) = time_best(3, || batch_run(&program, &inputs[..n]));
        let coalesced_stages = run
            .program_stages
            .iter()
            .filter(|s| s.groups < s.ops)
            .count();
        let groups: usize = run.program_stages.iter().map(|s| s.groups).sum();
        println!("    {{");
        println!("      \"concurrent_programs\": {n},");
        println!(
            "      \"kernel_groups\": {groups}, \"uncoalesced_groups\": {}, \
             \"stages_coalesced\": {coalesced_stages},",
            n * solo_groups
        );
        println!(
            "      \"gemm_groups\": {}, \"nonlinear_groups\": {},",
            run.report.gemm_groups, run.report.nonlinear_groups
        );
        println!(
            "      \"array_ms\": {:.4}, \"modeled_coalescing_speedup\": {:.3},",
            run.report.batched_seconds * 1e3,
            n as f64 * solo_seconds / run.report.batched_seconds
        );
        println!("      \"wall_ms\": {:.3}", wall * 1e3);
        println!(
            "    }}{}",
            if idx + 1 < concurrencies.len() {
                ","
            } else {
                ""
            }
        );
    }
    println!("  ],");

    // Sharded affinity run: same 8 programs through a 2-shard pool.
    let serve_once = || {
        let pool = ServeEngine::start(
            ServeConfig::uniform(2, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Fifo { window: 16 })
                .with_routing(RoutePolicy::WeightAffinity)
                .start_paused(),
        )
        .expect("valid pool");
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| {
                pool.submit_program(program.clone(), vec![x.clone()])
                    .expect("queue open")
            })
            .collect();
        pool.resume();
        for t in tickets {
            t.wait().expect("request served");
        }
        pool.finish().expect("pool drains cleanly")
    };
    let (summary, wall) = time_best(3, serve_once);
    println!("  \"serve_pool\": {{");
    println!("    \"shards\": 2, \"routing\": \"weight_affinity\", \"requests\": 8,");
    println!(
        "    \"gemm_groups\": {}, \"modeled_speedup\": {:.3}, \"expired\": {}, \"wall_ms\": {:.3}",
        summary.report.gemm_groups,
        summary.modeled_speedup(),
        summary.expired,
        wall * 1e3
    );
    println!("  }},");
    println!(
        "  \"stable_quantity\": \"kernel_groups / modeled_coalescing_speedup (simulated array); \
         wall_ms follows the host\""
    );
    println!("}}");
}
