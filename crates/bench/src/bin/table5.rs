//! Regenerates the paper's Table5 (see onesa-bench lib docs).
fn main() {
    print!("{}", onesa_bench::table5_report());
}
