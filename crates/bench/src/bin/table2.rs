//! Regenerates the paper's Table2 (see onesa-bench lib docs).
fn main() {
    print!("{}", onesa_bench::table2_report());
}
