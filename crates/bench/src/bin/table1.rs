//! Regenerates the paper's Table1 (see onesa-bench lib docs).
fn main() {
    print!("{}", onesa_bench::table1_report());
}
