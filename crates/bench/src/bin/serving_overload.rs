//! Emits the `BENCH_serving_overload.json` overload baseline: a
//! saturation sweep over past-deadline traffic comparing a plain
//! drop-on-expiry pool against the same pool with a degrade ladder,
//! plus a low-load energy comparison of an always-on versus an elastic
//! ([`PoolPolicy::Elastic`]) shard pool.
//!
//! ```sh
//! cargo run --release -q -p onesa-bench --bin serving_overload > BENCH_serving_overload.json
//! ```
//!
//! The committed copy at the repository root records the
//! degrade-don't-drop contract later serving PRs must not regress.
//! Number families:
//!
//! * `expired` / `degraded_fraction` / `goodput_per_modeled_s` —
//!   deterministic admission outcomes. At every saturation level > 0
//!   the bin **asserts** the baseline expires some requests while the
//!   ladder serves 100% of admitted traffic (`expired == 0`,
//!   `degraded_fraction > 0`), every degraded answer bit-identical to a
//!   solo run compiled directly at the served rung.
//! * `energy` — modeled joules per request for the same low-load
//!   trickle on an always-on and an elastic pool; the elastic pool is
//!   **asserted** to cost no more, with bit-identical outputs.
//! * `wall_ms` — host wall-clock, machine-dependent.

use onesa_bench::time_best;
use onesa_core::plan::{Compile, TableCache};
use onesa_core::serve::{
    AdmissionPolicy, DegradePolicy, PoolPolicy, RoutePolicy, ServeConfig, ServeEngine, ServeError,
    ServeSummary,
};
use onesa_core::{Parallelism, Program, Request};
use onesa_nn::infer::InferenceMode;
use onesa_nn::models::SmallCnn;
use onesa_sim::ArrayConfig;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

const REQUESTS: usize = 12;
const SHARDS: usize = 2;
const WINDOW: usize = 4;
const LADDER: [f32; 2] = [0.5, 1.0];
/// Fraction of the burst whose deadline is already in the past when the
/// admission gate opens — the saturation knob.
const LEVELS: [f64; 3] = [0.0, 0.5, 1.0];

struct Run {
    summary: ServeSummary,
    wall: f64,
}

/// One staged burst: the first `expired_count` requests carry
/// `deadline: 0` (already past once the gate opens), the rest none.
/// Outputs are checked bit-identical to the solo oracle at whichever
/// granularity each request was served.
fn burst(
    program: &Program,
    coarse: &Program,
    xs: &[Tensor],
    expired_count: usize,
    ladder: Option<&[f32]>,
) -> Run {
    let (summary, wall) = time_best(3, || {
        let mut cfg =
            ServeConfig::uniform(SHARDS, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Deadline {
                    window: WINDOW,
                    drop_expired: true,
                })
                .start_paused();
        if let Some(rungs) = ladder {
            cfg = cfg.with_degrade(DegradePolicy::new(rungs.to_vec()));
        }
        let pool = ServeEngine::start(cfg).expect("pool starts");
        let tickets: Vec<_> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let request = Request::program(program.clone(), vec![x.clone()]);
                if i < expired_count {
                    pool.submit_with_deadline(request, 0).expect("queue open")
                } else {
                    pool.submit(request).expect("queue open")
                }
            })
            .collect();
        // Let the admission clock pass deadline 0 before the gate opens.
        std::thread::sleep(std::time::Duration::from_millis(2));
        pool.resume();
        let mut cache = TableCache::new();
        for (i, (t, x)) in tickets.into_iter().zip(xs).enumerate() {
            match t.wait() {
                Ok(served) => {
                    let solo_program = match served.degrade {
                        Some(d) => {
                            assert_eq!(d.served, *LADDER.last().unwrap());
                            coarse
                        }
                        None => program,
                    };
                    let solo = solo_program
                        .run(std::slice::from_ref(x), Parallelism::Sequential, &mut cache)
                        .expect("solo oracle");
                    assert!(
                        served
                            .output
                            .as_slice()
                            .iter()
                            .zip(solo.output.as_slice())
                            .all(|(g, w)| g.to_bits() == w.to_bits()),
                        "request {i} not bit-identical to its solo oracle"
                    );
                }
                Err(ServeError::DeadlineExpired { .. }) => {
                    assert!(ladder.is_none(), "the ladder must never drop a program");
                    assert!(i < expired_count, "only past-deadline requests expire");
                }
                Err(e) => panic!("request {i}: {e:?}"),
            }
        }
        pool.finish().expect("clean shutdown")
    });
    Run { summary, wall }
}

/// Serial low-load trickle through a 4-shard energy-aware pool.
fn trickle(program: &Program, xs: &[Tensor], pool: PoolPolicy) -> (Vec<Tensor>, Run) {
    let ((outputs, summary), wall) = time_best(3, || {
        let engine = ServeEngine::start(
            ServeConfig::uniform(4, ArrayConfig::new(8, 16), Parallelism::Sequential)
                .with_admission(AdmissionPolicy::Fifo { window: 2 })
                .with_routing(RoutePolicy::EnergyAware)
                .with_pool(pool),
        )
        .expect("pool starts");
        let outputs: Vec<Tensor> = xs
            .iter()
            .map(|x| {
                engine
                    .submit(Request::program(program.clone(), vec![x.clone()]))
                    .expect("queue open")
                    .wait()
                    .expect("served")
                    .output
            })
            .collect();
        (outputs, engine.finish().expect("clean shutdown"))
    });
    (outputs, Run { summary, wall })
}

fn goodput(summary: &ServeSummary) -> f64 {
    if summary.report.batched_seconds > 0.0 {
        summary.report.requests as f64 / summary.report.batched_seconds
    } else {
        0.0
    }
}

fn main() {
    let cnn = SmallCnn::new(7, 1, 4);
    let mode = InferenceMode::cpwl(0.25).expect("paper granularity");
    let program = cnn.compile((&mode, (8, 8))).expect("compiles");
    let coarse = program
        .with_granularity(*LADDER.last().unwrap())
        .expect("coarsest rung");
    let mut rng = Pcg32::seed_from_u64(2026);
    let xs: Vec<Tensor> = (0..REQUESTS).map(|_| rng.randn(&[1, 8, 8], 1.0)).collect();

    println!("{{");
    println!("  \"bench\": \"serving_overload\",");
    println!("  \"layer\": \"onesa_core::serve::ServeEngine degrade ladder + elastic pool\",");
    println!("  \"model\": \"SmallCnn 8x8, cpwl granularity 0.25, ladder {LADDER:?}\",");
    println!(
        "  \"workload\": {{ \"requests\": {REQUESTS}, \"shards\": {SHARDS}, \
         \"window\": {WINDOW} }},"
    );
    println!("  \"array\": \"8x8 PEs x 16 MACs\",");
    println!("  \"saturation_sweep\": [");
    for (idx, &level) in LEVELS.iter().enumerate() {
        let expired_count = (level * REQUESTS as f64).round() as usize;
        let baseline = burst(&program, &coarse, &xs, expired_count, None);
        let ladder = burst(&program, &coarse, &xs, expired_count, Some(&LADDER));

        // The degrade-don't-drop contract, checked at every level.
        assert_eq!(ladder.summary.expired, 0, "the ladder serves everything");
        assert_eq!(ladder.summary.report.requests, REQUESTS);
        assert_eq!(baseline.summary.expired, expired_count);
        if expired_count > 0 {
            assert!(
                baseline.summary.expired > 0 && ladder.summary.degraded_fraction() > 0.0,
                "at saturation the baseline drops while the ladder degrades"
            );
        } else {
            assert_eq!(ladder.summary.degraded, 0, "no pressure, no degrade");
        }

        println!("    {{");
        println!("      \"past_deadline_fraction\": {level},");
        for (name, run, comma) in [
            ("baseline", &baseline, ","),
            ("degrade_ladder", &ladder, ""),
        ] {
            println!("      \"{name}\": {{");
            println!(
                "        \"served\": {}, \"expired\": {}, \"degraded\": {},",
                run.summary.report.requests, run.summary.expired, run.summary.degraded
            );
            println!(
                "        \"degraded_fraction\": {:.3}, \"goodput_per_modeled_s\": {:.0},",
                run.summary.degraded_fraction(),
                goodput(&run.summary)
            );
            println!(
                "        \"modeled_mj_per_request\": {:.4}, \"wall_ms\": {:.3}",
                run.summary.modeled_joules_per_request() * 1e3,
                run.wall * 1e3
            );
            println!("      }}{comma}");
        }
        println!("    }}{}", if idx + 1 < LEVELS.len() { "," } else { "" });
    }
    println!("  ],");

    // Low-load energy: fixed vs elastic pool on the same serial trickle.
    let (fixed_out, fixed) = trickle(&program, &xs, PoolPolicy::AlwaysOn);
    let (elastic_out, elastic) = trickle(
        &program,
        &xs,
        PoolPolicy::Elastic {
            min_active: 1,
            scale_up_depth: 4,
            idle_windows: 1,
        },
    );
    for (f, e) in fixed_out.iter().zip(&elastic_out) {
        assert!(
            f.as_slice()
                .iter()
                .zip(e.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "power management must never change outputs"
        );
    }
    assert!(
        elastic.summary.power.modeled_joules <= fixed.summary.power.modeled_joules,
        "the elastic pool must not burn more modeled energy at low load"
    );
    assert!(
        elastic.summary.power.off_shard_windows > 0,
        "unused shards must park"
    );

    println!("  \"low_load_energy\": {{");
    println!("    \"workload\": \"serial trickle of {REQUESTS} requests, 4 shards, EnergyAware routing\",");
    for (name, run) in [("always_on", &fixed), ("elastic", &elastic)] {
        let p = &run.summary.power;
        println!("    \"{name}\": {{");
        println!(
            "      \"modeled_mj\": {:.4}, \"modeled_mj_per_request\": {:.4},",
            p.modeled_joules * 1e3,
            run.summary.modeled_joules_per_request() * 1e3
        );
        println!(
            "      \"shard_windows\": {{ \"active\": {}, \"idle\": {}, \"off\": {} }},",
            p.active_shard_windows, p.idle_shard_windows, p.off_shard_windows
        );
        println!(
            "      \"power_ups\": {}, \"power_downs\": {}, \"wall_ms\": {:.3}",
            p.power_ups,
            p.power_downs,
            run.wall * 1e3
        );
        println!("    }},");
    }
    println!(
        "    \"elastic_saving_fraction\": {:.3}",
        1.0 - elastic.summary.power.modeled_joules / fixed.summary.power.modeled_joules
    );
    println!("  }}");
    println!("}}");
}
