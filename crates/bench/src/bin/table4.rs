//! Regenerates the paper's Table4 (see onesa-bench lib docs).
fn main() {
    print!("{}", onesa_bench::table4_report());
}
