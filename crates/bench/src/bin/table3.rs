//! Regenerates Table III (accuracy vs granularity). Pass `--quick` for a
//! reduced run (CI-sized datasets and epochs).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", onesa_bench::table3_report(quick));
}
