//! Baseline processor models for the Table IV comparison.
//!
//! The paper compares ONE-SA against general-purpose processors it
//! *measured* (Intel i7-11700, NVIDIA 3090Ti, NVIDIA AGX Orin) and four
//! published fixed-function FPGA accelerators (Angel-eye, a VGG16
//! accelerator on VX690T, NPE, FTRANS). None of that hardware is
//! available here, so each baseline is an **effective-throughput model**:
//! the sustained GOPS per network family and the power envelope are taken
//! from the paper's own Table IV measurements / the accelerators' papers,
//! and latency is `total MACs / sustained throughput`. That keeps the
//! baselines anchored to published data while ONE-SA's own column comes
//! from this repository's simulator — the quantity actually under test.
//!
//! The fixed-function accelerators only support their network family;
//! [`Processor::latency_s`] returns `None` elsewhere, which *is* the
//! flexibility contrast the paper draws.
//!
//! # Example
//!
//! ```
//! use onesa_baselines::{cpu_i7_11700, table4_baselines};
//!
//! let cpu = cpu_i7_11700();
//! assert!(cpu.power_w > 0.0 && cpu.cnn_gops.is_some());
//! // Table IV compares seven baseline devices.
//! assert_eq!(table4_baselines().len(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use onesa_nn::workloads::{ModelFamily, Workload};

/// A baseline processor's published characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    /// Device name as it appears in Table IV.
    pub name: &'static str,
    /// Technology node in nanometres.
    pub tech_nm: u32,
    /// Board/package power in watts.
    pub power_w: f64,
    /// Sustained throughput (GOPS, 1 op = 1 MAC) per family; `None`
    /// where the device does not support the family.
    pub cnn_gops: Option<f64>,
    /// Transformer throughput.
    pub transformer_gops: Option<f64>,
    /// GNN throughput.
    pub gnn_gops: Option<f64>,
}

impl Processor {
    /// Sustained throughput for a family.
    pub fn gops_for(&self, family: ModelFamily) -> Option<f64> {
        match family {
            ModelFamily::Cnn => self.cnn_gops,
            ModelFamily::Transformer => self.transformer_gops,
            ModelFamily::Gnn => self.gnn_gops,
        }
    }

    /// Inference latency for a workload in seconds (`None` if the device
    /// cannot run the family).
    pub fn latency_s(&self, w: &Workload) -> Option<f64> {
        let gops = self.gops_for(w.family)?;
        Some(w.total_macs() as f64 / (gops * 1e9))
    }

    /// Throughput per watt for a family (the paper's efficiency metric).
    pub fn gops_per_watt(&self, family: ModelFamily) -> Option<f64> {
        Some(self.gops_for(family)? / self.power_w)
    }

    /// Whether the device runs all three families (the flexibility the
    /// paper claims only ONE-SA and general-purpose processors have).
    pub fn is_flexible(&self) -> bool {
        self.cnn_gops.is_some() && self.transformer_gops.is_some() && self.gnn_gops.is_some()
    }
}

/// Intel i7-11700 (Table IV row 1; sustained GOPS as measured by the
/// paper's authors).
pub fn cpu_i7_11700() -> Processor {
    Processor {
        name: "Intel CPU i7-11700",
        tech_nm: 14,
        power_w: 112.0,
        cnn_gops: Some(93.51),
        transformer_gops: Some(119.77),
        gnn_gops: Some(33.99),
    }
}

/// NVIDIA GeForce RTX 3090 Ti.
pub fn gpu_3090ti() -> Processor {
    Processor {
        name: "NVIDIA GPU 3090Ti",
        tech_nm: 8,
        power_w: 131.0,
        cnn_gops: Some(633.99),
        transformer_gops: Some(691.81),
        gnn_gops: Some(743.45),
    }
}

/// NVIDIA Jetson AGX Orin.
pub fn soc_agx_orin() -> Processor {
    Processor {
        name: "NVIDIA SoC AGX ORIN",
        tech_nm: 12,
        power_w: 14.0,
        cnn_gops: Some(245.38),
        transformer_gops: Some(255.57),
        gnn_gops: Some(235.73),
    }
}

/// Angel-eye CNN accelerator on Zynq Z-7020 (Guo et al., TCAD'18).
pub fn angel_eye() -> Processor {
    Processor {
        name: "Zynq Z-7020 Angel-eye",
        tech_nm: 28,
        power_w: 3.5,
        cnn_gops: Some(84.3),
        transformer_gops: None,
        gnn_gops: None,
    }
}

/// The 200 MHz VGG16 accelerator on Virtex-7 VX690T (Mei et al.,
/// GlobalSIP'17).
pub fn vgg16_accel() -> Processor {
    Processor {
        name: "Virtex7 VGG16",
        tech_nm: 28,
        power_w: 10.81,
        cnn_gops: Some(202.42),
        transformer_gops: None,
        gnn_gops: None,
    }
}

/// NPE NLP overlay processor on Zynq Z-7100 (Khan et al.).
pub fn npe() -> Processor {
    Processor {
        name: "Zynq Z-7100 NPE",
        tech_nm: 28,
        power_w: 20.0,
        cnn_gops: None,
        transformer_gops: Some(405.30),
        gnn_gops: None,
    }
}

/// FTRANS transformer accelerator on Virtex UltraScale+ (Li et al.,
/// ISLPED'20).
pub fn ftrans() -> Processor {
    Processor {
        name: "Virtex UltraScale+ FTRANS",
        tech_nm: 16,
        power_w: 25.0,
        cnn_gops: None,
        transformer_gops: Some(559.85),
        gnn_gops: None,
    }
}

/// All Table IV baseline rows, in the paper's order.
pub fn table4_baselines() -> Vec<Processor> {
    vec![
        cpu_i7_11700(),
        gpu_3090ti(),
        soc_agx_orin(),
        angel_eye(),
        vgg16_accel(),
        npe(),
        ftrans(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesa_nn::workloads;

    #[test]
    fn cpu_latency_reproduces_paper_resnet_row() {
        // Paper: ResNet-50 on the i7-11700 takes 42.51 ms. Our workload
        // is ~4.0 GMACs at 93.51 GOPS → ≈ 43 ms.
        let cpu = cpu_i7_11700();
        let w = workloads::resnet50(224);
        let l = cpu.latency_s(&w).unwrap() * 1e3;
        assert!((35.0..50.0).contains(&l), "latency {l} ms");
    }

    #[test]
    fn fixed_accelerators_reject_other_families() {
        let bert = workloads::bert_base(64);
        let resnet = workloads::resnet50(224);
        assert!(angel_eye().latency_s(&bert).is_none());
        assert!(npe().latency_s(&resnet).is_none());
        assert!(ftrans().latency_s(&resnet).is_none());
        assert!(vgg16_accel().latency_s(&bert).is_none());
    }

    #[test]
    fn flexibility_flags() {
        assert!(cpu_i7_11700().is_flexible());
        assert!(gpu_3090ti().is_flexible());
        assert!(!angel_eye().is_flexible());
        assert!(!ftrans().is_flexible());
    }

    #[test]
    fn efficiency_ordering_matches_paper() {
        // SoC beats GPU beats CPU on throughput-per-watt for CNNs.
        let cpu = cpu_i7_11700().gops_per_watt(ModelFamily::Cnn).unwrap();
        let gpu = gpu_3090ti().gops_per_watt(ModelFamily::Cnn).unwrap();
        let soc = soc_agx_orin().gops_per_watt(ModelFamily::Cnn).unwrap();
        assert!(soc > gpu && gpu > cpu, "soc {soc} gpu {gpu} cpu {cpu}");
    }

    #[test]
    fn all_rows_present() {
        assert_eq!(table4_baselines().len(), 7);
    }
}
