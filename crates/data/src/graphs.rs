//! Synthetic citation-style graphs (Reddit / CORA / Pubmed / Citeseer
//! stand-ins) generated from a stochastic block model, for the GCN
//! accuracy experiments.

use crate::Difficulty;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

/// A node-classification graph dataset.
#[derive(Debug, Clone)]
pub struct GraphDataset {
    /// Dataset name (e.g. `"cora-like"`).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Feature dimension.
    pub features: usize,
    /// Number of classes (= SBM communities).
    pub classes: usize,
    /// Node feature matrix `[nodes, features]`.
    pub x: Tensor,
    /// Symmetrically normalized adjacency with self-loops,
    /// `D^{-1/2} (A + I) D^{-1/2}`, stored dense `[nodes, nodes]`.
    pub a_hat: Tensor,
    /// Node labels.
    pub y: Vec<usize>,
    /// Indices of training nodes.
    pub train_idx: Vec<usize>,
    /// Indices of test nodes.
    pub test_idx: Vec<usize>,
}

impl GraphDataset {
    /// Generates an SBM graph: nodes split evenly into
    /// `difficulty.classes` communities, intra-community edge probability
    /// `p_in`, inter `p_out = p_in · mix`, where `mix` grows with the
    /// difficulty noise. Node features are community prototypes plus
    /// Gaussian noise.
    pub fn generate(
        name: &str,
        seed: u64,
        difficulty: Difficulty,
        nodes: usize,
        features: usize,
        p_in: f32,
    ) -> Self {
        let classes = difficulty.classes;
        let mut rng = Pcg32::seed_from_u64(seed);
        let y: Vec<usize> = (0..nodes).map(|i| i % classes).collect();
        let mix = (0.08 + 0.3 * (difficulty.noise - 0.35)).clamp(0.02, 0.8);
        let p_out = p_in * mix;

        // Adjacency with self-loops.
        let mut adj = vec![0.0f32; nodes * nodes];
        for i in 0..nodes {
            adj[i * nodes + i] = 1.0;
            for j in (i + 1)..nodes {
                let p = if y[i] == y[j] { p_in } else { p_out };
                if rng.next_f32() < p {
                    adj[i * nodes + j] = 1.0;
                    adj[j * nodes + i] = 1.0;
                }
            }
        }
        // Symmetric normalization.
        let deg: Vec<f32> = (0..nodes)
            .map(|i| adj[i * nodes..(i + 1) * nodes].iter().sum::<f32>())
            .collect();
        let mut a_hat = vec![0.0f32; nodes * nodes];
        for i in 0..nodes {
            for j in 0..nodes {
                if adj[i * nodes + j] != 0.0 {
                    a_hat[i * nodes + j] = adj[i * nodes + j] / (deg[i] * deg[j]).sqrt();
                }
            }
        }

        // Features: community prototype + noise.
        let prototypes: Vec<Tensor> = (0..classes).map(|_| rng.randn(&[features], 1.0)).collect();
        let mut x = Tensor::zeros(&[nodes, features]);
        for i in 0..nodes {
            let noise = rng.randn(&[features], difficulty.noise);
            let row = prototypes[y[i]].add(&noise).expect("same shape");
            x.row_mut(i)
                .expect("in bounds")
                .copy_from_slice(row.as_slice());
        }

        // Split on a shuffled permutation so the test set covers all
        // communities (a stride-based split would alias with the
        // `i % classes` label assignment).
        let mut order: Vec<usize> = (0..nodes).collect();
        rng.shuffle(&mut order);
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for (pos, &i) in order.iter().enumerate() {
            if pos % 3 == 2 {
                test_idx.push(i);
            } else {
                train_idx.push(i);
            }
        }

        GraphDataset {
            name: name.to_string(),
            nodes,
            features,
            classes,
            x,
            a_hat: Tensor::from_vec(a_hat, &[nodes, nodes]).expect("square"),
            y,
            train_idx,
            test_idx,
        }
    }

    /// The four GCN benchmarks of Table III, graded easy → hard.
    ///
    /// `scale` multiplies the node counts (use 1 for CI).
    pub fn table3_suite(seed: u64, scale: usize) -> Vec<GraphDataset> {
        let s = scale.max(1);
        vec![
            GraphDataset::generate("reddit-like", seed, Difficulty::easy(5), 120 * s, 32, 0.20),
            GraphDataset::generate(
                "cora-like",
                seed + 1,
                Difficulty::medium(7),
                140 * s,
                32,
                0.16,
            ),
            GraphDataset::generate(
                "pubmed-like",
                seed + 2,
                Difficulty::medium(3),
                120 * s,
                32,
                0.14,
            ),
            GraphDataset::generate(
                "citeseer-like",
                seed + 3,
                Difficulty::hard(6),
                120 * s,
                32,
                0.12,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_hat_rows_are_normalized() {
        let d = GraphDataset::generate("t", 1, Difficulty::easy(3), 30, 8, 0.3);
        // Row sums of D^{-1/2}(A+I)D^{-1/2} are ≤ ~1 and positive.
        for i in 0..30 {
            let s: f32 = d.a_hat.row(i).unwrap().iter().sum();
            assert!(s > 0.0 && s < 1.5, "row {i} sum {s}");
        }
        // Self loops present.
        assert!(d.a_hat.at(&[0, 0]).unwrap() > 0.0);
    }

    #[test]
    fn symmetric() {
        let d = GraphDataset::generate("t", 2, Difficulty::medium(3), 24, 8, 0.3);
        for i in 0..24 {
            for j in 0..24 {
                let a = d.a_hat.at(&[i, j]).unwrap();
                let b = d.a_hat.at(&[j, i]).unwrap();
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn communities_have_more_internal_edges() {
        let d = GraphDataset::generate("t", 3, Difficulty::easy(2), 60, 8, 0.3);
        let mut intra = 0;
        let mut inter = 0;
        for i in 0..60 {
            for j in (i + 1)..60 {
                if d.a_hat.at(&[i, j]).unwrap() > 0.0 {
                    if d.y[i] == d.y[j] {
                        intra += 1;
                    } else {
                        inter += 1;
                    }
                }
            }
        }
        assert!(intra > inter * 2, "intra {intra} inter {inter}");
    }

    #[test]
    fn split_partitions_nodes() {
        let d = GraphDataset::generate("t", 4, Difficulty::easy(3), 30, 8, 0.3);
        assert_eq!(d.train_idx.len() + d.test_idx.len(), 30);
        assert!(d.test_idx.iter().all(|i| !d.train_idx.contains(i)));
    }

    #[test]
    fn deterministic() {
        let a = GraphDataset::generate("t", 5, Difficulty::easy(3), 20, 4, 0.3);
        let b = GraphDataset::generate("t", 5, Difficulty::easy(3), 20, 4, 0.3);
        assert_eq!(a.a_hat, b.a_hat);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn suite_composition() {
        let suite = GraphDataset::table3_suite(1, 1);
        assert_eq!(suite.len(), 4);
        assert!(suite.iter().all(|d| d.nodes >= 100));
    }
}
