//! Synthetic dataset generators for the ONE-SA accuracy experiments.
//!
//! The paper evaluates 17 tasks across CNN (QMNIST / Fashion-MNIST /
//! CIFAR-10 / CIFAR-100), BERT (SST-2 / QNLI / STS-B / CoLA) and GCN
//! (Reddit / CORA / Pubmed / Citeseer) benchmarks. Those datasets are not
//! available offline, so this crate generates *synthetic stand-ins with
//! graded difficulty* — the property Table III actually exercises is how
//! approximation error interacts with task margin and network depth, and
//! that is preserved by controlling class separation and noise
//! (see DESIGN.md §2, substitutions).
//!
//! All generators are deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use onesa_data::{Difficulty, ImageDataset};
//!
//! // 2 classes × 8 training samples per class, 1×8×8 images.
//! let data = ImageDataset::generate("demo", 7, Difficulty::easy(2), (1, 8, 8), 8);
//! assert_eq!(data.train_x.len(), 16);
//! assert_eq!(data.train_x[0].dims(), &[1, 8, 8]);
//! // Same seed ⇒ same bytes, every time.
//! let again = ImageDataset::generate("demo", 7, Difficulty::easy(2), (1, 8, 8), 8);
//! assert_eq!(data.train_x[0], again.train_x[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graphs;
pub mod images;
pub mod text;

pub use graphs::GraphDataset;
pub use images::ImageDataset;
pub use text::TextDataset;

/// Task difficulty knob: how separable the generated classes are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Difficulty {
    /// Standard deviation of per-sample noise relative to the prototype
    /// signal (higher = harder).
    pub noise: f32,
    /// Number of classes (more = harder).
    pub classes: usize,
}

impl Difficulty {
    /// Easy task (QMNIST / Reddit / SST-2 tier: near-saturated accuracy).
    pub fn easy(classes: usize) -> Self {
        Difficulty {
            noise: 0.35,
            classes,
        }
    }

    /// Medium task (Fashion-MNIST / CORA / QNLI tier).
    pub fn medium(classes: usize) -> Self {
        Difficulty {
            noise: 0.7,
            classes,
        }
    }

    /// Hard task (CIFAR / CoLA / Citeseer tier: small margins).
    pub fn hard(classes: usize) -> Self {
        Difficulty {
            noise: 1.1,
            classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_ordering() {
        assert!(Difficulty::easy(10).noise < Difficulty::medium(10).noise);
        assert!(Difficulty::medium(10).noise < Difficulty::hard(10).noise);
    }
}
