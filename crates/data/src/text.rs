//! Synthetic token-sequence tasks (SST-2 / QNLI / STS-B / CoLA
//! stand-ins) for the transformer accuracy experiments.
//!
//! Sequences are drawn from class-conditional token distributions with a
//! few class-marker tokens sprinkled in; difficulty controls how often
//! the markers appear. The STS-B stand-in is a regression task whose
//! target is the (noisy) marker density, scored by Pearson correlation
//! as in GLUE.

use crate::Difficulty;
use onesa_tensor::rng::Pcg32;

/// Task flavour, mirroring the GLUE benchmarks used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextTask {
    /// Binary classification (SST-2-like / CoLA-like).
    Classification,
    /// Scalar regression in `[0, 1]` (STS-B-like), scored with Pearson.
    Regression,
}

/// A token-sequence dataset with a train/test split.
#[derive(Debug, Clone)]
pub struct TextDataset {
    /// Dataset name (e.g. `"sst2-like"`).
    pub name: String,
    /// Task flavour.
    pub task: TextTask,
    /// Vocabulary size (token ids are `0..vocab`).
    pub vocab: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Number of classes (2 for the binary tasks; 1 bucket for regression).
    pub classes: usize,
    /// Training sequences (token ids).
    pub train_x: Vec<Vec<usize>>,
    /// Training labels (class id, or scaled regression target).
    pub train_y: Vec<f32>,
    /// Test sequences.
    pub test_x: Vec<Vec<usize>>,
    /// Test labels.
    pub test_y: Vec<f32>,
}

impl TextDataset {
    /// Generates a classification dataset: class `c` prefers a band of
    /// the vocabulary and injects marker token `c` with probability
    /// inversely tied to `difficulty.noise`.
    pub fn classification(
        name: &str,
        seed: u64,
        difficulty: Difficulty,
        vocab: usize,
        seq_len: usize,
        per_class: usize,
    ) -> Self {
        let classes = difficulty.classes;
        let mut rng = Pcg32::seed_from_u64(seed);
        let marker_prob = (0.9 - 0.55 * (difficulty.noise - 0.35)).clamp(0.15, 0.95);
        let gen = |rng: &mut Pcg32, class: usize| -> Vec<usize> {
            (0..seq_len)
                .map(|_| {
                    if rng.next_f32() < marker_prob / seq_len as f32 * 3.0 {
                        // Marker tokens live at the top of the vocabulary.
                        vocab - 1 - class
                    } else {
                        // Class-banded background tokens with leakage.
                        let band = vocab / classes.max(1);
                        let base = if rng.next_f32() < 0.45 {
                            class * band
                        } else {
                            0
                        };
                        let width = if base == 0 { vocab - classes } else { band };
                        base + rng.below(width.max(1) as u32) as usize
                    }
                })
                .collect()
        };
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for class in 0..classes {
            for _ in 0..per_class {
                train_x.push(gen(&mut rng, class));
                train_y.push(class as f32);
            }
            for _ in 0..per_class.div_ceil(3) {
                test_x.push(gen(&mut rng, class));
                test_y.push(class as f32);
            }
        }
        let mut order: Vec<usize> = (0..train_x.len()).collect();
        rng.shuffle(&mut order);
        TextDataset {
            name: name.to_string(),
            task: TextTask::Classification,
            vocab,
            seq_len,
            classes,
            train_x: order.iter().map(|&i| train_x[i].clone()).collect(),
            train_y: order.iter().map(|&i| train_y[i]).collect(),
            test_x,
            test_y,
        }
    }

    /// Generates a regression dataset: the target is the fraction of
    /// marker tokens in the sequence, observed with label noise.
    pub fn regression(
        name: &str,
        seed: u64,
        difficulty: Difficulty,
        vocab: usize,
        seq_len: usize,
        samples: usize,
    ) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let gen = |rng: &mut Pcg32| -> (Vec<usize>, f32) {
            let density = rng.next_f32();
            let seq: Vec<usize> = (0..seq_len)
                .map(|_| {
                    if rng.next_f32() < density * 0.5 {
                        vocab - 1
                    } else {
                        rng.below((vocab - 1) as u32) as usize
                    }
                })
                .collect();
            let measured = seq.iter().filter(|&&t| t == vocab - 1).count() as f32 / seq_len as f32;
            let label = (measured * 2.0 + rng.normal() * difficulty.noise * 0.05).clamp(0.0, 1.0);
            (seq, label)
        };
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for i in 0..samples {
            let (x, y) = gen(&mut rng);
            if i % 4 == 3 {
                test_x.push(x);
                test_y.push(y);
            } else {
                train_x.push(x);
                train_y.push(y);
            }
        }
        TextDataset {
            name: name.to_string(),
            task: TextTask::Regression,
            vocab,
            seq_len,
            classes: 1,
            train_x,
            train_y,
            test_x,
            test_y,
        }
    }

    /// The four transformer benchmarks of Table III, graded easy → hard.
    pub fn table3_suite(seed: u64, per_class: usize) -> Vec<TextDataset> {
        let vocab = 64;
        let seq = 16;
        vec![
            TextDataset::classification(
                "sst2-like",
                seed,
                Difficulty::easy(2),
                vocab,
                seq,
                per_class,
            ),
            TextDataset::classification(
                "qnli-like",
                seed + 1,
                Difficulty::medium(2),
                vocab,
                seq,
                per_class,
            ),
            TextDataset::regression(
                "stsb-like",
                seed + 2,
                Difficulty::medium(1),
                vocab,
                seq,
                per_class * 2,
            ),
            TextDataset::classification(
                "cola-like",
                seed + 3,
                Difficulty::hard(2),
                vocab,
                seq,
                per_class,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_shapes() {
        let d = TextDataset::classification("t", 1, Difficulty::easy(2), 32, 8, 10);
        assert_eq!(d.train_x.len(), 20);
        assert_eq!(d.test_x.len(), 8);
        assert!(d.train_x.iter().all(|s| s.len() == 8));
        assert!(d.train_x.iter().flatten().all(|&t| t < 32));
    }

    #[test]
    fn deterministic() {
        let a = TextDataset::classification("t", 9, Difficulty::medium(2), 32, 8, 5);
        let b = TextDataset::classification("t", 9, Difficulty::medium(2), 32, 8, 5);
        assert_eq!(a.train_x, b.train_x);
        assert_eq!(a.train_y, b.train_y);
    }

    #[test]
    fn markers_carry_signal() {
        // Counting class-0 vs class-1 marker tokens should beat chance
        // easily on the easy task.
        let d = TextDataset::classification("t", 2, Difficulty::easy(2), 32, 16, 40);
        let mut correct = 0;
        for (x, &y) in d.test_x.iter().zip(&d.test_y) {
            let m0 = x.iter().filter(|&&t| t == 31).count();
            let m1 = x.iter().filter(|&&t| t == 30).count();
            let pred = if m0 >= m1 { 0.0 } else { 1.0 };
            if pred == y {
                correct += 1;
            }
        }
        let acc = correct as f32 / d.test_y.len() as f32;
        assert!(acc > 0.75, "marker-count accuracy {acc}");
    }

    #[test]
    fn regression_targets_in_range() {
        let d = TextDataset::regression("t", 3, Difficulty::medium(1), 32, 16, 40);
        assert!(d.train_y.iter().all(|&y| (0.0..=1.0).contains(&y)));
        assert_eq!(d.task, TextTask::Regression);
        assert!(!d.test_x.is_empty());
    }

    #[test]
    fn suite_composition() {
        let suite = TextDataset::table3_suite(1, 4);
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[2].task, TextTask::Regression);
    }
}
