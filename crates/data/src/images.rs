//! Synthetic image classification tasks (QMNIST / Fashion-MNIST /
//! CIFAR-10 / CIFAR-100 stand-ins).
//!
//! Each class gets a smooth random prototype image; samples are the
//! prototype plus pixel noise and a random global intensity jitter.
//! Difficulty scales the noise and the class count.

use crate::Difficulty;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;

/// An in-memory image classification dataset with a train/test split.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Dataset name (e.g. `"qmnist-like"`).
    pub name: String,
    /// Training images, each `[channels, height, width]`.
    pub train_x: Vec<Tensor>,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test images.
    pub test_x: Vec<Tensor>,
    /// Test labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Image geometry `(channels, height, width)`.
    pub geometry: (usize, usize, usize),
}

impl ImageDataset {
    /// Generates a dataset.
    ///
    /// `per_class` controls the number of training samples per class; a
    /// third as many test samples are drawn per class.
    pub fn generate(
        name: &str,
        seed: u64,
        difficulty: Difficulty,
        geometry: (usize, usize, usize),
        per_class: usize,
    ) -> Self {
        let (c, h, w) = geometry;
        let mut rng = Pcg32::seed_from_u64(seed);
        // Smooth prototypes: random low-frequency cosine mixtures.
        let prototypes: Vec<Tensor> = (0..difficulty.classes)
            .map(|_| {
                let fx = rng.uniform(0.5, 2.5);
                let fy = rng.uniform(0.5, 2.5);
                let px = rng.uniform(0.0, std::f32::consts::TAU);
                let py = rng.uniform(0.0, std::f32::consts::TAU);
                let amp = rng.uniform(0.8, 1.2);
                let mut t = Tensor::zeros(&[c, h, w]);
                for ch in 0..c {
                    let chp = ch as f32 * 0.7;
                    for y in 0..h {
                        for x in 0..w {
                            let v = amp
                                * ((fx * x as f32 / w as f32 * std::f32::consts::TAU + px + chp)
                                    .cos()
                                    + (fy * y as f32 / h as f32 * std::f32::consts::TAU + py)
                                        .sin());
                            t.set(&[ch, y, x], v).expect("in bounds");
                        }
                    }
                }
                t
            })
            .collect();

        let sample = |rng: &mut Pcg32, class: usize| -> Tensor {
            let jitter = rng.uniform(0.85, 1.15);
            let noise = rng.randn(&[c, h, w], difficulty.noise);
            prototypes[class]
                .scale(jitter)
                .add(&noise)
                .expect("same shape")
        };

        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for class in 0..difficulty.classes {
            for _ in 0..per_class {
                train_x.push(sample(&mut rng, class));
                train_y.push(class);
            }
            for _ in 0..per_class.div_ceil(3) {
                test_x.push(sample(&mut rng, class));
                test_y.push(class);
            }
        }
        // Shuffle training order (deterministic).
        let mut order: Vec<usize> = (0..train_x.len()).collect();
        rng.shuffle(&mut order);
        let train_x = order.iter().map(|&i| train_x[i].clone()).collect();
        let train_y: Vec<usize> = order.iter().map(|&i| train_y[i]).collect();

        ImageDataset {
            name: name.to_string(),
            train_x,
            train_y,
            test_x,
            test_y,
            classes: difficulty.classes,
            geometry,
        }
    }

    /// The four CNN benchmarks of Table III, graded easy → hard.
    ///
    /// `per_class` scales the dataset size (use a small value for CI).
    pub fn table3_suite(seed: u64, per_class: usize) -> Vec<ImageDataset> {
        let geo = (1, 12, 12);
        vec![
            ImageDataset::generate("qmnist-like", seed, Difficulty::easy(10), geo, per_class),
            ImageDataset::generate(
                "fashion-like",
                seed + 1,
                Difficulty::medium(10),
                geo,
                per_class,
            ),
            ImageDataset::generate(
                "cifar10-like",
                seed + 2,
                Difficulty::hard(10),
                geo,
                per_class,
            ),
            ImageDataset::generate(
                "cifar100-like",
                seed + 3,
                Difficulty {
                    noise: 1.1,
                    classes: 20,
                },
                geo,
                per_class,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ImageDataset::generate("t", 7, Difficulty::easy(3), (1, 8, 8), 4);
        let b = ImageDataset::generate("t", 7, Difficulty::easy(3), (1, 8, 8), 4);
        assert_eq!(a.train_y, b.train_y);
        assert_eq!(a.train_x[0], b.train_x[0]);
    }

    #[test]
    fn sizes_and_labels() {
        let d = ImageDataset::generate("t", 1, Difficulty::medium(5), (1, 8, 8), 6);
        assert_eq!(d.train_x.len(), 30);
        assert_eq!(d.test_x.len(), 10);
        assert!(d.train_y.iter().all(|&y| y < 5));
        assert_eq!(d.train_x[0].dims(), &[1, 8, 8]);
    }

    #[test]
    fn classes_are_separable_at_low_noise() {
        // Nearest-prototype classification on an easy dataset should be
        // nearly perfect — sanity check that labels carry signal.
        let d = ImageDataset::generate(
            "t",
            3,
            Difficulty {
                noise: 0.1,
                classes: 4,
            },
            (1, 8, 8),
            8,
        );
        // Recompute class means from train split as stand-in prototypes.
        let mut means = vec![Tensor::zeros(&[1, 8, 8]); 4];
        let mut counts = vec![0usize; 4];
        for (x, &y) in d.train_x.iter().zip(&d.train_y) {
            means[y] = means[y].add(x).unwrap();
            counts[y] += 1;
        }
        for (m, &n) in means.iter_mut().zip(&counts) {
            *m = m.scale(1.0 / n as f32);
        }
        let mut correct = 0;
        for (x, &y) in d.test_x.iter().zip(&d.test_y) {
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = x
                        .sub(&means[a])
                        .unwrap()
                        .as_slice()
                        .iter()
                        .map(|v| v * v)
                        .sum();
                    let db: f32 = x
                        .sub(&means[b])
                        .unwrap()
                        .as_slice()
                        .iter()
                        .map(|v| v * v)
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == y {
                correct += 1;
            }
        }
        let acc = correct as f32 / d.test_y.len() as f32;
        assert!(acc > 0.9, "nearest-prototype accuracy {acc}");
    }

    #[test]
    fn suite_is_graded() {
        let suite = ImageDataset::table3_suite(1, 2);
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[3].classes, 20);
    }
}
