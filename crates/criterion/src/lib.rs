//! Offline stand-in for the crates.io `criterion` crate.
//!
//! This repository builds with **no network access**, so the real
//! `criterion` cannot be fetched. This crate provides the subset of its
//! API the workspace's bench harnesses use (`Criterion::bench_function`,
//! `benchmark_group` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! the `criterion_group!` / `criterion_main!` macros) backed by a simple
//! wall-clock harness: each bench is warmed up, calibrated to a target
//! measurement window, and reported as mean time per iteration.
//!
//! # Implemented subset and determinism
//!
//! There is no statistical analysis, HTML report, outlier rejection or
//! baseline comparison — the point is that `cargo bench` runs everywhere
//! and prints comparable numbers. The *harness logic* is deterministic
//! (fixed warm-up fraction, fixed iteration clamps); the measured times
//! are of course machine- and load-dependent, which is why committed
//! baselines (e.g. `BENCH_gemm_parallel.json`) record ratios rather than
//! absolute times as their stable quantity.
//!
//! # ⚠️ Do not `cargo add criterion`
//!
//! The workspace resolves `criterion` to this path crate (see the root
//! `Cargo.toml`); the crates.io crate would need network access the
//! build environment does not have. The bench sources are written
//! against the upstream API surface, so if network access ever
//! materializes the swap is a one-line workspace change.
//!
//! # Example
//!
//! ```
//! use criterion::Criterion;
//! use std::time::Duration;
//!
//! let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
//! c.bench_function("add", |b| b.iter(|| 1 + 1));
//! ```

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// An id rendered from the swept parameter alone.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId {
            param: param.to_string(),
        }
    }

    /// An id with a function label and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, param: P) -> Self {
        BenchmarkId {
            param: format!("{}/{}", function_name.into(), param),
        }
    }
}

/// Timing loop handed to each bench closure.
pub struct Bencher {
    measurement_time: Duration,
    /// (iterations, total elapsed) of the measured window.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `routine`, first warming up and calibrating an iteration count
    /// that fills the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: run until ~10% of the window has elapsed,
        // doubling the batch each time, to estimate per-iter cost.
        let calib_budget = self.measurement_time / 10;
        let mut batch: u64 = 1;
        let mut calibrated = Duration::ZERO;
        let mut calib_iters: u64 = 0;
        while calibrated < calib_budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            calibrated += t0.elapsed();
            calib_iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        let per_iter = calibrated.as_secs_f64() / calib_iters as f64;
        let target = (self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, 10_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((iters, t0.elapsed()));
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one bench with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.param);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Run one bench without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.param);
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// End the group (upstream finalizes reports here; we do nothing).
    pub fn finish(self) {}
}

/// The bench driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Override the per-bench measurement window.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Run a named bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, |b| f(b));
        self
    }

    /// Open a bench group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, label: &str, f: F) {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, elapsed)) => {
                let per_iter_ns = elapsed.as_secs_f64() * 1e9 / iters as f64;
                println!(
                    "{label:<48} time: {} ({iters} iters)",
                    format_ns(per_iter_ns)
                );
            }
            None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Upstream's post-run summary hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Bundle bench functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
