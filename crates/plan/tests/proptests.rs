//! Property-based tests for the program optimizer: randomized
//! geometries and evaluation modes, conservatively-emitted programs
//! with duplicate boundaries / shared subexpressions, and the two
//! contracts the pass pipeline promises —
//!
//! * [`OptLevel::Standard`] output is **bit-identical** to the
//!   unoptimized program on every input;
//! * [`OptLevel::Fusion`] output matches within 1e-6 relative.

use onesa_cpwl::NonlinearFn;
use onesa_plan::{CompileCache, EvalMode, Op, OptLevel, Program, TableCache};
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = EvalMode> {
    prop_oneof![
        Just(EvalMode::Exact),
        Just(EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        }),
        Just(EvalMode::Cpwl {
            granularity: 0.5,
            quantize: false,
        }),
        Just(EvalMode::Cpwl {
            granularity: 0.125,
            quantize: true,
        }),
    ]
}

/// A conservatively-emitted two-layer network over a random geometry:
/// the input is quantized once per consumer (two GEMM branches against
/// the same weights plus their sum), exactly the redundancy the
/// frontend emits and the optimizer is expected to clean up.
fn conservative_mlp(mode: EvalMode, m: usize, k: usize, n: usize, seed: u64) -> Program {
    let mut rng = Pcg32::seed_from_u64(seed);
    let w = rng.randn(&[k, n], 1.0);
    let w2 = rng.randn(&[n, 3], 1.0);
    let mut b = Program::builder("prop-mlp", mode);
    let x = b.input(&[m, k]);
    let q1 = b.push(Op::Quantize, &[x]);
    let q2 = b.push(Op::Quantize, &[x]);
    let c = b.constant(w.clone());
    let c_dup = b.constant(w); // duplicate registration: CSE sees through it
    let g1 = b.push(Op::Gemm { bias: None }, &[q1, c]);
    let g2 = b.push(Op::Gemm { bias: None }, &[q2, c_dup]);
    let sum = b.push(Op::Add, &[g1, g2]);
    let nl = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[sum]);
    let c2 = b.constant(w2);
    b.push(Op::Gemm { bias: None }, &[nl, c2]);
    b.finish().expect("program builds")
}

/// A conv-shaped program ending in folded batch norm + activation — the
/// pattern the fusion pass targets.
fn affine_nonlinear_program(mode: EvalMode, c: usize, h: usize, seed: u64) -> Program {
    let mut rng = Pcg32::seed_from_u64(seed);
    let k: Vec<f32> = (0..c).map(|_| rng.randn(&[1], 1.0).as_slice()[0]).collect();
    let bias: Vec<f32> = (0..c).map(|_| rng.randn(&[1], 0.5).as_slice()[0]).collect();
    let mut b = Program::builder("prop-affine", mode);
    let x = b.input(&[c, h, h]);
    let a = b.push(Op::Affine { k, b: bias }, &[x]);
    let r = b.push(Op::Nonlinear(NonlinearFn::Relu), &[a]);
    b.push(Op::Scale(0.5), &[r]);
    b.finish().expect("program builds")
}

fn run(p: &Program, x: &Tensor) -> Tensor {
    p.run(
        std::slice::from_ref(x),
        Parallelism::Sequential,
        &mut TableCache::new(),
    )
    .expect("program executes")
    .output
}

proptest! {
    // Pinned case count: CI runs are deterministic and reproducible.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Standard-level optimization is bit-identical over randomized
    /// geometries and modes, and actually removes the emitted
    /// redundancy (one duplicate boundary under quantized modes, one
    /// CSE-shared GEMM always).
    #[test]
    fn standard_level_is_bit_identical(
        mode in mode_strategy(),
        m in 1usize..5,
        k in 1usize..7,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let p = conservative_mlp(mode, m, k, n, seed);
        let o = p.optimize(OptLevel::Standard).expect("optimizes");
        let report = o.opt_report().expect("report recorded");
        prop_assert_eq!(report.totals.shared, 1);
        if matches!(mode, EvalMode::Cpwl { quantize: true, .. }) {
            prop_assert_eq!(report.totals.elided, 1);
        }
        prop_assert!(o.stages() < p.stages());
        let x = Pcg32::seed_from_u64(seed ^ 0xABCD).randn(&[m, k], 1.0);
        let (y0, y1) = (run(&p, &x), run(&o, &x));
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
        // Structural invariants survive the rewrite.
        prop_assert_eq!(o.output_shape(), p.output_shape());
        prop_assert_eq!(o.modeled_macs() > 0, true);
    }

    /// Fusion-level optimization matches within 1e-6 relative and cuts
    /// the modeled MACs (the affine MHP pass folds away).
    #[test]
    fn fusion_level_matches_within_tolerance(
        mode in mode_strategy(),
        c in 1usize..4,
        h in 2usize..6,
        seed in 0u64..1000,
    ) {
        let p = affine_nonlinear_program(mode, c, h, seed);
        let o = p.optimize(OptLevel::Fusion).expect("optimizes");
        prop_assert_eq!(o.opt_report().expect("report").totals.fused, 1);
        prop_assert!(o.modeled_macs() < p.modeled_macs());
        let x = Pcg32::seed_from_u64(seed ^ 0x5EED).randn(&[c, h, h], 1.0);
        let (y0, y1) = (run(&p, &x), run(&o, &x));
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            let tol = 1e-6 * a.abs().max(1.0);
            prop_assert!((a - b).abs() <= tol, "{} vs {}", a, b);
        }
        // Exact mode evaluates f(k·x + b) in the same op order: the
        // fused program must be bit-identical there.
        if matches!(mode, EvalMode::Exact) {
            for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// The compile cache hits (same `Arc`, stable fingerprint) for a
    /// repeated geometry and misses for a fresh one.
    #[test]
    fn compile_cache_hits_and_invalidates(
        mode in mode_strategy(),
        m in 1usize..5,
        k in 1usize..7,
        seed in 0u64..1000,
    ) {
        let cache = CompileCache::new();
        let build = |m: usize| {
            conservative_mlp(mode, m, k, 4, seed).optimize(OptLevel::Standard)
        };
        let a = cache
            .get_or_compile(mode, &[m, k], 0, || build(m))
            .expect("compiles");
        let b = cache
            .get_or_compile(mode, &[m, k], 0, || build(m))
            .expect("compiles");
        prop_assert!(std::sync::Arc::ptr_eq(&a, &b));
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let g = cache
            .get_or_compile(mode, &[m + 1, k], 0, || build(m + 1))
            .expect("compiles");
        prop_assert!(!std::sync::Arc::ptr_eq(&a, &g));
        prop_assert_eq!(cache.misses(), 2);
    }
}
