//! Property-based tests for the program optimizer and the wire format:
//! randomized geometries and evaluation modes, conservatively-emitted
//! programs with duplicate boundaries / shared subexpressions, and the
//! contracts the pass pipeline and serialization promise —
//!
//! * [`OptLevel::Standard`] output is **bit-identical** to the
//!   unoptimized program on every input;
//! * [`OptLevel::Fusion`] output matches within 1e-6 relative;
//! * `wire::encode → wire::decode` is the identity for tensors and
//!   programs — every `f32` bit (NaN payloads, signed zeros,
//!   subnormals) and the program fingerprint survive the round trip,
//!   and re-encoding the decoded value reproduces the original bytes
//!   (the encoding is canonical).

use onesa_cpwl::NonlinearFn;
use onesa_plan::{
    wire, CompileCache, EvalMode, Op, OptLevel, PoolKind, Precision, Program, TableCache,
    PRUNE_BLOCK_COLS,
};
use onesa_tensor::im2col::Conv2dGeometry;
use onesa_tensor::parallel::Parallelism;
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = EvalMode> {
    prop_oneof![
        Just(EvalMode::Exact),
        Just(EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        }),
        Just(EvalMode::Cpwl {
            granularity: 0.5,
            quantize: false,
        }),
        Just(EvalMode::Cpwl {
            granularity: 0.125,
            quantize: true,
        }),
    ]
}

/// A conservatively-emitted two-layer network over a random geometry:
/// the input is quantized once per consumer (two GEMM branches against
/// the same weights plus their sum), exactly the redundancy the
/// frontend emits and the optimizer is expected to clean up.
fn conservative_mlp(mode: EvalMode, m: usize, k: usize, n: usize, seed: u64) -> Program {
    let mut rng = Pcg32::seed_from_u64(seed);
    let w = rng.randn(&[k, n], 1.0);
    let w2 = rng.randn(&[n, 3], 1.0);
    let mut b = Program::builder("prop-mlp", mode);
    let x = b.input(&[m, k]);
    let q1 = b.push(
        Op::Quantize {
            precision: Precision::Int16,
        },
        &[x],
    );
    let q2 = b.push(
        Op::Quantize {
            precision: Precision::Int16,
        },
        &[x],
    );
    let c = b.constant(w.clone());
    let c_dup = b.constant(w); // duplicate registration: CSE sees through it
    let g1 = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q1, c],
    );
    let g2 = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q2, c_dup],
    );
    let sum = b.push(Op::Add, &[g1, g2]);
    let nl = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[sum]);
    let c2 = b.constant(w2);
    b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[nl, c2],
    );
    b.finish().expect("program builds")
}

/// A conv-shaped program ending in folded batch norm + activation — the
/// pattern the fusion pass targets.
fn affine_nonlinear_program(mode: EvalMode, c: usize, h: usize, seed: u64) -> Program {
    let mut rng = Pcg32::seed_from_u64(seed);
    let k: Vec<f32> = (0..c).map(|_| rng.randn(&[1], 1.0).as_slice()[0]).collect();
    let bias: Vec<f32> = (0..c).map(|_| rng.randn(&[1], 0.5).as_slice()[0]).collect();
    let mut b = Program::builder("prop-affine", mode);
    let x = b.input(&[c, h, h]);
    let a = b.push(Op::Affine { k, b: bias }, &[x]);
    let r = b.push(Op::Nonlinear(NonlinearFn::Relu), &[a]);
    b.push(Op::Scale(0.5), &[r]);
    b.finish().expect("program builds")
}

fn run(p: &Program, x: &Tensor) -> Tensor {
    p.run(
        std::slice::from_ref(x),
        Parallelism::Sequential,
        &mut TableCache::new(),
    )
    .expect("program executes")
    .output
}

/// A kitchen-sink program touching **every** [`Op`] variant (both
/// `Gemm` forms, both pool kinds): the wire round-trip below must
/// reproduce all of them byte-exactly. Runs with two program inputs (an
/// image branch and a token-id branch) merged by a final classifier.
fn kitchen_sink(mode: EvalMode, c: usize, h: usize, func: NonlinearFn, seed: u64) -> Program {
    let mut rng = Pcg32::seed_from_u64(seed);
    let ch = 4;
    let (l, d, vocab, max_len) = (3, 5, 6, 8);
    let geo = Conv2dGeometry {
        in_channels: c,
        out_channels: ch,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let chan = |scale: f32, rng: &mut Pcg32| -> Vec<f32> {
        (0..c)
            .map(|_| rng.randn(&[1], scale).as_slice()[0])
            .collect()
    };
    let mut b = Program::builder("prop-kitchen-sink", mode);
    let x = b.input(&[c, h, h]);
    let ids = b.input(&[1, l]);
    // Image branch: quantize → affine → fused affine+relu → conv
    // (im2col/gemm+bias/col2im) → global pool.
    let q = b.push(
        Op::Quantize {
            precision: Precision::Int16,
        },
        &[x],
    );
    let af = b.push(
        Op::Affine {
            k: chan(0.5, &mut rng),
            b: chan(0.2, &mut rng),
        },
        &[q],
    );
    let anl = b.push(
        Op::AffineNonlinear {
            k: chan(0.5, &mut rng),
            b: chan(0.2, &mut rng),
            func: NonlinearFn::Relu,
        },
        &[af],
    );
    let cols = b.push(Op::Im2col(geo), &[anl]);
    let wc = b.constant(rng.randn(&[c * 9, ch], 1.0));
    let bias: Vec<f32> = (0..ch)
        .map(|_| rng.randn(&[1], 0.1).as_slice()[0])
        .collect();
    let g = b.push(
        Op::Gemm {
            bias: Some(bias),
            sparsity: None,
        },
        &[cols, wc],
    );
    let ci = b.push(
        Op::Col2im {
            channels: ch,
            oh: h,
            ow: h,
        },
        &[g],
    );
    let pooled = b.push(Op::Pool(PoolKind::GlobalAvg), &[ci]);
    // Token branch: embed → layer norm → softmax → nonlinear → a
    // transpose pair, self-add, scale, slice/concat, mean-rows pool.
    let table = b.constant(rng.randn(&[vocab, d], 1.0));
    let pos = b.constant(rng.randn(&[max_len, d], 1.0));
    let e = b.push(Op::Embed, &[ids, table, pos]);
    let ln = b.push(
        Op::LayerNorm {
            gamma: vec![1.0; d],
            beta: vec![0.0; d],
            eps: 1e-5,
        },
        &[e],
    );
    let sm = b.push(Op::Softmax, &[ln]);
    let nl = b.push(Op::Nonlinear(func), &[sm]);
    let t = b.push(Op::Transpose, &[nl]);
    let t2 = b.push(Op::Transpose, &[t]);
    let add = b.push(Op::Add, &[nl, t2]);
    let sc = b.push(Op::Scale(0.7), &[add]);
    let s1 = b.push(
        Op::SliceCols {
            start: 0,
            len: d - 2,
        },
        &[sc],
    );
    let s2 = b.push(
        Op::SliceCols {
            start: d - 2,
            len: 2,
        },
        &[sc],
    );
    let cc = b.push(Op::ConcatCols, &[s1, s2]);
    let mr = b.push(Op::Pool(PoolKind::MeanRows), &[cc]);
    // Merge and classify.
    let merged = b.push(Op::ConcatCols, &[pooled, mr]);
    let wf = b.constant(rng.randn(&[ch + d, 2], 1.0));
    b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[merged, wf],
    );
    b.finish().expect("kitchen-sink builds")
}

/// Valid inputs for [`kitchen_sink`]: a random image plus in-range
/// token ids.
fn kitchen_sink_inputs(c: usize, h: usize, seed: u64) -> Vec<Tensor> {
    let x = Pcg32::seed_from_u64(seed ^ 0x51_4B).randn(&[c, h, h], 1.0);
    let ids = Tensor::from_vec(vec![0.0, 2.0, 4.0], &[1, 3]).unwrap();
    vec![x, ids]
}

/// A hand-rolled KV-cache decode step at context `ctx` — the
/// session-bearing frame shape the serving layer ships: session inputs
/// (K/V caches), `EmbedAt` at the context offset, per-row quantization,
/// `ConcatRows` cache appends marked as session outputs, and a causal
/// softmax over the grown context.
fn session_decode_program(mode: EvalMode, ctx: usize, d: usize, seed: u64) -> Program {
    let mut rng = Pcg32::seed_from_u64(seed);
    let (vocab, max_len) = (6, 16);
    let mut b = Program::builder("prop-decode-step", mode);
    let ids = b.input(&[1, 1]);
    let k_cache = b.session_input(&[ctx, d]);
    let v_cache = b.session_input(&[ctx, d]);
    let table = b.constant(rng.randn(&[vocab, d], 1.0));
    let pos = b.constant(rng.randn(&[max_len, d], 1.0));
    let e = b.push(Op::EmbedAt { offset: ctx }, &[ids, table, pos]);
    let q = b.push(Op::QuantizeRows, &[e]);
    let wk = b.constant(rng.randn(&[d, d], 1.0));
    let wv = b.constant(rng.randn(&[d, d], 1.0));
    let k_new = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q, wk],
    );
    let v_new = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q, wv],
    );
    let k_full = b.push(Op::ConcatRows, &[k_cache, k_new]);
    let v_full = b.push(Op::ConcatRows, &[v_cache, v_new]);
    b.mark_session_output(k_full);
    b.mark_session_output(v_full);
    let kt = b.push(Op::Transpose, &[k_full]);
    let scores = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q, kt],
    );
    let sc = b.push(Op::Scale(0.5), &[scores]);
    let att = b.push(Op::CausalSoftmax { offset: ctx }, &[sc]);
    b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[att, v_full],
    );
    b.finish().expect("decode step builds")
}

/// Valid inputs for [`session_decode_program`]: one token id plus the
/// session's current K/V cache tensors, in declaration order.
fn session_decode_inputs(ctx: usize, d: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = Pcg32::seed_from_u64(seed ^ 0xCAFE);
    let ids = Tensor::from_vec(vec![(seed % 6) as f32], &[1, 1]).unwrap();
    vec![ids, rng.randn(&[ctx, d], 1.0), rng.randn(&[ctx, d], 1.0)]
}

/// A pruned network: the GEMM weight has `zeroed` of its
/// `PRUNE_BLOCK_COLS`-wide column blocks zeroed out, so
/// `OptLevel::Standard`'s prune-pack pass attaches a sparsity attribute
/// and an `Int8` boundary precedes the GEMM. Exercises both new wire
/// tags (20 and 21) plus the version-2 opt-report `pruned` counter.
fn pruned_int8_program(
    mode: EvalMode,
    m: usize,
    k: usize,
    blocks: usize,
    zeroed: usize,
    seed: u64,
) -> Program {
    let n = blocks * PRUNE_BLOCK_COLS;
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut w = rng.randn(&[k, n], 1.0);
    for r in 0..k {
        for c in (n - zeroed * PRUNE_BLOCK_COLS)..n {
            w.as_mut_slice()[r * n + c] = 0.0;
        }
    }
    let mut b = Program::builder("prop-pruned-int8", mode);
    let x = b.input(&[m, k]);
    let q = b.push(
        Op::Quantize {
            precision: Precision::Int8,
        },
        &[x],
    );
    let c = b.constant(w);
    b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q, c],
    );
    b.finish().expect("program builds")
}

fn assert_programs_bit_identical(a: &Program, b: &Program, inputs: &[Tensor]) {
    let ya = a
        .run(inputs, Parallelism::Sequential, &mut TableCache::new())
        .expect("original runs")
        .output;
    let yb = b
        .run(inputs, Parallelism::Sequential, &mut TableCache::new())
        .expect("decoded runs")
        .output;
    assert_eq!(ya.dims(), yb.dims());
    for (va, vb) in ya.as_slice().iter().zip(yb.as_slice()) {
        assert_eq!(va.to_bits(), vb.to_bits(), "{va} vs {vb}");
    }
}

proptest! {
    // Pinned case count: CI runs are deterministic and reproducible.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Standard-level optimization is bit-identical over randomized
    /// geometries and modes, and actually removes the emitted
    /// redundancy (one duplicate boundary under quantized modes, one
    /// CSE-shared GEMM always).
    #[test]
    fn standard_level_is_bit_identical(
        mode in mode_strategy(),
        m in 1usize..5,
        k in 1usize..7,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let p = conservative_mlp(mode, m, k, n, seed);
        let o = p.optimize(OptLevel::Standard).expect("optimizes");
        let report = o.opt_report().expect("report recorded");
        prop_assert_eq!(report.totals.shared, 1);
        if matches!(mode, EvalMode::Cpwl { quantize: true, .. }) {
            prop_assert_eq!(report.totals.elided, 1);
        }
        prop_assert!(o.stages() < p.stages());
        let x = Pcg32::seed_from_u64(seed ^ 0xABCD).randn(&[m, k], 1.0);
        let (y0, y1) = (run(&p, &x), run(&o, &x));
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
        // Structural invariants survive the rewrite.
        prop_assert_eq!(o.output_shape(), p.output_shape());
        prop_assert_eq!(o.modeled_macs() > 0, true);
    }

    /// Fusion-level optimization matches within 1e-6 relative and cuts
    /// the modeled MACs (the affine MHP pass folds away).
    #[test]
    fn fusion_level_matches_within_tolerance(
        mode in mode_strategy(),
        c in 1usize..4,
        h in 2usize..6,
        seed in 0u64..1000,
    ) {
        let p = affine_nonlinear_program(mode, c, h, seed);
        let o = p.optimize(OptLevel::Fusion).expect("optimizes");
        prop_assert_eq!(o.opt_report().expect("report").totals.fused, 1);
        prop_assert!(o.modeled_macs() < p.modeled_macs());
        let x = Pcg32::seed_from_u64(seed ^ 0x5EED).randn(&[c, h, h], 1.0);
        let (y0, y1) = (run(&p, &x), run(&o, &x));
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            let tol = 1e-6 * a.abs().max(1.0);
            prop_assert!((a - b).abs() <= tol, "{} vs {}", a, b);
        }
        // Exact mode evaluates f(k·x + b) in the same op order: the
        // fused program must be bit-identical there.
        if matches!(mode, EvalMode::Exact) {
            for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// The compile cache hits (same `Arc`, stable fingerprint) for a
    /// repeated geometry and misses for a fresh one.
    #[test]
    fn compile_cache_hits_and_invalidates(
        mode in mode_strategy(),
        m in 1usize..5,
        k in 1usize..7,
        seed in 0u64..1000,
    ) {
        let cache = CompileCache::new();
        let build = |m: usize| {
            conservative_mlp(mode, m, k, 4, seed).optimize(OptLevel::Standard)
        };
        let a = cache
            .get_or_compile(mode, &[m, k], 0, || build(m))
            .expect("compiles");
        let b = cache
            .get_or_compile(mode, &[m, k], 0, || build(m))
            .expect("compiles");
        prop_assert!(std::sync::Arc::ptr_eq(&a, &b));
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let g = cache
            .get_or_compile(mode, &[m + 1, k], 0, || build(m + 1))
            .expect("compiles");
        prop_assert!(!std::sync::Arc::ptr_eq(&a, &g));
        prop_assert_eq!(cache.misses(), 2);
    }

    /// Tensor wire round trips are the identity on every bit — NaN
    /// payloads, signed zeros, infinities and subnormals included — and
    /// the encoding is canonical (re-encoding reproduces the bytes).
    #[test]
    fn wire_tensor_round_trip_is_bit_exact(
        rank in 1usize..5,
        dim in 1usize..6,
        seed in 0u64..10_000,
        special in 0u32..5,
    ) {
        let dims: Vec<usize> = (0..rank).map(|i| 1 + (dim + i) % 5).collect();
        let mut t = Pcg32::seed_from_u64(seed).randn(&dims, 2.0);
        // Plant a hostile bit pattern at a deterministic position: the
        // wire must not canonicalize NaNs or drop signs/subnormals.
        let volume = t.as_slice().len();
        let probe = seed as usize % volume;
        t.as_mut_slice()[probe] = match special {
            0 => f32::from_bits(0x7FC0_DEAD), // NaN with payload
            1 => -0.0,
            2 => f32::NEG_INFINITY,
            3 => f32::MIN_POSITIVE / 4.0, // subnormal
            _ => f32::MAX,
        };
        let bytes = wire::encode_tensor(&t);
        let back = wire::decode_tensor(&bytes).expect("decodes");
        prop_assert_eq!(back.dims(), t.dims());
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
        prop_assert_eq!(wire::encode_tensor(&back), bytes);
    }

    /// Program wire round trips preserve every [`Op`] variant, the
    /// fingerprint, the modeled cost, and runtime semantics (decoded
    /// programs execute bit-identically); the encoding is canonical.
    #[test]
    fn wire_program_round_trip_covers_every_op(
        mode in mode_strategy(),
        c in 1usize..4,
        h in 3usize..6,
        func in prop_oneof![
            Just(NonlinearFn::Gelu),
            Just(NonlinearFn::Tanh),
            Just(NonlinearFn::Sigmoid),
        ],
        seed in 0u64..1000,
    ) {
        let p = kitchen_sink(mode, c, h, func, seed);
        let bytes = wire::encode_program(&p);
        let back = wire::decode_program(&bytes).expect("decodes");
        prop_assert_eq!(back.fingerprint(), p.fingerprint());
        prop_assert_eq!(back.name(), p.name());
        prop_assert_eq!(back.stages(), p.stages());
        prop_assert_eq!(back.modeled_macs(), p.modeled_macs());
        prop_assert_eq!(back.output_shape(), p.output_shape());
        prop_assert_eq!(wire::encode_program(&back), bytes);
        assert_programs_bit_identical(&p, &back, &kitchen_sink_inputs(c, h, seed));
    }

    /// Optimized programs survive the wire with their optimization
    /// report (pass names and totals) intact, still bit-identical at
    /// runtime.
    #[test]
    fn wire_round_trip_preserves_opt_report(
        mode in mode_strategy(),
        m in 1usize..5,
        k in 1usize..7,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let o = conservative_mlp(mode, m, k, n, seed)
            .optimize(OptLevel::Standard)
            .expect("optimizes");
        let bytes = wire::encode_program(&o);
        let back = wire::decode_program(&bytes).expect("decodes");
        let (ra, rb) = (o.opt_report().expect("report"), back.opt_report().expect("report kept"));
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(wire::encode_program(&back), bytes);
        let x = Pcg32::seed_from_u64(seed ^ 0xD0_0D).randn(&[m, k], 1.0);
        let (ya, yb) = (run(&o, &x), run(&back, &x));
        for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Session/cache-bearing program frames survive the wire: the
    /// session-input/-output slot lists, the session-conditional
    /// fingerprint, modeled context-dependent cost and the runtime
    /// semantics — program output **and** every appended cache tensor —
    /// are bit-identical after decode, and the encoding is canonical.
    #[test]
    fn wire_session_program_round_trip_keeps_cache_frames(
        mode in mode_strategy(),
        ctx in 1usize..8,
        d in 2usize..6,
        seed in 0u64..1000,
    ) {
        let p = session_decode_program(mode, ctx, d, seed);
        prop_assert!(p.is_session());
        let bytes = wire::encode_program(&p);
        let back = wire::decode_program(&bytes).expect("decodes");
        prop_assert_eq!(back.fingerprint(), p.fingerprint());
        prop_assert!(back.is_session());
        prop_assert_eq!(back.session_inputs(), p.session_inputs());
        prop_assert_eq!(back.session_outputs(), p.session_outputs());
        prop_assert_eq!(back.modeled_macs(), p.modeled_macs());
        prop_assert_eq!(wire::encode_program(&back), bytes);
        let inputs = session_decode_inputs(ctx, d, seed);
        let (ra, rb) = (
            p.run(&inputs, Parallelism::Sequential, &mut TableCache::new())
                .expect("original runs"),
            back.run(&inputs, Parallelism::Sequential, &mut TableCache::new())
                .expect("decoded runs"),
        );
        for (a, b) in ra.output.as_slice().iter().zip(rb.output.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(ra.session_outputs.len(), 2);
        for (ta, tb) in ra.session_outputs.iter().zip(&rb.session_outputs) {
            prop_assert_eq!(ta.dims(), &[ctx + 1, d][..]);
            for (a, b) in ta.as_slice().iter().zip(tb.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // A decode step's cost tracks its context: the same frame one
        // row deeper must model strictly more work.
        let deeper = session_decode_program(mode, ctx + 1, d, seed);
        prop_assert!(deeper.modeled_macs() > p.modeled_macs());
        prop_assert_ne!(deeper.fingerprint(), p.fingerprint());
    }

    /// Sparsity- and precision-attributed programs survive the wire:
    /// the prune-pack attribute (block geometry, skipped-block credit),
    /// the `Int8` rung, the sparse-credited modeled cost and the
    /// version-2 `pruned` report counter all round-trip, the encoding
    /// stays canonical, and the decoded program still executes
    /// bit-identically to the pre-wire one.
    #[test]
    fn wire_round_trip_keeps_sparsity_and_precision_attributes(
        mode in mode_strategy(),
        m in 1usize..5,
        k in 1usize..7,
        blocks in 2usize..5,
        zeroed_frac in 1usize..4,
        seed in 0u64..1000,
    ) {
        let zeroed = (blocks * zeroed_frac) / 4; // 0..blocks zeroed blocks
        let p = pruned_int8_program(mode, m, k, blocks, zeroed, seed);
        let o = p.optimize(OptLevel::Standard).expect("optimizes");
        let report = o.opt_report().expect("report recorded");
        let expect_pruned = usize::from(zeroed > 0);
        prop_assert_eq!(report.totals.pruned, expect_pruned);
        prop_assert_eq!(o.sparse_blocks(), (zeroed as u64, if zeroed > 0 { blocks as u64 } else { 0 }));
        let bytes = wire::encode_program(&o);
        let back = wire::decode_program(&bytes).expect("decodes");
        prop_assert_eq!(back.fingerprint(), o.fingerprint());
        prop_assert_eq!(back.sparse_blocks(), o.sparse_blocks());
        prop_assert_eq!(back.modeled_macs(), o.modeled_macs());
        prop_assert_eq!(back.opt_report().expect("report kept"), report);
        prop_assert_eq!(wire::encode_program(&back), bytes);
        if zeroed > 0 {
            // Sparse credit shows in the modeled cost: the attributed
            // program must model strictly less work than the dense one.
            prop_assert!(o.modeled_macs() < p.modeled_macs());
            let gemm = back
                .nodes()
                .iter()
                .find_map(|node| match &node.op {
                    Op::Gemm { sparsity: Some(s), .. } => Some(*s),
                    _ => None,
                })
                .expect("sparse attribute survived");
            prop_assert_eq!(gemm.block_cols, PRUNE_BLOCK_COLS);
            prop_assert_eq!(gemm.total_blocks - gemm.nnz_blocks, zeroed);
        }
        let x = Pcg32::seed_from_u64(seed ^ 0xF00D).randn(&[m, k], 1.0);
        let (ya, yb) = (run(&o, &x), run(&back, &x));
        for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The parameter-carrying nonlinears (`Elu`, `LeakyRelu`) keep
    /// their `f32` parameters bit-exactly across the wire (Exact mode:
    /// the CPWL table set does not cache them).
    #[test]
    fn wire_round_trip_keeps_parametric_nonlinears(
        alpha in -2.0f32..2.0,
        slope in -1.0f32..1.0,
        m in 1usize..4,
        n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut b = Program::builder("prop-parametric", EvalMode::Exact);
        let x = b.input(&[m, n]);
        let e = b.push(Op::Nonlinear(NonlinearFn::Elu(alpha)), &[x]);
        b.push(Op::Nonlinear(NonlinearFn::LeakyRelu(slope)), &[e]);
        let p = b.finish().expect("builds");
        let bytes = wire::encode_program(&p);
        let back = wire::decode_program(&bytes).expect("decodes");
        prop_assert_eq!(back.fingerprint(), p.fingerprint());
        match (&back.nodes()[0].op, &back.nodes()[1].op) {
            (Op::Nonlinear(NonlinearFn::Elu(a)), Op::Nonlinear(NonlinearFn::LeakyRelu(s))) => {
                prop_assert_eq!(a.to_bits(), alpha.to_bits());
                prop_assert_eq!(s.to_bits(), slope.to_bits());
            }
            other => prop_assert!(false, "ops changed shape on the wire: {:?}", other),
        }
        let xin = Pcg32::seed_from_u64(seed).randn(&[m, n], 1.5);
        let (ya, yb) = (run(&p, &xin), run(&back, &xin));
        for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
