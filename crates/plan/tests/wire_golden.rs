//! Golden-frame tests for the wire format: committed byte fixtures
//! (`tests/fixtures/*.bin`) pin the **exact** encoding of the current
//! format version (`*_v2.bin`), and the `*_v1.bin` fixtures from the
//! previous version stay committed to prove old frames keep decoding.
//!
//! Two directions are locked in:
//!
//! * **encode compatibility** — today's encoder reproduces the
//!   committed bytes exactly. Any codec change that alters the stream,
//!   however innocent, fails here and forces a deliberate
//!   format-version bump (plus fresh fixtures) instead of a silent
//!   break.
//! * **decode compatibility** — today's decoder accepts the committed
//!   bytes of the current *and all previous* versions and reconstructs
//!   semantically identical values, which is what keeps old peers
//!   talking to new hosts across a version bump.
//!
//! Negative cases prove malformed frames surface as typed
//! [`WireError`]s, never panics: truncation at every prefix length, a
//! wrong magic, a bumped format version, and a corrupted payload bit
//! (fingerprint mismatch).
//!
//! Regenerating (only with a conscious version bump):
//! `ONESA_BLESS_FIXTURES=1 cargo test -p onesa-plan --test wire_golden`.

use onesa_cpwl::NonlinearFn;
use onesa_plan::wire::{self, WireError};
use onesa_plan::{EvalMode, Op, OptLevel, Precision, Program};
use onesa_tensor::rng::Pcg32;
use onesa_tensor::Tensor;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `encoded` against the committed fixture, or rewrites the
/// fixture when `ONESA_BLESS_FIXTURES` is set (version-bump workflow).
fn check_golden(name: &str, encoded: &[u8]) -> Vec<u8> {
    let path = fixture_path(name);
    if std::env::var_os("ONESA_BLESS_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encoded).unwrap();
    }
    let committed = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable ({e}); bless it first"));
    assert_eq!(
        committed,
        encoded,
        "{name}: encoder output drifted from the committed v{} frame — \
         a wire change needs a format-version bump and fresh fixtures",
        wire::VERSION
    );
    committed
}

/// The tensor fixture: hostile values on purpose (NaN with payload,
/// signed zero, infinities, a subnormal) so byte-exactness covers the
/// full `f32` bit space, not just round numbers.
fn golden_tensor() -> Tensor {
    Tensor::from_vec(
        vec![
            1.5,
            -2.25,
            f32::from_bits(0x7FC0_DEAD),
            -0.0,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE / 2.0,
        ],
        &[2, 3],
    )
    .unwrap()
}

/// The program fixture: a two-layer CPWL-mode MLP with a biased GEMM —
/// constants, bias vectors, mode flags and fingerprint all on the wire.
fn golden_program() -> Program {
    let mut rng = Pcg32::seed_from_u64(42);
    let mut b = Program::builder(
        "golden-mlp",
        EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        },
    );
    let x = b.input(&[2, 4]);
    let w1 = b.constant(rng.randn(&[4, 3], 1.0));
    let g1 = b.push(
        Op::Gemm {
            bias: Some(vec![0.1, -0.2, 0.3]),
            sparsity: None,
        },
        &[x, w1],
    );
    let nl = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[g1]);
    let w2 = b.constant(rng.randn(&[3, 2], 1.0));
    b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[nl, w2],
    );
    b.finish().unwrap()
}

/// The decode-step fixture: a session/cache-bearing frame — K/V session
/// inputs, `EmbedAt` at a context offset, per-row quantization,
/// `ConcatRows` cache appends marked as session outputs, causal softmax
/// — so the optional session section and every KV-cache op tag are
/// pinned byte-exactly.
fn golden_decode_program() -> Program {
    let mut rng = Pcg32::seed_from_u64(9);
    let (ctx, d, vocab, max_len) = (3, 4, 6, 12);
    let mut b = Program::builder(
        "golden-decode",
        EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        },
    );
    let ids = b.input(&[1, 1]);
    let k_cache = b.session_input(&[ctx, d]);
    let v_cache = b.session_input(&[ctx, d]);
    let table = b.constant(rng.randn(&[vocab, d], 1.0));
    let pos = b.constant(rng.randn(&[max_len, d], 1.0));
    let e = b.push(Op::EmbedAt { offset: ctx }, &[ids, table, pos]);
    let q = b.push(Op::QuantizeRows, &[e]);
    let wk = b.constant(rng.randn(&[d, d], 1.0));
    let wv = b.constant(rng.randn(&[d, d], 1.0));
    let k_new = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q, wk],
    );
    let v_new = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q, wv],
    );
    let k_full = b.push(Op::ConcatRows, &[k_cache, k_new]);
    let v_full = b.push(Op::ConcatRows, &[v_cache, v_new]);
    b.mark_session_output(k_full);
    b.mark_session_output(v_full);
    let kt = b.push(Op::Transpose, &[k_full]);
    let scores = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q, kt],
    );
    let sc = b.push(Op::Scale(0.5), &[scores]);
    let att = b.push(Op::CausalSoftmax { offset: ctx }, &[sc]);
    b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[att, v_full],
    );
    b.finish().unwrap()
}

/// The optimized-program fixture: carries an `OptReport` section.
fn golden_optimized() -> Program {
    let mut rng = Pcg32::seed_from_u64(7);
    let w = rng.randn(&[4, 3], 1.0);
    let mut b = Program::builder(
        "golden-opt",
        EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        },
    );
    let x = b.input(&[2, 4]);
    let q1 = b.push(
        Op::Quantize {
            precision: Precision::Int16,
        },
        &[x],
    );
    let q2 = b.push(
        Op::Quantize {
            precision: Precision::Int16,
        },
        &[x],
    );
    let c1 = b.constant(w.clone());
    let c2 = b.constant(w);
    let g1 = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q1, c1],
    );
    let g2 = b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q2, c2],
    );
    b.push(Op::Add, &[g1, g2]);
    b.finish().unwrap().optimize(OptLevel::Standard).unwrap()
}

/// The sparsity/precision fixture (new in v2): a pruned weight whose
/// zero column-blocks the `prune-pack` pass rewrites to a sparse GEMM
/// attribute (op tag 20), plus an INT8 boundary (op tag 21) — every
/// byte of the new attributes pinned exactly.
fn golden_sparse() -> Program {
    let mut rng = Pcg32::seed_from_u64(11);
    let mut w = rng.randn(&[8, 48], 1.0);
    // Zero the last two of the three 16-column blocks.
    for r in 0..8 {
        for c in 16..48 {
            w.as_mut_slice()[r * 48 + c] = 0.0;
        }
    }
    let mut b = Program::builder(
        "golden-sparse",
        EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        },
    );
    let x = b.input(&[2, 8]);
    let q = b.push(
        Op::Quantize {
            precision: Precision::Int8,
        },
        &[x],
    );
    let wc = b.constant(w);
    b.push(
        Op::Gemm {
            bias: None,
            sparsity: None,
        },
        &[q, wc],
    );
    b.finish().unwrap().optimize(OptLevel::Standard).unwrap()
}

#[test]
fn tensor_fixture_is_byte_exact_and_decodes() {
    let t = golden_tensor();
    let committed = check_golden("tensor_v2.bin", &wire::encode_tensor(&t));
    let back = wire::decode_tensor(&committed).expect("committed tensor frame decodes");
    assert_eq!(back.dims(), t.dims());
    for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
    }
}

#[test]
fn program_fixture_is_byte_exact_and_decodes() {
    let p = golden_program();
    let committed = check_golden("program_v2.bin", &wire::encode_program(&p));
    let back = wire::decode_program(&committed).expect("committed program frame decodes");
    assert_eq!(back.fingerprint(), p.fingerprint());
    assert_eq!(back.name(), "golden-mlp");
    assert_eq!(back.stages(), 3);
    assert_eq!(back.modeled_macs(), p.modeled_macs());
}

#[test]
fn optimized_program_fixture_keeps_its_report() {
    let p = golden_optimized();
    let committed = check_golden("program_opt_v2.bin", &wire::encode_program(&p));
    let back = wire::decode_program(&committed).expect("committed frame decodes");
    assert_eq!(back.fingerprint(), p.fingerprint());
    let report = back.opt_report().expect("opt report survives the wire");
    assert_eq!(report, p.opt_report().unwrap());
}

#[test]
fn decode_program_fixture_is_byte_exact_and_decodes() {
    let p = golden_decode_program();
    let committed = check_golden("program_decode_v2.bin", &wire::encode_program(&p));
    let back = wire::decode_program(&committed).expect("committed decode frame decodes");
    assert_eq!(back.fingerprint(), p.fingerprint());
    assert_eq!(back.name(), "golden-decode");
    assert!(back.is_session(), "session section survives the wire");
    assert_eq!(back.session_inputs(), p.session_inputs());
    assert_eq!(back.session_outputs(), p.session_outputs());
    assert_eq!(back.modeled_macs(), p.modeled_macs());
}

#[test]
fn sparse_program_fixture_is_byte_exact_and_decodes() {
    let p = golden_sparse();
    assert_eq!(
        p.opt_report().unwrap().totals.pruned,
        1,
        "prune-pack rewrote the zero-blocked GEMM"
    );
    let committed = check_golden("program_sparse_v2.bin", &wire::encode_program(&p));
    let back = wire::decode_program(&committed).expect("sparse frame decodes");
    assert_eq!(back.fingerprint(), p.fingerprint());
    assert_eq!(back, p, "sparsity + precision attributes survive exactly");
    assert_eq!(back.sparse_blocks(), (2, 3));
    assert_eq!(back.modeled_macs(), p.modeled_macs());
}

/// Every byte of the previous version's committed frames must keep
/// decoding under the v2 reader: v1 op tags map onto the dense/INT16
/// forms and the v1 optimizer-report tail reads with zero `pruned`
/// rewrites. Re-encoding a decoded v1 program at v2 preserves its
/// fingerprint end to end.
#[test]
fn v1_fixtures_from_the_previous_version_still_decode() {
    let bytes = std::fs::read(fixture_path("tensor_v1.bin")).unwrap();
    let t = wire::decode_tensor(&bytes).expect("v1 tensor frame decodes");
    for (a, b) in golden_tensor().as_slice().iter().zip(t.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
    }
    for name in [
        "program_v1.bin",
        "program_opt_v1.bin",
        "program_decode_v1.bin",
    ] {
        let bytes = std::fs::read(fixture_path(name)).unwrap();
        let p = wire::decode_program(&bytes)
            .unwrap_or_else(|e| panic!("{name}: v1 frame must decode ({e})"));
        let back = wire::decode_program(&wire::encode_program(&p)).unwrap();
        assert_eq!(back.fingerprint(), p.fingerprint(), "{name}");
        assert_eq!(back, p, "{name}");
    }
    let bytes = std::fs::read(fixture_path("program_opt_v1.bin")).unwrap();
    let p = wire::decode_program(&bytes).unwrap();
    assert_eq!(p.opt_report().unwrap().totals.pruned, 0);
}

#[test]
fn corrupted_sparse_fixture_errors_and_never_panics() {
    // Flip every single byte of the sparse frame in turn: a corrupted
    // sparsity attribute must fail typed (the validator re-scans the
    // weight; the fingerprint covers the rest) — never a panic, never a
    // silently different program.
    let bytes = std::fs::read(fixture_path("program_sparse_v2.bin")).unwrap();
    let original = wire::decode_program(&bytes).unwrap();
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        if let Ok(p) = wire::decode_program(&corrupt) {
            assert_eq!(
                p.fingerprint(),
                original.fingerprint(),
                "byte {i}: a tolerated flip must decode to the identical program"
            );
        }
    }
}

#[test]
fn truncated_fixture_frames_error_and_never_panic() {
    for name in [
        "tensor_v2.bin",
        "program_v2.bin",
        "program_opt_v2.bin",
        "program_decode_v2.bin",
        "program_sparse_v2.bin",
    ] {
        let bytes = std::fs::read(fixture_path(name)).unwrap();
        for cut in 0..bytes.len() {
            let r = if name.starts_with("tensor") {
                wire::decode_tensor(&bytes[..cut]).map(drop)
            } else {
                wire::decode_program(&bytes[..cut]).map(drop)
            };
            assert!(
                r.is_err(),
                "{name} truncated to {cut} bytes must not decode"
            );
        }
    }
}

#[test]
fn corrupted_decode_fixture_errors_and_never_panics() {
    // Flip every single byte of the session-bearing frame in turn:
    // structural damage, const damage and session-section damage must
    // all surface as typed errors or decode to the identical program —
    // never a panic, never a silently different session contract.
    let bytes = std::fs::read(fixture_path("program_decode_v2.bin")).unwrap();
    let original = wire::decode_program(&bytes).unwrap();
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x01;
        if let Ok(p) = wire::decode_program(&corrupt) {
            assert_eq!(
                (p.session_inputs(), p.session_outputs()),
                (original.session_inputs(), original.session_outputs()),
                "byte {i}: a tolerated flip must not change the session contract"
            );
        }
    }
}

#[test]
fn bad_magic_is_a_typed_error() {
    let mut bytes = std::fs::read(fixture_path("program_v2.bin")).unwrap();
    bytes[0] = b'X';
    match wire::decode_program(&bytes) {
        Err(WireError::BadMagic { found }) => assert_eq!(found[0], b'X'),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn bumped_format_version_is_rejected_not_panicked() {
    let mut bytes = std::fs::read(fixture_path("program_v2.bin")).unwrap();
    // Version field sits right after the 4-byte magic, little-endian.
    let future = (wire::VERSION + 1).to_le_bytes();
    bytes[4] = future[0];
    bytes[5] = future[1];
    match wire::decode_program(&bytes) {
        Err(WireError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, wire::VERSION + 1);
            assert_eq!(supported, wire::VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn corrupted_const_payload_trips_the_fingerprint_check() {
    let bytes = std::fs::read(fixture_path("program_v2.bin")).unwrap();
    // Flip one bit in the last const f32 (the tail of the consts
    // section): structure still parses, semantics changed — the
    // recomputed fingerprint must disagree with the recorded one.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    match wire::decode_program(&corrupt) {
        Err(WireError::FingerprintMismatch { recorded, computed }) => {
            assert_ne!(recorded, computed);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
}
