//! The program optimizer: an ordered pass pipeline over the
//! [`Program`] IR.
//!
//! Freshly-emitted programs are deliberately conservative — the
//! `onesa-nn` compilers mirror the hardware's INT16 scratchpad by
//! emitting one load-side [`Op::Quantize`] round trip *per consumer* of
//! a boundary value, and never share structurally identical ops. The
//! optimizer cleans that up:
//!
//! | pass | level | what it does | exactness |
//! |---|---|---|---|
//! | `quantize-elision` | [`OptLevel::Standard`] | dedups `Quantize` boundaries of the same value | bit-identical |
//! | `cse` | [`OptLevel::Standard`] | shares any two ops with bit-identical payloads and operands (duplicate const-operand GEMMs, repeated `Im2col` of one slot, …) | bit-identical |
//! | `prune-pack` | [`OptLevel::Standard`] | detects zero column-blocks in const GEMM weights and attaches the sparsity attribute so the executor skips them | bit-identical |
//! | `fusion` | [`OptLevel::Fusion`] | folds `Affine` + `Nonlinear` into one [`Op::AffineNonlinear`] MHP pass | ≤ a few ULPs (reassociates) |
//! | `dead-slot` | [`OptLevel::Standard`] | drops ops whose outputs nothing consumes | bit-identical |
//!
//! Every pass reports a [`PassStats`]; the whole run is summarized in
//! an [`OptReport`] carried by the optimized program
//! ([`Program::opt_report`]), which the batch/serve engines roll into
//! their `ServingReport`s as [`OptTotals`].
//!
//! The default level is [`OptLevel::Standard`]: optimized programs are
//! **bit-identical** to the unoptimized emission (every shared op is a
//! literal re-execution of the same deterministic computation).
//! [`OptLevel::Fusion`] reassociates the affine/table multiply-add
//! chain and therefore lives above the bit-identical line; the paper's
//! own efficiency case — collapsing nonlinear lowerings into the
//! IPF + MHP two-step — is what the fusion pass implements at the IR
//! level.
//!
//! # Example
//!
//! ```
//! use onesa_plan::{EvalMode, Op, OptLevel, Precision, Program};
//! use onesa_tensor::Tensor;
//!
//! let mode = EvalMode::Cpwl { granularity: 0.25, quantize: true };
//! let mut b = Program::builder("demo", mode);
//! let x = b.input(&[2, 3]);
//! // A conservative frontend quantizes the same value once per use.
//! let q1 = b.push(Op::Quantize { precision: Precision::Int16 }, &[x]);
//! let q2 = b.push(Op::Quantize { precision: Precision::Int16 }, &[x]);
//! let w = b.constant(Tensor::zeros(&[3, 4]));
//! let g1 = b.push(Op::Gemm { bias: None, sparsity: None }, &[q1, w]);
//! let g2 = b.push(Op::Gemm { bias: None, sparsity: None }, &[q2, w]);
//! b.push(Op::Add, &[g1, g2]);
//! let program = b.finish()?;
//!
//! let optimized = program.optimize(OptLevel::Standard)?;
//! let report = optimized.opt_report().expect("optimize records a report");
//! assert_eq!(report.ops_before, 5);
//! assert_eq!(report.ops_after, 3); // one Quantize elided, one GEMM shared
//! assert_eq!(report.totals.elided, 1);
//! assert_eq!(report.totals.shared, 1);
//! # Ok::<(), onesa_tensor::TensorError>(())
//! ```

use crate::program::{GemmSparsity, Op, OpNode, Operand, Program};
use onesa_sim::ArrayConfig;
use onesa_tensor::Result;

/// Column-block width the `prune-pack` pass scans const GEMM weights
/// at. A multiple of nothing in particular — wide enough that the
/// bitmap stays small, narrow enough that magnitude-pruned models
/// actually produce all-zero blocks.
pub const PRUNE_BLOCK_COLS: usize = 16;

/// How aggressively [`Program::optimize`] rewrites a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No passes run; the program is returned as emitted (with an
    /// [`OptReport`] recording zero work).
    None,
    /// The bit-identical pipeline: `quantize-elision`, `cse`,
    /// `dead-slot`. This is the default — `onesa-nn`'s compile wrappers
    /// and the serving layer run programs at this level.
    #[default]
    Standard,
    /// [`OptLevel::Standard`] plus `Affine`+`Nonlinear` → single-MHP
    /// fusion. Fusion reassociates the multiply-add chain, so CPWL
    /// outputs may differ from the unfused program by a few ULPs
    /// (exact-mode outputs are still bit-identical).
    Fusion,
}

impl OptLevel {
    /// Short label for reports and benches.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Standard => "standard",
            OptLevel::Fusion => "fusion",
        }
    }
}

/// What one optimizer pass did to a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name (`"quantize-elision"`, `"cse"`, `"prune-pack"`,
    /// `"fusion"`, `"dead-slot"`).
    pub pass: &'static str,
    /// Ops this pass removed from the program (for `prune-pack`, ops it
    /// rewrote to the sparse form — nothing is dropped).
    pub removed: usize,
}

/// Aggregate optimizer counters, summed across passes (and, in the
/// serving layer, across the program requests of a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptTotals {
    /// Duplicate `Quantize` boundaries elided.
    pub elided: usize,
    /// Ops shared by common-subexpression elimination.
    pub shared: usize,
    /// `Affine`+`Nonlinear` pairs fused into one MHP pass.
    pub fused: usize,
    /// Dead ops removed.
    pub dead: usize,
    /// GEMMs rewritten to the sparse form by `prune-pack`.
    pub pruned: usize,
}

impl OptTotals {
    /// Accumulates another total into this one.
    pub fn merge(&mut self, other: &OptTotals) {
        self.elided += other.elided;
        self.shared += other.shared;
        self.fused += other.fused;
        self.dead += other.dead;
        self.pruned += other.pruned;
    }

    /// Total ops removed across all passes.
    pub fn removed(&self) -> usize {
        self.elided + self.shared + self.fused + self.dead
    }
}

/// Everything one [`Program::optimize`] run did, carried by the
/// optimized program ([`Program::opt_report`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OptReport {
    /// The level the pipeline ran at.
    pub level: OptLevel,
    /// Op count of the program as emitted.
    pub ops_before: usize,
    /// Op count after the pipeline.
    pub ops_after: usize,
    /// Modeled MACs of the program as emitted.
    pub macs_before: u64,
    /// Modeled MACs after the pipeline.
    pub macs_after: u64,
    /// Per-pass accounting, in pipeline order.
    pub passes: Vec<PassStats>,
    /// The per-pass counts bucketed by kind.
    pub totals: OptTotals,
}

impl OptReport {
    /// Fraction of ops the pipeline removed (`0.0` for an empty or
    /// untouched program).
    pub fn ops_removed_fraction(&self) -> f64 {
        if self.ops_before == 0 {
            0.0
        } else {
            (self.ops_before - self.ops_after) as f64 / self.ops_before as f64
        }
    }
}

impl Program {
    /// Runs the optimizer pipeline at `level` and returns the rewritten
    /// program, which carries its [`OptReport`]. Constants are shared
    /// (`Arc`), never copied. At [`OptLevel::Standard`] the result is
    /// bit-identical to the input program on every input; see
    /// [`OptLevel::Fusion`] for the fusion caveat.
    ///
    /// # Errors
    ///
    /// Validation errors from rebuilding the program — a pass that
    /// produced an invalid graph is a bug, but the validator still runs
    /// on every intermediate program rather than trusting the rewrite.
    pub fn optimize(&self, level: OptLevel) -> Result<Program> {
        let ops_before = self.stages();
        let macs_before = self.modeled_macs();
        let mut current = self.clone();
        let mut passes = Vec::new();
        let mut totals = OptTotals::default();
        if level != OptLevel::None {
            let (next, removed) = elide_duplicate_quantizes(&current)?;
            passes.push(PassStats {
                pass: "quantize-elision",
                removed,
            });
            totals.elided = removed;
            current = next;

            let (next, removed) = share_common_subexpressions(&current)?;
            passes.push(PassStats {
                pass: "cse",
                removed,
            });
            totals.shared = removed;
            current = next;

            let (next, rewritten) = prune_pack(&current)?;
            passes.push(PassStats {
                pass: "prune-pack",
                removed: rewritten,
            });
            totals.pruned = rewritten;
            current = next;

            if level == OptLevel::Fusion {
                let (next, removed) = fuse_affine_nonlinear(&current)?;
                passes.push(PassStats {
                    pass: "fusion",
                    removed,
                });
                totals.fused = removed;
                current = next;
            }

            let (next, removed) = eliminate_dead_slots(&current)?;
            passes.push(PassStats {
                pass: "dead-slot",
                removed,
            });
            totals.dead = removed;
            current = next;
        }
        current.opt = Some(OptReport {
            level,
            ops_before,
            ops_after: current.stages(),
            macs_before,
            macs_after: current.modeled_macs(),
            passes,
            totals,
        });
        Ok(current)
    }
}

/// What a pass decided for each node of the program it ran on.
enum Action {
    /// Keep the node, possibly rewritten (operands still refer to the
    /// *old* slot numbering; `rebuild` renumbers).
    Keep(OpNode),
    /// Drop the node and redirect every read of its output slot to
    /// another (earlier) old slot.
    Alias(usize),
    /// Drop the node; nothing reads its output.
    Dead,
}

/// Rebuilds a program from per-node actions, renumbering slots and
/// pruning constants nothing references. The final node must survive
/// (or alias a surviving slot that becomes the new final output) — the
/// passes below guarantee this by never dropping the last node.
fn rebuild(program: &Program, actions: Vec<Action>) -> Result<Program> {
    let n_in = program.n_inputs();
    // Which constants survive, in first-use order.
    let mut const_map: Vec<Option<usize>> = vec![None; program.consts().len()];
    let mut kept_consts: Vec<usize> = Vec::new();
    // Old slot -> new slot.
    let mut slot_map: Vec<Option<usize>> = vec![None; n_in + program.stages()];
    for (i, m) in slot_map.iter_mut().take(n_in).enumerate() {
        *m = Some(i);
    }

    let mut b = Program::builder(program.name(), program.mode());
    for shape in program.input_shapes() {
        b.input(shape);
    }
    let mut new_index = 0usize;
    for (i, action) in actions.iter().enumerate() {
        let out_slot = n_in + i;
        match action {
            Action::Keep(node) => {
                let inputs: Vec<Operand> = node
                    .inputs
                    .iter()
                    .map(|op| match *op {
                        Operand::Slot(s) => {
                            Operand::Slot(slot_map[s].expect("operand slot survived"))
                        }
                        Operand::Const(c) => {
                            let nc = *const_map[c].get_or_insert_with(|| {
                                kept_consts.push(c);
                                kept_consts.len() - 1
                            });
                            Operand::Const(nc)
                        }
                    })
                    .collect();
                slot_map[out_slot] = Some(n_in + new_index);
                new_index += 1;
                b.push(node.op.clone(), &inputs);
            }
            Action::Alias(target) => {
                slot_map[out_slot] = slot_map[*target];
            }
            Action::Dead => {}
        }
    }
    for &c in &kept_consts {
        b.constant_shared(std::sync::Arc::clone(&program.consts()[c]));
    }
    // Session wiring survives every pass: input slots are never
    // renumbered, and an aliased session-output node redirects to the
    // surviving slot through `slot_map` (dead-slot elimination roots the
    // live-set at session outputs, so they are never dropped).
    for &i in program.session_inputs() {
        b.mark_session_input(Operand::Slot(i));
    }
    for &s in program.session_outputs() {
        b.mark_session_output(Operand::Slot(
            slot_map[s].expect("session output slot survived"),
        ));
    }
    b.finish()
}

/// Dedups `Quantize` ops that read the same operand: the INT16 round
/// trip is deterministic, so two boundaries of one value are one
/// boundary. Bit-identical. (A `Quantize` *of* a `Quantize` output is
/// deliberately left alone — re-quantizing an already-quantized tensor
/// recomputes the scale and can move the result by an ULP.)
fn elide_duplicate_quantizes(program: &Program) -> Result<(Program, usize)> {
    let n_in = program.n_inputs();
    let last = program.stages() - 1;
    let mut seen: Vec<(Operand, usize)> = Vec::new();
    let mut removed = 0usize;
    let actions: Vec<Action> = program
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            if matches!(node.op, Op::Quantize { .. }) && i != last {
                let input = node.inputs[0];
                if let Some(&(_, prev_out)) = seen.iter().find(|(op, _)| *op == input) {
                    removed += 1;
                    return Action::Alias(prev_out);
                }
                seen.push((input, n_in + i));
            }
            Action::Keep(node.clone())
        })
        .collect();
    Ok((rebuild(program, actions)?, removed))
}

/// Shares any two ops whose payloads are bit-identical and whose
/// operands resolve to the same values — duplicate const-operand GEMMs,
/// repeated `Im2col` of the same slot, and any cascade the first
/// sharing exposes. Operand equality looks through constants, so two
/// separately-registered but bit-identical weight tensors share too.
/// Bit-identical: a shared op is literally the same deterministic
/// computation.
fn share_common_subexpressions(program: &Program) -> Result<(Program, usize)> {
    let n_in = program.n_inputs();
    let last = program.stages() - 1;
    // Canonicalize constants: map each const to the first bit-identical
    // registration (fingerprint bucket, then exact compare).
    let consts = program.consts();
    let mut canon: Vec<usize> = (0..consts.len()).collect();
    let prints: Vec<u64> = consts
        .iter()
        .map(|t| crate::program::tensor_fingerprint(t))
        .collect();
    for i in 0..consts.len() {
        for j in 0..i {
            if prints[j] == prints[i] && canon[j] == j && same_tensor(&consts[j], &consts[i]) {
                canon[i] = j;
                break;
            }
        }
    }

    // Intra-pass aliasing so cascaded duplicates collapse in one sweep.
    let mut alias: Vec<usize> = (0..n_in + program.stages()).collect();
    let mut seen: Vec<(String, Vec<Operand>, usize)> = Vec::new();
    let mut removed = 0usize;
    let actions: Vec<Action> = program
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let resolved: Vec<Operand> = node
                .inputs
                .iter()
                .map(|op| match *op {
                    Operand::Slot(s) => Operand::Slot(alias[s]),
                    Operand::Const(c) => Operand::Const(canon[c]),
                })
                .collect();
            let key = format!("{:?}", node.op);
            if i != last {
                if let Some((_, _, prev_out)) = seen
                    .iter()
                    .find(|(k, ops, _)| *k == key && *ops == resolved)
                {
                    removed += 1;
                    alias[n_in + i] = *prev_out;
                    return Action::Alias(*prev_out);
                }
                seen.push((key, resolved.clone(), n_in + i));
            }
            Action::Keep(OpNode {
                op: node.op.clone(),
                inputs: resolved,
            })
        })
        .collect();
    Ok((rebuild(program, actions)?, removed))
}

fn same_tensor(x: &onesa_tensor::Tensor, y: &onesa_tensor::Tensor) -> bool {
    x.dims() == y.dims()
        && x.as_slice()
            .iter()
            .zip(y.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits())
}

/// Attaches a [`GemmSparsity`] attribute to every dense GEMM whose
/// constant right operand has at least one all-zero column block at
/// [`PRUNE_BLOCK_COLS`]. The executor then runs the sparsity-aware
/// kernel (`onesa_tensor::sparse`), which skips zero blocks entirely,
/// and the cost model credits the skipped columns. Bit-identical: a
/// skipped block contributes only `a · (+0.0)` terms, which can never
/// move a finite accumulation (see the `sparse` module's proof).
/// GEMMs already carrying an attribute (a decoded pre-optimized
/// program) are left alone.
fn prune_pack(program: &Program) -> Result<(Program, usize)> {
    let mut rewritten = 0usize;
    let actions: Vec<Action> = program
        .nodes()
        .iter()
        .map(|node| {
            if let Op::Gemm {
                bias,
                sparsity: None,
            } = &node.op
            {
                if let [_, Operand::Const(c)] = node.inputs[..] {
                    let w = &program.consts()[c];
                    let stats = onesa_tensor::sparse::column_block_stats(w, PRUNE_BLOCK_COLS);
                    if let Ok((nnz_blocks, total_blocks, nnz_cols)) = stats {
                        if nnz_blocks < total_blocks {
                            rewritten += 1;
                            return Action::Keep(OpNode {
                                op: Op::Gemm {
                                    bias: bias.clone(),
                                    sparsity: Some(GemmSparsity {
                                        block_cols: PRUNE_BLOCK_COLS,
                                        nnz_blocks,
                                        total_blocks,
                                        nnz_cols,
                                    }),
                                },
                                inputs: node.inputs.clone(),
                            });
                        }
                    }
                }
            }
            Action::Keep(node.clone())
        })
        .collect();
    Ok((rebuild(program, actions)?, rewritten))
}

/// Fuses an `Affine` immediately followed by a `Nonlinear` that is its
/// only consumer into one [`Op::AffineNonlinear`] MHP pass. Restricted
/// to adjacent pairs (which is how the `onesa-nn` compilers emit folded
/// batch norm + activation) so the rewrite never reorders the graph.
fn fuse_affine_nonlinear(program: &Program) -> Result<(Program, usize)> {
    let n_in = program.n_inputs();
    let nodes = program.nodes();
    // Consumer counts of every op output.
    let mut uses = vec![0usize; n_in + nodes.len()];
    for node in nodes {
        for op in &node.inputs {
            if let Operand::Slot(s) = *op {
                uses[s] += 1;
            }
        }
    }
    let mut removed = 0usize;
    let mut actions: Vec<Action> = Vec::with_capacity(nodes.len());
    let mut i = 0usize;
    while i < nodes.len() {
        let fused = if let (Op::Affine { k, b }, Some(next)) = (&nodes[i].op, nodes.get(i + 1)) {
            let affine_out = n_in + i;
            match next.op {
                Op::Nonlinear(func)
                    if next.inputs == [Operand::Slot(affine_out)] && uses[affine_out] == 1 =>
                {
                    Some(Op::AffineNonlinear {
                        k: k.clone(),
                        b: b.clone(),
                        func,
                    })
                }
                _ => None,
            }
        } else {
            None
        };
        match fused {
            Some(op) => {
                actions.push(Action::Keep(OpNode {
                    op,
                    inputs: nodes[i].inputs.clone(),
                }));
                // The nonlinear's output now comes out of the fused op.
                actions.push(Action::Alias(n_in + i));
                removed += 1;
                i += 2;
            }
            None => {
                actions.push(Action::Keep(nodes[i].clone()));
                i += 1;
            }
        }
    }
    Ok((rebuild(program, actions)?, removed))
}

/// Drops ops whose outputs nothing consumes (the program output — the
/// last op — is always live). Runs last so it sweeps anything the
/// earlier passes orphaned.
fn eliminate_dead_slots(program: &Program) -> Result<(Program, usize)> {
    let n_in = program.n_inputs();
    let nodes = program.nodes();
    let mut live = vec![false; nodes.len()];
    if let Some(l) = live.last_mut() {
        *l = true;
    }
    // Session outputs are program roots too: the serving layer reads
    // them back after every run even though no later op consumes them.
    for &s in program.session_outputs() {
        live[s - n_in] = true;
    }
    for i in (0..nodes.len()).rev() {
        if !live[i] {
            continue;
        }
        for op in &nodes[i].inputs {
            if let Operand::Slot(s) = *op {
                if s >= n_in {
                    live[s - n_in] = true;
                }
            }
        }
    }
    let removed = live.iter().filter(|l| !**l).count();
    let actions: Vec<Action> = nodes
        .iter()
        .zip(&live)
        .map(|(node, &alive)| {
            if alive {
                Action::Keep(node.clone())
            } else {
                Action::Dead
            }
        })
        .collect();
    Ok((rebuild(program, actions)?, removed))
}

/// Convenience for benches and docs: op count, modeled MACs and the
/// modeled solo seconds of a program on `cfg`.
pub fn program_cost(program: &Program, cfg: &ArrayConfig) -> Result<(usize, u64, f64)> {
    let stats = program.op_stats(cfg)?;
    let seconds: f64 = stats.iter().map(|s| s.seconds()).sum();
    Ok((program.stages(), program.modeled_macs(), seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{EvalMode, Precision};
    use crate::TableCache;
    use onesa_cpwl::NonlinearFn;
    use onesa_tensor::parallel::Parallelism;
    use onesa_tensor::rng::Pcg32;
    use onesa_tensor::Tensor;

    fn cpwl() -> EvalMode {
        EvalMode::Cpwl {
            granularity: 0.25,
            quantize: true,
        }
    }

    fn run(p: &Program, xs: &[Tensor]) -> Tensor {
        p.run(xs, Parallelism::Sequential, &mut TableCache::new())
            .unwrap()
            .output
    }

    #[test]
    fn duplicate_quantizes_elide_and_stay_bit_identical() {
        let mut rng = Pcg32::seed_from_u64(1);
        let w = rng.randn(&[4, 3], 1.0);
        let mut b = Program::builder("dupq", cpwl());
        let x = b.input(&[2, 4]);
        let q1 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        let q2 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        let w1 = b.constant(w.clone());
        let g1 = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[q1, w1],
        );
        let g2 = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[q2, w1],
        );
        b.push(Op::Add, &[g1, g2]);
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        let report = o.opt_report().unwrap();
        assert_eq!(report.totals.elided, 1);
        assert_eq!(report.totals.shared, 1); // the two GEMMs collapse too
        assert_eq!(o.stages(), 3);
        let x = rng.randn(&[2, 4], 1.0);
        assert_eq!(
            run(&p, std::slice::from_ref(&x)),
            run(&o, std::slice::from_ref(&x))
        );
    }

    #[test]
    fn chained_quantize_of_quantize_is_left_alone() {
        // q(q(x)) recomputes the scale and is NOT guaranteed to equal
        // q(x) bit for bit, so the elision pass must not touch chains.
        let mut b = Program::builder("chain", cpwl());
        let x = b.input(&[2, 2]);
        let q1 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        let q2 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[q1],
        );
        b.push(Op::Scale(2.0), &[q2]);
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        assert_eq!(o.stages(), 3);
        assert_eq!(o.opt_report().unwrap().totals.removed(), 0);
    }

    #[test]
    fn cse_shares_duplicate_const_gemms_and_im2cols() {
        use onesa_tensor::im2col::Conv2dGeometry;
        let mut rng = Pcg32::seed_from_u64(2);
        let geo = Conv2dGeometry {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let wt = rng.randn(&[geo.patch_len(), 2], 1.0);
        let mut b = Program::builder("cse", EvalMode::Exact);
        let x = b.input(&[1, 4, 4]);
        // Two identical weight registrations: CSE looks through consts.
        let w1 = b.constant(wt.clone());
        let w2 = b.constant(wt.clone());
        let c1 = b.push(Op::Im2col(geo), &[x]);
        let c2 = b.push(Op::Im2col(geo), &[x]);
        let g1 = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[c1, w1],
        );
        let g2 = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[c2, w2],
        );
        b.push(Op::Add, &[g1, g2]);
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        // The duplicate Im2col AND the cascaded duplicate GEMM share.
        assert_eq!(o.opt_report().unwrap().totals.shared, 2);
        assert_eq!(o.stages(), 3);
        assert_eq!(o.consts().len(), 1, "duplicate constant pruned");
        let x = rng.randn(&[1, 4, 4], 1.0);
        assert_eq!(
            run(&p, std::slice::from_ref(&x)),
            run(&o, std::slice::from_ref(&x))
        );
    }

    #[test]
    fn the_output_op_is_never_dropped() {
        // The last op IS the program output: a duplicate there must not
        // be aliased away (the slot numbering would silently shift the
        // output to a different op).
        let mut b = Program::builder("tail", cpwl());
        let x = b.input(&[2, 2]);
        let q1 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        let s = b.push(Op::Scale(3.0), &[q1]);
        let _ = s;
        b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        ); // duplicate of q1, but final
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        let x = Pcg32::seed_from_u64(3).randn(&[2, 2], 1.0);
        assert_eq!(
            run(&p, std::slice::from_ref(&x)),
            run(&o, std::slice::from_ref(&x))
        );
        // The Scale (and the Quantize only it consumed) became dead and
        // were swept; the final Quantize survives as the output.
        assert_eq!(o.opt_report().unwrap().totals.dead, 2);
        assert_eq!(o.stages(), 1);
    }

    #[test]
    fn dead_ops_are_swept() {
        let mut rng = Pcg32::seed_from_u64(4);
        let w = rng.randn(&[3, 3], 1.0);
        let mut b = Program::builder("dead", EvalMode::Exact);
        let x = b.input(&[2, 3]);
        let w1 = b.constant(w);
        let _unused = b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, w1],
        );
        let _unused2 = b.push(Op::Transpose, &[x]);
        b.push(Op::Scale(2.0), &[x]);
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        assert_eq!(o.stages(), 1);
        assert_eq!(o.opt_report().unwrap().totals.dead, 2);
        assert_eq!(o.consts().len(), 0, "const of the dead GEMM pruned");
        let x = rng.randn(&[2, 3], 1.0);
        assert_eq!(
            run(&p, std::slice::from_ref(&x)),
            run(&o, std::slice::from_ref(&x))
        );
    }

    #[test]
    fn fusion_folds_affine_into_the_nonlinear_pass() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut b = Program::builder("fuse", cpwl());
        let x = b.input(&[2, 3, 3]);
        let a = b.push(
            Op::Affine {
                k: vec![1.5, -0.5],
                b: vec![0.1, 0.2],
            },
            &[x],
        );
        let r = b.push(Op::Nonlinear(NonlinearFn::Gelu), &[a]);
        b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[r],
        );
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Fusion).unwrap();
        assert_eq!(o.opt_report().unwrap().totals.fused, 1);
        assert_eq!(o.stages(), 2);
        assert!(matches!(o.nodes()[0].op, Op::AffineNonlinear { .. }));
        // Fewer modeled MACs: the affine MHP pass folded away.
        assert!(o.modeled_macs() < p.modeled_macs());
        let x = rng.randn(&[2, 3, 3], 1.0);
        let (y0, y1) = (
            run(&p, std::slice::from_ref(&x)),
            run(&o, std::slice::from_ref(&x)),
        );
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn fusion_skips_affines_with_other_consumers() {
        let mut b = Program::builder("no-fuse", EvalMode::Exact);
        let x = b.input(&[1, 2, 2]);
        let a = b.push(
            Op::Affine {
                k: vec![2.0],
                b: vec![0.0],
            },
            &[x],
        );
        let r = b.push(Op::Nonlinear(NonlinearFn::Relu), &[a]);
        b.push(Op::Add, &[a, r]); // second consumer of the affine
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Fusion).unwrap();
        assert_eq!(o.opt_report().unwrap().totals.fused, 0);
        assert_eq!(o.stages(), 3);
    }

    #[test]
    fn fusion_is_bit_identical_under_exact_mode() {
        let mut rng = Pcg32::seed_from_u64(6);
        let mut b = Program::builder("fuse-exact", EvalMode::Exact);
        let x = b.input(&[2, 4, 4]);
        let a = b.push(
            Op::Affine {
                k: vec![0.7, 1.3],
                b: vec![-0.2, 0.4],
            },
            &[x],
        );
        b.push(Op::Nonlinear(NonlinearFn::Tanh), &[a]);
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Fusion).unwrap();
        assert_eq!(o.stages(), 1);
        let x = rng.randn(&[2, 4, 4], 1.0);
        assert_eq!(
            run(&p, std::slice::from_ref(&x)),
            run(&o, std::slice::from_ref(&x))
        );
    }

    #[test]
    fn opt_level_none_is_a_no_op_with_a_report() {
        let mut b = Program::builder("noop", cpwl());
        let x = b.input(&[1, 2]);
        let q1 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        let q2 = b.push(
            Op::Quantize {
                precision: Precision::Int16,
            },
            &[x],
        );
        b.push(Op::Add, &[q1, q2]);
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::None).unwrap();
        assert_eq!(o.stages(), p.stages());
        let report = o.opt_report().unwrap();
        assert_eq!(report.ops_before, report.ops_after);
        assert!(report.passes.is_empty());
        assert_eq!(report.ops_removed_fraction(), 0.0);
        assert_eq!(OptLevel::None.label(), "none");
        assert_eq!(OptLevel::Fusion.label(), "fusion");
    }

    #[test]
    fn prune_pack_attaches_sparsity_and_stays_bit_identical() {
        let mut rng = Pcg32::seed_from_u64(21);
        // 3 column blocks of PRUNE_BLOCK_COLS; zero the middle one.
        let n = 3 * PRUNE_BLOCK_COLS;
        let mut w = rng.randn(&[8, n], 1.0);
        for r in 0..8 {
            for c in PRUNE_BLOCK_COLS..2 * PRUNE_BLOCK_COLS {
                w.as_mut_slice()[r * n + c] = 0.0;
            }
        }
        let mut b = Program::builder("prune", EvalMode::Exact);
        let x = b.input(&[4, 8]);
        let wc = b.constant(w);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, wc],
        );
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        let report = o.opt_report().unwrap();
        assert_eq!(report.totals.pruned, 1);
        assert!(report.passes.iter().any(|ps| ps.pass == "prune-pack"));
        let Op::Gemm {
            sparsity: Some(s), ..
        } = &o.nodes()[0].op
        else {
            panic!("prune-pack attaches the attribute");
        };
        assert_eq!(
            (s.block_cols, s.nnz_blocks, s.total_blocks, s.nnz_cols),
            (PRUNE_BLOCK_COLS, 2, 3, 2 * PRUNE_BLOCK_COLS)
        );
        // The sparse program credits only the surviving columns.
        assert!(o.modeled_macs() < p.modeled_macs());
        assert_eq!(o.modeled_macs(), p.modeled_macs() * 2 / 3);
        assert_eq!(o.sparse_blocks(), (1, 3));
        // And runs bit-identically to the dense original.
        let x = rng.randn(&[4, 8], 1.0);
        assert_eq!(
            run(&p, std::slice::from_ref(&x)),
            run(&o, std::slice::from_ref(&x))
        );
    }

    #[test]
    fn prune_pack_leaves_dense_weights_and_attributed_gemms_alone() {
        let mut rng = Pcg32::seed_from_u64(22);
        let w = rng.randn(&[4, 2 * PRUNE_BLOCK_COLS], 1.0);
        let mut b = Program::builder("dense", EvalMode::Exact);
        let x = b.input(&[2, 4]);
        let wc = b.constant(w);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, wc],
        );
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        assert_eq!(o.opt_report().unwrap().totals.pruned, 0);
        assert!(matches!(o.nodes()[0].op, Op::Gemm { sparsity: None, .. }));
        // Re-optimizing an already-attributed program changes nothing.
        let mut rng = Pcg32::seed_from_u64(23);
        let n = 2 * PRUNE_BLOCK_COLS;
        let mut w = rng.randn(&[4, n], 1.0);
        for r in 0..4 {
            for c in 0..PRUNE_BLOCK_COLS {
                w.as_mut_slice()[r * n + c] = 0.0;
            }
        }
        let mut b = Program::builder("again", EvalMode::Exact);
        let x = b.input(&[2, 4]);
        let wc = b.constant(w);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, wc],
        );
        let once = b.finish().unwrap().optimize(OptLevel::Standard).unwrap();
        let twice = once.optimize(OptLevel::Standard).unwrap();
        assert_eq!(once.opt_report().unwrap().totals.pruned, 1);
        assert_eq!(twice.opt_report().unwrap().totals.pruned, 0);
        assert_eq!(once.nodes(), twice.nodes());
    }

    #[test]
    fn optimized_programs_share_const_storage_with_the_source() {
        let mut rng = Pcg32::seed_from_u64(7);
        let w = rng.randn(&[4, 4], 1.0);
        let mut b = Program::builder("share", EvalMode::Exact);
        let x = b.input(&[2, 4]);
        let w1 = b.constant(w);
        b.push(
            Op::Gemm {
                bias: None,
                sparsity: None,
            },
            &[x, w1],
        );
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        assert!(std::sync::Arc::ptr_eq(&p.consts()[0], &o.consts()[0]));
        // Cloning either is O(ops): the Arc is shared, not the data.
        let c = o.clone();
        assert!(std::sync::Arc::ptr_eq(&c.consts()[0], &o.consts()[0]));
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    use crate::program::{EvalMode, Precision};
    use crate::TableCache;
    use onesa_tensor::parallel::Parallelism;
    use onesa_tensor::rng::Pcg32;

    #[test]
    fn mixed_precision_quantizes_must_not_merge() {
        let mut b = Program::builder("mixed", EvalMode::Exact);
        let x = b.input(&[2, 3]);
        let q16 = b.push(Op::Quantize { precision: Precision::Int16 }, &[x]);
        let q8 = b.push(Op::Quantize { precision: Precision::Int8 }, &[x]);
        b.push(Op::Add, &[q16, q8]);
        let p = b.finish().unwrap();
        let o = p.optimize(OptLevel::Standard).unwrap();
        let xv = Pcg32::seed_from_u64(1).randn(&[2, 3], 1.0);
        let mut c = TableCache::new();
        let r0 = p.run(std::slice::from_ref(&xv), Parallelism::Sequential, &mut c).unwrap();
        let r1 = o.run(std::slice::from_ref(&xv), Parallelism::Sequential, &mut c).unwrap();
        assert_eq!(r0.output, r1.output, "optimization changed semantics");
    }
}
